"""E8 — the two worked examples of Section 2.1.

Paper claims:

* Krafft et al. (2016) investor model — the special case ``alpha = 1 - beta``,
  ``beta >= 1/2``, ``eta_1 > 1/2 = eta_2 = ... = eta_m`` is exactly the paper's
  model, so the group concentrates on the best option;
* Ellison & Fudenberg (1995) word-of-mouth model — continuous rewards with
  player shocks reduce to the binary model with ``eta_1 = P[r_1 > r_2]`` and
  implied ``alpha < beta``, so the paper's dynamics run with the implied
  parameters converges to the genuinely better product, faster for larger
  quality gaps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliEnvironment,
    EllisonFudenbergEnvironment,
    best_option_share,
    expected_regret,
    simulate_finite_population,
)
from repro.core.adoption import GeneralAdoptionRule
from repro.core.dynamics import FinitePopulationDynamics
from repro.core.sampling import MixtureSampling
from repro.experiments import ResultTable

POPULATION = 3000
HORIZON = 500
REPLICATIONS = 3


def krafft_rows() -> list:
    rows = []
    for best_quality in (0.6, 0.7, 0.8):
        shares, regrets = [], []
        for seed in range(REPLICATIONS):
            qualities = [best_quality] + [0.5] * 4
            env = BernoulliEnvironment(qualities, rng=seed)
            trajectory = simulate_finite_population(
                env, POPULATION, HORIZON, beta=0.6, rng=seed + 10
            )
            matrix = trajectory.popularity_matrix()
            shares.append(best_option_share(matrix[-200:], 0))
            regrets.append(expected_regret(matrix, qualities))
        rows.append(
            {
                "example": "krafft-investors",
                "parameter": f"eta1={best_quality}",
                "late_best_share": float(np.mean(shares)),
                "regret": float(np.mean(regrets)),
            }
        )
    return rows


def ellison_fudenberg_rows() -> list:
    rows = []
    for gap in (0.3, 0.6, 1.0):
        shares, regrets = [], []
        environment_template = EllisonFudenbergEnvironment.gaussian(mean_gap=gap, rng=0)
        alpha, beta = environment_template.implied_adoption_parameters()
        for seed in range(REPLICATIONS):
            environment = EllisonFudenbergEnvironment.gaussian(mean_gap=gap, rng=seed)
            dynamics = FinitePopulationDynamics(
                population_size=POPULATION,
                num_options=2,
                adoption_rule=GeneralAdoptionRule(alpha=alpha, beta=beta),
                sampling_rule=MixtureSampling(0.02),
                rng=seed + 20,
            )
            trajectory = dynamics.run(environment, HORIZON)
            matrix = trajectory.popularity_matrix()
            shares.append(best_option_share(matrix[-200:], 0))
            regrets.append(expected_regret(matrix, environment.qualities))
        rows.append(
            {
                "example": "ellison-fudenberg",
                "parameter": f"gap={gap} (alpha={alpha:.3f}, beta={beta:.3f})",
                "late_best_share": float(np.mean(shares)),
                "regret": float(np.mean(regrets)),
            }
        )
    return rows


def run_experiment() -> ResultTable:
    table = ResultTable()
    for row in krafft_rows() + ellison_fudenberg_rows():
        table.add_row(row)
    return table


@pytest.mark.benchmark(group="E8-worked-examples")
def test_worked_examples_converge_to_best_option(benchmark, save_results):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results(table, "E8_worked_examples")
    krafft = [row for row in table.rows if row["example"] == "krafft-investors"]
    ellison = [row for row in table.rows if row["example"] == "ellison-fudenberg"]
    # The best option is always well above its 1/m = 0.2 uniform share, even
    # at the weakest signal (eta1 = 0.6, where the theorem bound is vacuous),
    # and holds a clear majority once the signal is moderately strong.
    assert all(row["late_best_share"] > 0.4 for row in krafft)
    assert all(row["late_best_share"] > 0.55 for row in ellison)
    assert krafft[-1]["late_best_share"] > 0.7
    assert ellison[-1]["late_best_share"] > 0.8
    # Stronger signals (bigger eta1 / bigger gap) give larger late shares.
    assert krafft[-1]["late_best_share"] >= krafft[0]["late_best_share"] - 0.05
    assert ellison[-1]["late_best_share"] >= ellison[0]["late_best_share"] - 0.05
