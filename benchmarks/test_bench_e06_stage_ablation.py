"""E6 — both stages are necessary (Section 3 ablation).

Paper claim: "if we only have sampling (beta = 1 - alpha = 1) or only have
adoption (mu = 1), the process does not always converge to the best option.
Hence, both steps of the process seem crucial."

The benchmark runs the full two-stage dynamics against the two ablations on
identical reward sequences:

* sampling-only — every considered option is adopted regardless of its signal
  (``alpha = beta = 1``): pure imitation, which herds onto an arbitrary option;
* adoption-only — every individual explores uniformly every step (``mu = 1``):
  signals are used but no social information spreads, capping the share the
  best option can reach at roughly ``beta / (m - (m-1)(beta - alpha))``-ish
  levels, far from 1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BernoulliEnvironment, RecordedRewardSequence, best_option_share, empirical_regret
from repro.baselines import SocialLearningBaseline
from repro.core.adoption import AlwaysAdoptRule, SymmetricAdoptionRule
from repro.core.sampling import MixtureSampling, UniformSampling
from repro.experiments import ResultTable

POPULATION = 3000
NUM_OPTIONS = 5
HORIZON = 600
BETA = 0.62
REPLICATIONS = 3


def build_variants():
    return {
        "full two-stage": dict(
            adoption_rule=SymmetricAdoptionRule(BETA), sampling_rule=MixtureSampling(0.02)
        ),
        "sampling-only (beta=1)": dict(
            adoption_rule=AlwaysAdoptRule(), sampling_rule=MixtureSampling(0.02)
        ),
        "adoption-only (mu=1)": dict(
            adoption_rule=SymmetricAdoptionRule(BETA), sampling_rule=UniformSampling()
        ),
    }


def run_experiment() -> ResultTable:
    table = ResultTable()
    accumulators = {name: {"regret": [], "share": []} for name in build_variants()}
    for seed in range(REPLICATIONS):
        env = BernoulliEnvironment.with_gap(NUM_OPTIONS, best_quality=0.8, gap=0.3, rng=seed)
        recorded = RecordedRewardSequence.from_environment(env, HORIZON)
        rewards = recorded.rewards
        for name, rules in build_variants().items():
            learner = SocialLearningBaseline(
                NUM_OPTIONS, population_size=POPULATION, rng=seed + 500, **rules
            )
            distributions = learner.run_on_rewards(rewards.copy())
            accumulators[name]["regret"].append(
                empirical_regret(distributions, rewards, best_quality=0.8)
            )
            accumulators[name]["share"].append(best_option_share(distributions, 0))
    for name, metrics in accumulators.items():
        table.add_row(
            {
                "variant": name,
                "regret": float(np.mean(metrics["regret"])),
                "best_option_share": float(np.mean(metrics["share"])),
            }
        )
    return table


@pytest.mark.benchmark(group="E6-stage-ablation")
def test_two_stage_dynamics_beats_single_stage_ablations(benchmark, save_results):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results(table, "E6_stage_ablation")
    rows = {row["variant"]: row for row in table.rows}
    full = rows["full two-stage"]
    sampling_only = rows["sampling-only (beta=1)"]
    adoption_only = rows["adoption-only (mu=1)"]
    # The full dynamics dominates both ablations on regret and best-option share.
    assert full["regret"] < sampling_only["regret"]
    assert full["regret"] < adoption_only["regret"]
    assert full["best_option_share"] > sampling_only["best_option_share"]
    assert full["best_option_share"] > adoption_only["best_option_share"]
    # And reaches a strong majority on the best option, which neither ablation does.
    assert full["best_option_share"] > 0.6
    assert sampling_only["best_option_share"] < 0.6
    assert adoption_only["best_option_share"] < 0.6
