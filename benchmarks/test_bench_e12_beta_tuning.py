"""E12 — tuning beta recovers the classic O(sqrt(ln m / T)) MWU rate.

Paper claim (conclusion): "as an algorithm designer, if we were to implement
these learning dynamics as a distributed approximation to the stochastic
version of MWU method, we can optimize beta to attain the usual
O(sqrt(ln m / T)) regret; in the distributed learning dynamics, we are
constrained by the behavior of the group — the regret bound will only be as
good as the beta they use."

The benchmark compares, at several horizons, the infinite-population dynamics
run with (a) a fixed behavioural ``beta`` and (b) the horizon-optimal
``beta*(T)`` from :func:`repro.core.theory.optimal_beta`, against the
``2*sqrt(2 ln m / T)`` target rate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliEnvironment,
    TheoryBounds,
    expected_regret,
    optimal_beta,
    simulate_infinite_population,
)
from repro.experiments import ResultTable

NUM_OPTIONS = 10
FIXED_BETA = 0.68
HORIZONS = [200, 1000, 5000]
REPLICATIONS = 3


def mean_regret(beta: float, horizon: int) -> float:
    delta = TheoryBounds(num_options=NUM_OPTIONS, beta=beta, mu=0.0, strict=False).delta
    mu = min(delta**2 / 6.0, 0.05)
    regrets = []
    for seed in range(REPLICATIONS):
        env = BernoulliEnvironment.with_gap(NUM_OPTIONS, best_quality=0.8, gap=0.3, rng=seed)
        trajectory = simulate_infinite_population(env, horizon, beta=beta, mu=mu)
        regrets.append(expected_regret(trajectory.distribution_matrix(), env.qualities))
    return float(np.mean(regrets))


def run_experiment() -> ResultTable:
    table = ResultTable()
    for horizon in HORIZONS:
        tuned_beta = optimal_beta(horizon, NUM_OPTIONS)
        target_rate = 2.0 * np.sqrt(2.0 * np.log(NUM_OPTIONS) / horizon)
        table.add_row(
            {
                "horizon": horizon,
                "fixed_beta": FIXED_BETA,
                "fixed_beta_regret": mean_regret(FIXED_BETA, horizon),
                "tuned_beta": tuned_beta,
                "tuned_beta_regret": mean_regret(tuned_beta, horizon),
                "target_rate_2sqrt(2lnm/T)": float(target_rate),
            }
        )
    return table


@pytest.mark.benchmark(group="E12-beta-tuning")
def test_tuned_beta_approaches_classic_mwu_rate(benchmark, save_results):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results(table, "E12_beta_tuning")
    rows = table.sort_by("horizon").rows
    # Tuned beta shrinks toward 1/2 as the horizon grows.
    tuned_betas = [row["tuned_beta"] for row in rows]
    assert tuned_betas == sorted(tuned_betas, reverse=True)
    # At long horizons tuning beta beats the fixed behavioural beta ...
    assert rows[-1]["tuned_beta_regret"] <= rows[-1]["fixed_beta_regret"] + 0.01
    # ... and the tuned regret is within a small constant of the target rate
    # (the rate is an order bound, not an exact constant).
    for row in rows:
        assert row["tuned_beta_regret"] <= 3.0 * row["target_rate_2sqrt(2lnm/T)"] + 0.05
