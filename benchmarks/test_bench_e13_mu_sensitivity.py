"""E13 (ablation) — sensitivity to the exploration rate mu.

The paper requires ``mu > 0`` (to keep every option alive and to restart the
epochs of Theorem 4.4) and ``6*mu <= delta^2`` (so the exploration cost term
``6*mu/delta`` in the regret bound stays below ``delta``).  This ablation
sweeps ``mu`` from 0 to well past the theorem cap on a stationary environment
and on an environment whose best option changes identity, exhibiting the
trade-off the bound encodes:

* ``mu = 0`` — lowest regret while the environment is stationary, but the
  group cannot recover once the best option changes (popularity of an emptied
  option never regenerates);
* moderate ``mu`` (around the theorem cap ``delta^2/6``) — near-optimal
  stationary regret and fast recovery after a change;
* large ``mu`` — stationary regret grows roughly linearly with ``mu`` as the
  bound's ``6*mu/delta`` term predicts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliEnvironment,
    PiecewiseConstantDriftEnvironment,
    TheoryBounds,
    expected_regret,
    simulate_finite_population,
)
from repro.experiments import ResultTable

POPULATION = 3000
NUM_OPTIONS = 4
BETA = 0.62
HORIZON = 500
PHASE = 300
REPLICATIONS = 3
MUS = [0.0, 0.005, 0.028, 0.1, 0.3]


def stationary_regret(mu: float) -> float:
    regrets = []
    for seed in range(REPLICATIONS):
        env = BernoulliEnvironment.with_gap(NUM_OPTIONS, best_quality=0.85, gap=0.35, rng=seed)
        trajectory = simulate_finite_population(
            env, POPULATION, HORIZON, beta=BETA, mu=mu, rng=seed + 100
        )
        regrets.append(expected_regret(trajectory.popularity_matrix(), env.qualities))
    return float(np.mean(regrets))


def post_switch_share(mu: float) -> float:
    """Average share of the *new* best option in the second half after a switch."""
    shares = []
    for seed in range(REPLICATIONS):
        env = PiecewiseConstantDriftEnvironment(
            phases=[[0.85, 0.4, 0.4, 0.4], [0.4, 0.85, 0.4, 0.4]],
            phase_length=PHASE,
            rng=seed,
        )
        trajectory = simulate_finite_population(
            env, POPULATION, 2 * PHASE, beta=BETA, mu=mu, rng=seed + 200
        )
        matrix = trajectory.popularity_matrix()
        shares.append(float(matrix[PHASE + PHASE // 2 :, 1].mean()))
    return float(np.mean(shares))


def run_experiment() -> ResultTable:
    table = ResultTable()
    theorem_cap = TheoryBounds(
        num_options=NUM_OPTIONS, beta=BETA, mu=0.0, strict=False
    ).delta ** 2 / 6.0
    for mu in MUS:
        table.add_row(
            {
                "mu": mu,
                "theorem_cap_delta2_over_6": theorem_cap,
                "within_theorem_range": mu <= theorem_cap and mu > 0,
                "stationary_regret": stationary_regret(mu),
                "post_switch_best_share": post_switch_share(mu),
            }
        )
    return table


@pytest.mark.benchmark(group="E13-mu-sensitivity")
def test_exploration_rate_trade_off(benchmark, save_results):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results(table, "E13_mu_sensitivity")
    rows = {row["mu"]: row for row in table.rows}
    # Without exploration the group cannot re-learn after the switch...
    assert rows[0.0]["post_switch_best_share"] < 0.3
    # ...while the theorem-capped mu recovers decisively.
    assert rows[0.028]["post_switch_best_share"] > 0.6
    # Large mu pays the exploration tax on stationary regret.
    assert rows[0.3]["stationary_regret"] > rows[0.028]["stationary_regret"] + 0.05
    # Moderate mu costs little compared to mu = 0 in the stationary setting.
    assert rows[0.028]["stationary_regret"] <= rows[0.0]["stationary_regret"] + 0.05
