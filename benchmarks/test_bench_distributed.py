"""Distributed-protocol throughput: vectorised engines vs the message loop.

The message-passing loop (:class:`repro.distributed.DistributedLearningProtocol`)
pays Python-interpreter cost per node *and* per message object per round, so
at ``N = 10^4`` a single round costs hundreds of milliseconds.  The
vectorised engine (:class:`repro.distributed.VectorizedProtocol`) replaces
the node/message loop with whole-population array operations, and the
batched engine (:class:`repro.distributed.BatchedProtocol`) amortises the
remaining per-round Python overhead across ``R`` replicate fleets.  This
benchmark measures all three on a lossy network at the ISSUE's target size
``N = 10^4`` and asserts the vectorised engine is at least 10x faster than
the loop per replicate.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.adoption import SymmetricAdoptionRule
from repro.distributed import (
    BatchedProtocol,
    DistributedLearningProtocol,
    LossyTransport,
    VectorizedProtocol,
)
from repro.environments import BernoulliEnvironment
from repro.experiments import ResultTable

QUALITIES = [0.9, 0.6, 0.6, 0.5]
NUM_NODES = 10_000
ROUNDS = 5
BATCH_REPLICATES = 16
BETA = 0.62
MU = 0.03
LOSS = 0.1

REQUIRED_SPEEDUP = 10.0


def _run_loop() -> None:
    environment = BernoulliEnvironment(QUALITIES, rng=0)
    protocol = DistributedLearningProtocol(
        NUM_NODES,
        len(QUALITIES),
        adoption_rule=SymmetricAdoptionRule(BETA),
        exploration_rate=MU,
        transport=LossyTransport(loss_rate=LOSS, rng=1),
        rng=2,
    )
    protocol.run(environment, ROUNDS)


def _time_loop() -> float:
    start = time.perf_counter()
    _run_loop()
    return time.perf_counter() - start


def _run_vectorized() -> None:
    environment = BernoulliEnvironment(QUALITIES, rng=0)
    protocol = VectorizedProtocol(
        NUM_NODES,
        len(QUALITIES),
        adoption_rule=SymmetricAdoptionRule(BETA),
        exploration_rate=MU,
        loss_rate=LOSS,
        rng=2,
    )
    protocol.run(environment, ROUNDS)


def _time_vectorized() -> float:
    start = time.perf_counter()
    _run_vectorized()
    return time.perf_counter() - start


def _run_batched() -> None:
    environment = BernoulliEnvironment(QUALITIES, rng=0)
    protocol = BatchedProtocol(
        NUM_NODES,
        len(QUALITIES),
        num_replicates=BATCH_REPLICATES,
        adoption_rule=SymmetricAdoptionRule(BETA),
        exploration_rate=MU,
        loss_rate=LOSS,
        rng=2,
    )
    protocol.run(environment, ROUNDS)


def _time_batched() -> float:
    start = time.perf_counter()
    _run_batched()
    return time.perf_counter() - start


@pytest.mark.benchmark(group="distributed-throughput")
def test_vectorized_protocol_throughput(save_results, traced_peak):
    """The array-ops protocol engine delivers >= 10x over the message loop."""
    # Warm both code paths once so neither side pays one-off import or
    # allocation costs inside the timed region.
    _time_vectorized()

    vectorized_seconds = min(_time_vectorized() for _ in range(3))
    loop_seconds = _time_loop()
    batched_seconds = min(_time_batched() for _ in range(2))

    # Peak memory in a separate tracemalloc pass (tracing skews wall time).
    _, loop_peak = traced_peak(_run_loop)
    _, vectorized_peak = traced_peak(_run_vectorized)
    _, batched_peak = traced_peak(_run_batched)

    node_rounds = NUM_NODES * ROUNDS
    speedup = loop_seconds / vectorized_seconds
    batched_speedup = (loop_seconds * BATCH_REPLICATES) / batched_seconds
    table = ResultTable(
        [
            {
                "engine": "loop",
                "replicates": 1,
                "seconds": loop_seconds,
                "node_rounds_per_s": node_rounds / loop_seconds,
                "peak_mb": loop_peak / 2**20,
                "speedup_per_replicate": 1.0,
            },
            {
                "engine": "vectorized",
                "replicates": 1,
                "seconds": vectorized_seconds,
                "node_rounds_per_s": node_rounds / vectorized_seconds,
                "peak_mb": vectorized_peak / 2**20,
                "speedup_per_replicate": speedup,
            },
            {
                "engine": "batched",
                "replicates": BATCH_REPLICATES,
                "seconds": batched_seconds,
                "node_rounds_per_s": node_rounds * BATCH_REPLICATES / batched_seconds,
                "peak_mb": batched_peak / 2**20,
                "speedup_per_replicate": batched_speedup,
            },
        ]
    )
    save_results(table, "bench_distributed")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"vectorized protocol engine speedup {speedup:.1f}x below the required "
        f"{REQUIRED_SPEEDUP:.0f}x at N={NUM_NODES}"
    )


@pytest.mark.benchmark(group="distributed-throughput")
def test_engines_agree_on_mean_terminal_share(save_results):
    """A throughput win is worthless if the fast engines simulate a different protocol.

    Cross-checks the replicate-mean terminal best-option popularity of the
    three engines at a smaller size (the loop engine is the bottleneck).
    The full distributional gate lives in
    ``tests/integration/test_cross_validation.py``; this is a cheap smoke
    that the benchmark configuration itself is simulated consistently.
    """
    nodes, rounds, replicates = 300, 40, 30

    def loop_terminal():
        values = []
        for seed in range(replicates):
            environment = BernoulliEnvironment(QUALITIES, rng=seed)
            protocol = DistributedLearningProtocol(
                nodes,
                len(QUALITIES),
                adoption_rule=SymmetricAdoptionRule(BETA),
                exploration_rate=MU,
                transport=LossyTransport(loss_rate=LOSS, rng=seed + 500),
                rng=seed + 1000,
            )
            values.append(protocol.run(environment, rounds).popularity_matrix[-1, 0])
        return float(np.mean(values))

    def vectorized_terminal():
        values = []
        for seed in range(replicates):
            environment = BernoulliEnvironment(QUALITIES, rng=seed)
            protocol = VectorizedProtocol(
                nodes,
                len(QUALITIES),
                adoption_rule=SymmetricAdoptionRule(BETA),
                exploration_rate=MU,
                loss_rate=LOSS,
                rng=seed + 1000,
            )
            values.append(protocol.run(environment, rounds).popularity_matrix[-1, 0])
        return float(np.mean(values))

    def batched_terminal():
        environment = BernoulliEnvironment(QUALITIES, rng=7)
        protocol = BatchedProtocol(
            nodes,
            len(QUALITIES),
            num_replicates=replicates,
            adoption_rule=SymmetricAdoptionRule(BETA),
            exploration_rate=MU,
            loss_rate=LOSS,
            rng=8,
        )
        result = protocol.run(environment, rounds)
        return float(result.trajectory.popularity_tensor()[-1, :, 0].mean())

    loop_mean = loop_terminal()
    assert vectorized_terminal() == pytest.approx(loop_mean, abs=0.08)
    assert batched_terminal() == pytest.approx(loop_mean, abs=0.08)
