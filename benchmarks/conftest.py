"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one experiment from DESIGN.md's experiment index
(E1-E12), asserts the paper's qualitative/quantitative claim, and writes its
result table to CSV so the numbers quoted in EXPERIMENTS.md can be re-derived
from a single run of::

    pytest benchmarks/ --benchmark-only

Output location: the *committed* reference tables live directly in
``benchmarks/results/``; ordinary benchmark runs write to the uncommitted
(gitignored) ``benchmarks/results/local/`` so that re-running the suite never
dirties the working tree with machine-dependent timings.  To intentionally
refresh the committed tables, point ``REPRO_BENCH_RESULTS_DIR`` at the
committed directory::

    REPRO_BENCH_RESULTS_DIR=benchmarks/results pytest benchmarks/ -q
"""

from __future__ import annotations

import gc
import os
import tracemalloc
from pathlib import Path

import pytest

from repro.experiments import ResultTable, write_csv

RESULTS_DIR = Path(__file__).parent / "results" / "local"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benchmark result tables are written.

    Defaults to the uncommitted ``benchmarks/results/local/``; override with
    the ``REPRO_BENCH_RESULTS_DIR`` environment variable (e.g. to refresh the
    committed reference tables in ``benchmarks/results/``).
    """
    override = os.environ.get("REPRO_BENCH_RESULTS_DIR")
    directory = Path(override) if override else RESULTS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    return directory


@pytest.fixture
def traced_peak():
    """Callable: run ``fn()`` under tracemalloc, return ``(result, peak_bytes)``.

    Tracing slows allocation noticeably, so benchmarks measure memory in a
    *separate* pass from wall time — never mix the two in one run.
    """

    def _measure(fn):
        gc.collect()
        tracemalloc.start()
        try:
            result = fn()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return result, peak

    return _measure


@pytest.fixture
def save_results(results_dir):
    """Callable that persists a ResultTable and echoes it to stdout."""

    def _save(table: ResultTable, name: str) -> None:
        write_csv(table, results_dir / f"{name}.csv")
        print(f"\n=== {name} ===")
        print(table.to_text())

    return _save
