"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one experiment from DESIGN.md's experiment index
(E1-E12), asserts the paper's qualitative/quantitative claim, and writes its
result table to ``benchmarks/results/<experiment>.csv`` so the numbers quoted
in EXPERIMENTS.md can be re-derived from a single run of::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ResultTable, write_csv

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benchmark result tables are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_results(results_dir):
    """Callable that persists a ResultTable and echoes it to stdout."""

    def _save(table: ResultTable, name: str) -> None:
        write_csv(table, results_dir / f"{name}.csv")
        print(f"\n=== {name} ===")
        print(table.to_text())

    return _save
