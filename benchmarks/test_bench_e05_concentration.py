"""E5 — Propositions 4.1-4.3: per-step concentration and the occupancy floor.

Paper claims (conditioned on the history up to time t):

* Prop 4.1 — the stage-1 consideration counts satisfy
  ``S^{t+1}_j ~ (1+2*delta') ((1-mu)Q^t_j + mu/m) N`` w.h.p.;
* Prop 4.2/4.3 — the stage-2 adoption counts satisfy
  ``D^{t+1}_j ~ (1+6*delta'') ((1-mu)Q^t_j + mu/m) N beta^R (1-beta)^(1-R)``
  w.h.p., and consequently ``Q^t_j >= mu(1-beta)/(4m)`` for all j w.h.p.

The benchmark measures, across many independent single steps of the finite
dynamics, the worst multiplicative deviation of the realised adoption counts
from their conditional expectation and the minimum popularity reached over a
long run, comparing both against the propositions' expressions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BernoulliEnvironment, TheoryBounds, simulate_finite_population
from repro.analysis import multiplicative_deviation
from repro.core.adoption import SymmetricAdoptionRule
from repro.core.dynamics import FinitePopulationDynamics
from repro.core.sampling import MixtureSampling
from repro.core.state import PopulationState
from repro.experiments import ResultTable

POPULATIONS = [2_000, 20_000, 200_000]
NUM_OPTIONS = 4
BETA = 0.6
MU = 0.027
SINGLE_STEP_TRIALS = 60
FLOOR_HORIZON = 400


def single_step_deviation(population: int, seed: int) -> float:
    """Worst-case multiplicative deviation of D^{t+1} from its conditional mean."""
    rng = np.random.default_rng(seed)
    popularity = rng.dirichlet(np.ones(NUM_OPTIONS))
    counts = rng.multinomial(population, popularity)
    dynamics = FinitePopulationDynamics(
        population,
        NUM_OPTIONS,
        adoption_rule=SymmetricAdoptionRule(BETA),
        sampling_rule=MixtureSampling(MU),
        initial_state=PopulationState.from_counts(counts, population),
        rng=seed + 1,
    )
    rewards = rng.integers(0, 2, size=NUM_OPTIONS)
    state = dynamics.step(rewards)
    consideration = (1 - MU) * (counts / counts.sum()) + MU / NUM_OPTIONS
    expected = consideration * population * np.where(rewards == 1, BETA, 1 - BETA)
    return multiplicative_deviation(state.counts.astype(float) + 1e-12, expected)


def run_experiment() -> ResultTable:
    table = ResultTable()
    for population in POPULATIONS:
        bounds = TheoryBounds(
            num_options=NUM_OPTIONS, beta=BETA, mu=MU, population_size=population
        )
        deviations = [
            single_step_deviation(population, seed) for seed in range(SINGLE_STEP_TRIALS)
        ]
        env = BernoulliEnvironment.with_gap(NUM_OPTIONS, best_quality=0.9, gap=0.5, rng=0)
        trajectory = simulate_finite_population(
            env, population, FLOOR_HORIZON, beta=BETA, mu=MU, rng=1
        )
        min_popularity = float(trajectory.popularity_matrix()[50:].min())
        table.add_row(
            {
                "N": population,
                "delta_prime": bounds.sampling_concentration(),
                "delta_double_prime": bounds.adoption_concentration(),
                "prop43_bound": bounds.single_step_closeness(),
                "measured_worst_step_ratio": float(np.max(deviations)),
                "measured_mean_step_ratio": float(np.mean(deviations)),
                "occupancy_floor": bounds.occupancy_floor(),
                "measured_min_popularity": min_popularity,
                "step_within_bound": float(np.max(deviations)) <= bounds.single_step_closeness(),
                "floor_respected": min_popularity >= bounds.occupancy_floor() * 0.5,
            }
        )
    return table


@pytest.mark.benchmark(group="E5-concentration")
def test_stagewise_concentration_and_occupancy_floor(benchmark, save_results):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results(table, "E5_concentration")
    # Concentration bounds may be vacuous (>> 1) for the smallest N; the
    # measured ratio must respect the bound wherever the bound is meaningful,
    # and must shrink toward 1 as N grows.
    assert all(table.column("step_within_bound"))
    assert all(table.column("floor_respected"))
    ratios = table.sort_by("N").column("measured_worst_step_ratio")
    assert ratios == sorted(ratios, reverse=True)
