"""E3 — Theorem 4.4: finite-population regret is at most 6*delta.

Paper claim: for finite ``N`` (satisfying the theorem's — very conservative —
size conditions) and ``ln(m)/delta^2 <= T <= N^10/(m*delta)``, the average
regret of the finite-population dynamics is at most ``6*delta``.

The benchmark sweeps the population size ``N`` and the number of options
``m``, runs horizons spanning several proof epochs, and records
measured-vs-bound plus the additional finite-population penalty relative to
the infinite dynamics on matched parameters.  The paper's bound holds at
population sizes orders of magnitude below the theorem's thresholds — the
bound is conservative, which the table makes visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliEnvironment,
    TheoryBounds,
    expected_regret,
    simulate_finite_population,
    simulate_infinite_population,
)
from repro.core.epochs import EpochSchedule
from repro.experiments import ResultTable

POPULATIONS = [100, 1000, 10_000]
OPTION_COUNTS = [2, 5, 10]
BETA = 0.6
REPLICATIONS = 3


def run_experiment() -> ResultTable:
    table = ResultTable()
    delta = TheoryBounds(num_options=2, beta=BETA, mu=0.0, strict=False).delta
    mu = delta**2 / 6.0
    for num_options in OPTION_COUNTS:
        bounds = TheoryBounds(num_options=num_options, beta=BETA, mu=mu)
        horizon = int(np.ceil(bounds.epoch_length())) * 3
        infinite_regrets = []
        for seed in range(REPLICATIONS):
            env = BernoulliEnvironment.with_gap(num_options, best_quality=0.8, gap=0.3, rng=seed)
            trajectory = simulate_infinite_population(env, horizon, beta=BETA, mu=mu)
            infinite_regrets.append(
                expected_regret(trajectory.distribution_matrix(), env.qualities)
            )
        infinite_regret = float(np.mean(infinite_regrets))
        for population in POPULATIONS:
            regrets, worst_epoch = [], []
            for seed in range(REPLICATIONS):
                env = BernoulliEnvironment.with_gap(
                    num_options, best_quality=0.8, gap=0.3, rng=seed
                )
                trajectory = simulate_finite_population(
                    env, population, horizon, beta=BETA, mu=mu, rng=seed + 1000
                )
                matrix = trajectory.popularity_matrix()
                regrets.append(expected_regret(matrix, env.qualities))
                schedule = EpochSchedule.from_bounds(bounds, horizon)
                per_epoch = schedule.per_epoch_regret(
                    matrix, trajectory.reward_matrix().astype(float), env.best_quality
                )
                worst_epoch.append(per_epoch.max())
            measured = float(np.mean(regrets))
            table.add_row(
                {
                    "m": num_options,
                    "N": population,
                    "horizon": horizon,
                    "measured_regret": measured,
                    "bound_6delta": bounds.finite_regret_bound(),
                    "infinite_regret": infinite_regret,
                    "finite_penalty": measured - infinite_regret,
                    "worst_epoch_regret": float(np.mean(worst_epoch)),
                    "within_bound": measured <= bounds.finite_regret_bound(),
                }
            )
    return table


@pytest.mark.benchmark(group="E3-finite-regret")
def test_finite_population_regret_within_six_delta(benchmark, save_results):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results(table, "E3_finite_regret")
    assert all(table.column("within_bound"))
    # The finite-population penalty should shrink as N grows, for every m.
    for num_options in OPTION_COUNTS:
        penalties = table.filter(m=num_options).sort_by("N").column("finite_penalty")
        assert penalties[-1] <= penalties[0] + 0.02
