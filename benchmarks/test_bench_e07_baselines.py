"""E7 — the memoryless dynamics versus classical algorithms.

Paper claims (Sections 1 and 3): the finite-population dynamics is a
distributed, essentially memoryless implementation of the MWU method, so the
group as a whole behaves like a full-information learner even though no
individual stores weights; individuals alone would be solving a harder
(bandit-feedback) problem.

The benchmark compares, on identical recorded reward sequences:

* the paper's social dynamics (O(1) memory per individual, 1 observation/step);
* classic MWU and Hedge (centralised, full weight vector, full information);
* per-individual UCB / epsilon-greedy / Thompson sampling (per-agent memory);
* follow-the-crowd and uniform-random controls, and the fixed-best oracle.

Expected shape: MWU/Hedge <= social dynamics < bandit individuals (early
horizons) and social dynamics << no-signal imitation and random choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BernoulliEnvironment, RecordedRewardSequence, empirical_regret
from repro.baselines import (
    BestFixedOptionOracle,
    ClassicMWU,
    Exp3,
    FollowTheCrowd,
    HedgeMWU,
    IndividualEpsilonGreedy,
    IndividualThompsonSampling,
    IndividualUCB,
    ReplicatorDynamics,
    SocialLearningBaseline,
    UniformRandomChoice,
)
from repro.experiments import ResultTable

POPULATION = 2000
NUM_OPTIONS = 5
HORIZON = 500
REPLICATIONS = 3
QUALITY_BEST = 0.8
QUALITY_GAP = 0.3


def build_learners(seed: int):
    return {
        "social dynamics (paper)": SocialLearningBaseline(
            NUM_OPTIONS, population_size=POPULATION, rng=seed
        ),
        "classic MWU (tuned)": ClassicMWU.tuned(NUM_OPTIONS, HORIZON),
        "Hedge (tuned)": HedgeMWU.tuned(NUM_OPTIONS, HORIZON),
        "replicator dynamics": ReplicatorDynamics(NUM_OPTIONS, smoothing=0.8, exploration_rate=0.02),
        "EXP3 (bandit feedback)": Exp3.tuned(NUM_OPTIONS, HORIZON, rng=seed + 5),
        "individual UCB": IndividualUCB(NUM_OPTIONS, population_size=200, rng=seed + 1),
        "individual eps-greedy": IndividualEpsilonGreedy(
            NUM_OPTIONS, population_size=200, epsilon=0.1, rng=seed + 2
        ),
        "individual Thompson": IndividualThompsonSampling(
            NUM_OPTIONS, population_size=200, rng=seed + 3
        ),
        "follow the crowd": FollowTheCrowd(
            NUM_OPTIONS, population_size=POPULATION, exploration_rate=0.01, rng=seed + 4
        ),
        "uniform random": UniformRandomChoice(NUM_OPTIONS),
        "best fixed option (oracle)": None,  # constructed per environment below
    }


def run_experiment() -> ResultTable:
    metrics = {}
    for seed in range(REPLICATIONS):
        env = BernoulliEnvironment.with_gap(
            NUM_OPTIONS, best_quality=QUALITY_BEST, gap=QUALITY_GAP, rng=seed
        )
        recorded = RecordedRewardSequence.from_environment(env, HORIZON)
        rewards = recorded.rewards
        learners = build_learners(seed * 100)
        learners["best fixed option (oracle)"] = BestFixedOptionOracle.for_qualities(
            env.qualities
        )
        for name, learner in learners.items():
            distributions = learner.run_on_rewards(rewards.copy())
            regret = empirical_regret(distributions, rewards, best_quality=QUALITY_BEST)
            metrics.setdefault(name, []).append(regret)
    table = ResultTable()
    for name, regrets in metrics.items():
        table.add_row(
            {
                "learner": name,
                "regret": float(np.mean(regrets)),
                "regret_std": float(np.std(regrets)),
            }
        )
    return table


@pytest.mark.benchmark(group="E7-baselines")
def test_social_dynamics_competitive_with_full_information_baselines(benchmark, save_results):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results(table, "E7_baselines")
    regret = {row["learner"]: row["regret"] for row in table.rows}
    social = regret["social dynamics (paper)"]
    # The group behaves like a (slightly lossy) full-information learner ...
    assert social <= regret["classic MWU (tuned)"] + 0.1
    assert regret["best fixed option (oracle)"] <= social
    # ... and decisively beats signal-free imitation and random choice.
    assert social < regret["follow the crowd"] - 0.05
    assert social < regret["uniform random"] - 0.05
