"""Parallel-runtime benchmark: multi-process sharding and cache-hit replay.

A CPU-bound sweep — the per-seed loop engine, which the runtime shards into
one task per ``(point, seed)`` pair — runs three ways through the same
``run_sweep`` entry point:

* ``serial`` — the in-process :class:`SerialExecutor` (the default);
* ``parallel`` — a 4-worker :class:`ParallelExecutor` (skipped, with the
  asserted floor untested, on machines with fewer than 4 CPUs); and
* ``cache replay`` — the serial executor against a warm
  :class:`ResultStore`, which must serve every task without recompute.

Floors asserted (ISSUE 5): the 4-worker sweep is at least 2x faster than
serial, bit-identical per-(point, seed); warm replay is at least 50x faster
than the cold compute, with zero store misses.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments import ParameterGrid, ResultTable, run_sweep
from repro.experiments.dynamics_sweep import dynamics_point_replication
from repro.runtime import ParallelExecutor, ResultStore, SerialExecutor, Task

QUALITIES = (0.8, 0.5, 0.5, 0.5, 0.5)
POPULATION = 20_000
REPLICATES = 4
HORIZON = 400
GRID = ParameterGrid({"beta": (0.55, 0.6, 0.65, 0.7), "mu": (0.02, 0.1)})
BASE_PARAMETERS = {"qualities": QUALITIES, "N": POPULATION, "T": HORIZON}

PARALLEL_WORKERS = 4
REQUIRED_PARALLEL_SPEEDUP = 2.0
REQUIRED_REPLAY_SPEEDUP = 50.0


def _run(executor=None, store=None):
    """One full sweep through the runtime; returns (seconds, per-point metrics)."""
    start = time.perf_counter()
    results, _ = run_sweep(
        "bench-runtime",
        GRID,
        dynamics_point_replication,
        replications=REPLICATES,
        seed=0,
        base_parameters=BASE_PARAMETERS,
        executor=executor,
        store=store,
    )
    seconds = time.perf_counter() - start
    assert len(results) == len(GRID)
    assert all(len(result.metrics) == REPLICATES for result in results)
    return seconds, [result.metrics for result in results]


@pytest.mark.benchmark(group="throughput")
def test_runtime_sharding_and_replay_throughput(save_results, tmp_path):
    """4-worker sharding >= 2x over serial; warm-store replay >= 50x, 0 misses."""
    # Warm once (imports, allocator) before timing the serial baseline.
    _run(executor=SerialExecutor())
    serial_seconds, serial_metrics = _run(executor=SerialExecutor())

    rows = [
        {
            "execution": "serial",
            "seconds": serial_seconds,
            "speedup_vs_serial": 1.0,
            "tasks": len(GRID) * REPLICATES,
        }
    ]

    can_go_parallel = (os.cpu_count() or 1) >= PARALLEL_WORKERS
    if can_go_parallel:
        parallel_seconds, parallel_metrics = _run(
            executor=ParallelExecutor(PARALLEL_WORKERS)
        )
        assert parallel_metrics == serial_metrics, (
            "parallel sweep is not bit-identical to serial"
        )
        rows.append(
            {
                "execution": f"parallel-{PARALLEL_WORKERS}",
                "seconds": parallel_seconds,
                "speedup_vs_serial": serial_seconds / parallel_seconds,
                "tasks": len(GRID) * REPLICATES,
            }
        )

    store_path = tmp_path / "bench_runtime.sqlite"
    with ResultStore(store_path) as store:
        cold_seconds, cold_metrics = _run(store=store)
        assert store.misses == len(GRID) * REPLICATES
    with ResultStore(store_path) as store:
        replay_seconds, replay_metrics = _run(store=store)
        assert store.misses == 0, "warm replay recomputed tasks"
    assert cold_metrics == serial_metrics
    assert replay_metrics == serial_metrics
    replay_speedup = cold_seconds / replay_seconds
    rows.append(
        {
            "execution": "cache-replay",
            "seconds": replay_seconds,
            "speedup_vs_serial": serial_seconds / replay_seconds,
            "tasks": len(GRID) * REPLICATES,
        }
    )

    save_results(ResultTable(rows), "bench_runtime")

    assert replay_speedup >= REQUIRED_REPLAY_SPEEDUP, (
        f"cache-hit replay speedup {replay_speedup:.1f}x below the required "
        f"{REQUIRED_REPLAY_SPEEDUP:.0f}x over cold compute"
    )
    if not can_go_parallel:
        pytest.skip(
            f"only {os.cpu_count()} CPUs: the {PARALLEL_WORKERS}-worker "
            f">= {REQUIRED_PARALLEL_SPEEDUP:.0f}x floor needs "
            f"{PARALLEL_WORKERS} cores"
        )
    parallel_speedup = serial_seconds / parallel_seconds
    assert parallel_speedup >= REQUIRED_PARALLEL_SPEEDUP, (
        f"{PARALLEL_WORKERS}-worker speedup {parallel_speedup:.1f}x below the "
        f"required {REQUIRED_PARALLEL_SPEEDUP:.0f}x on a CPU-bound "
        f"{len(GRID)}-point x {REPLICATES}-replicate grid at N={POPULATION}"
    )


# -- store-bound replay at scale (ISSUE 7) -----------------------------------

STORE_ENTRIES = 100_000
STORE_BATCH = 5_000
STORE_METRIC_ROWS = 2


def _synthetic_task(index: int) -> Task:
    """A minimal, cheap-to-key task; parameters make every key distinct."""
    return Task(
        ordinal=index,
        point_index=index,
        name="bench-store",
        function_ref="benchmarks.test_bench_runtime:_synthetic_task",
        mode="per_seed",
        parameters={"index": index, "beta": 0.55 + (index % 32) / 1000.0},
        seeds=(index,),
        replicate_offset=0,
    )


def _synthetic_metrics(index: int):
    return [
        {"regret": 1.0 / (index + 1), "share": 0.5 + (index % 7) / 100.0}
        for _ in range(STORE_METRIC_ROWS)
    ]


@pytest.mark.benchmark(group="throughput")
def test_store_bound_replay_at_scale(save_results, tmp_path):
    """Tiered-store replay over 1e5 cached entries: populate, hot get, cold get.

    Measures the store alone (no simulation): bulk ``put_many`` through the
    columnar spill path, warm ``get_many`` replay served by the in-memory
    hot tier, and — after a reopen, so the hot tier starts empty — cold
    replay decoded from the ``.npz`` segments.  Asserts zero misses on both
    replay paths and a bit-identical cold round trip; throughput is recorded
    but not floored (hot-path regressions show up in the saved table).
    """
    path = tmp_path / "bench_store.sqlite"
    tasks = [_synthetic_task(index) for index in range(STORE_ENTRIES)]
    expected = {index: _synthetic_metrics(index) for index in range(0, STORE_ENTRIES, 9973)}

    store = ResultStore(path, compaction_interval=None)
    start = time.perf_counter()
    for begin in range(0, STORE_ENTRIES, STORE_BATCH):
        batch = tasks[begin : begin + STORE_BATCH]
        store.put_many(
            [(task, _synthetic_metrics(task.ordinal)) for task in batch]
        )
    populate_seconds = time.perf_counter() - start
    assert store.counters().spills == STORE_ENTRIES
    keys = [store.key_for(task) for task in tasks]

    # Hot replay: everything admitted on put is still resident (the default
    # 64 MiB budget comfortably holds 1e5 two-row entries).
    start = time.perf_counter()
    hot = store.get_many(keys)
    hot_seconds = time.perf_counter() - start
    counters = store.counters()
    assert len(hot) == STORE_ENTRIES
    assert counters.misses == 0, "hot replay missed cached entries"
    assert counters.hot_hits == STORE_ENTRIES
    store.compact(force=True)
    store.close()

    # Cold replay: a fresh process' first pass over the same store.
    store = ResultStore(path, compaction_interval=None)
    assert store.hot_entries == 0
    start = time.perf_counter()
    cold = store.get_many(keys)
    cold_seconds = time.perf_counter() - start
    counters = store.counters()
    assert len(cold) == STORE_ENTRIES
    assert counters.misses == 0, "cold replay missed cached entries"
    assert counters.cold_hits == STORE_ENTRIES
    store.close()

    for index, metrics in expected.items():
        assert cold[keys[index]] == metrics, (
            "cold tier did not round-trip bit-identically"
        )
        assert hot[keys[index]] == metrics

    save_results(
        ResultTable(
            [
                {
                    "phase": phase,
                    "seconds": seconds,
                    "entries_per_second": STORE_ENTRIES / seconds,
                    "entries": STORE_ENTRIES,
                }
                for phase, seconds in (
                    ("populate", populate_seconds),
                    ("hot-replay", hot_seconds),
                    ("cold-replay", cold_seconds),
                )
            ]
        ),
        "bench_store_replay",
    )
