"""Parallel-runtime benchmark: multi-process sharding and cache-hit replay.

A CPU-bound sweep — the per-seed loop engine, which the runtime shards into
one task per ``(point, seed)`` pair — runs three ways through the same
``run_sweep`` entry point:

* ``serial`` — the in-process :class:`SerialExecutor` (the default);
* ``parallel`` — a 4-worker :class:`ParallelExecutor` (skipped, with the
  asserted floor untested, on machines with fewer than 4 CPUs); and
* ``cache replay`` — the serial executor against a warm
  :class:`ResultStore`, which must serve every task without recompute.

Floors asserted (ISSUE 5): the 4-worker sweep is at least 2x faster than
serial, bit-identical per-(point, seed); warm replay is at least 50x faster
than the cold compute, with zero store misses.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments import ParameterGrid, ResultTable, run_sweep
from repro.experiments.dynamics_sweep import dynamics_point_replication
from repro.runtime import ParallelExecutor, ResultStore, SerialExecutor

QUALITIES = (0.8, 0.5, 0.5, 0.5, 0.5)
POPULATION = 20_000
REPLICATES = 4
HORIZON = 400
GRID = ParameterGrid({"beta": (0.55, 0.6, 0.65, 0.7), "mu": (0.02, 0.1)})
BASE_PARAMETERS = {"qualities": QUALITIES, "N": POPULATION, "T": HORIZON}

PARALLEL_WORKERS = 4
REQUIRED_PARALLEL_SPEEDUP = 2.0
REQUIRED_REPLAY_SPEEDUP = 50.0


def _run(executor=None, store=None):
    """One full sweep through the runtime; returns (seconds, per-point metrics)."""
    start = time.perf_counter()
    results, _ = run_sweep(
        "bench-runtime",
        GRID,
        dynamics_point_replication,
        replications=REPLICATES,
        seed=0,
        base_parameters=BASE_PARAMETERS,
        executor=executor,
        store=store,
    )
    seconds = time.perf_counter() - start
    assert len(results) == len(GRID)
    assert all(len(result.metrics) == REPLICATES for result in results)
    return seconds, [result.metrics for result in results]


@pytest.mark.benchmark(group="throughput")
def test_runtime_sharding_and_replay_throughput(save_results, tmp_path):
    """4-worker sharding >= 2x over serial; warm-store replay >= 50x, 0 misses."""
    # Warm once (imports, allocator) before timing the serial baseline.
    _run(executor=SerialExecutor())
    serial_seconds, serial_metrics = _run(executor=SerialExecutor())

    rows = [
        {
            "execution": "serial",
            "seconds": serial_seconds,
            "speedup_vs_serial": 1.0,
            "tasks": len(GRID) * REPLICATES,
        }
    ]

    can_go_parallel = (os.cpu_count() or 1) >= PARALLEL_WORKERS
    if can_go_parallel:
        parallel_seconds, parallel_metrics = _run(
            executor=ParallelExecutor(PARALLEL_WORKERS)
        )
        assert parallel_metrics == serial_metrics, (
            "parallel sweep is not bit-identical to serial"
        )
        rows.append(
            {
                "execution": f"parallel-{PARALLEL_WORKERS}",
                "seconds": parallel_seconds,
                "speedup_vs_serial": serial_seconds / parallel_seconds,
                "tasks": len(GRID) * REPLICATES,
            }
        )

    store_path = tmp_path / "bench_runtime.sqlite"
    with ResultStore(store_path) as store:
        cold_seconds, cold_metrics = _run(store=store)
        assert store.misses == len(GRID) * REPLICATES
    with ResultStore(store_path) as store:
        replay_seconds, replay_metrics = _run(store=store)
        assert store.misses == 0, "warm replay recomputed tasks"
    assert cold_metrics == serial_metrics
    assert replay_metrics == serial_metrics
    replay_speedup = cold_seconds / replay_seconds
    rows.append(
        {
            "execution": "cache-replay",
            "seconds": replay_seconds,
            "speedup_vs_serial": serial_seconds / replay_seconds,
            "tasks": len(GRID) * REPLICATES,
        }
    )

    save_results(ResultTable(rows), "bench_runtime")

    assert replay_speedup >= REQUIRED_REPLAY_SPEEDUP, (
        f"cache-hit replay speedup {replay_speedup:.1f}x below the required "
        f"{REQUIRED_REPLAY_SPEEDUP:.0f}x over cold compute"
    )
    if not can_go_parallel:
        pytest.skip(
            f"only {os.cpu_count()} CPUs: the {PARALLEL_WORKERS}-worker "
            f">= {REQUIRED_PARALLEL_SPEEDUP:.0f}x floor needs "
            f"{PARALLEL_WORKERS} cores"
        )
    parallel_speedup = serial_seconds / parallel_seconds
    assert parallel_speedup >= REQUIRED_PARALLEL_SPEEDUP, (
        f"{PARALLEL_WORKERS}-worker speedup {parallel_speedup:.1f}x below the "
        f"required {REQUIRED_PARALLEL_SPEEDUP:.0f}x on a CPU-bound "
        f"{len(GRID)}-point x {REPLICATES}-replicate grid at N={POPULATION}"
    )
