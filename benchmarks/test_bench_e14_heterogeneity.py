"""E14 (ablation) — heterogeneous adoption functions f_i.

The paper assumes identical ``f_i`` "for simplicity in the exposition" and
asserts the assumption "is not essential for our results".  This ablation
checks that claim empirically: populations whose individuals draw their
``beta_i`` from increasingly wide ranges (all with the same mean) are compared
against the homogeneous population at the mean ``beta``, on identical
environments.  Expected shape: regret varies only mildly with the spread, and
every heterogeneous population stays within the ``6*delta`` bound evaluated at
its *least responsive* member (the weakest ``delta`` in the group).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliEnvironment,
    HeterogeneousPopulationDynamics,
    TheoryBounds,
    best_option_share,
    expected_regret,
)
from repro.experiments import ResultTable

POPULATION = 3000
NUM_OPTIONS = 4
HORIZON = 500
MEAN_BETA = 0.63
SPREADS = [0.0, 0.05, 0.1, 0.16]
REPLICATIONS = 3
MU = 0.02


def run_configuration(spread: float) -> dict:
    low = MEAN_BETA - spread / 2.0
    high = MEAN_BETA + spread / 2.0
    betas = [low, MEAN_BETA, high] if spread > 0 else [MEAN_BETA]
    counts = (
        [POPULATION // 3, POPULATION // 3, POPULATION - 2 * (POPULATION // 3)]
        if spread > 0
        else [POPULATION]
    )
    regrets, shares = [], []
    for seed in range(REPLICATIONS):
        env = BernoulliEnvironment.with_gap(
            NUM_OPTIONS, best_quality=0.85, gap=0.35, rng=seed
        )
        dynamics = HeterogeneousPopulationDynamics.from_beta_values(
            betas, counts, NUM_OPTIONS, exploration_rate=MU, rng=seed + 50
        )
        trajectory = dynamics.run(env, HORIZON)
        matrix = trajectory.popularity_matrix()
        regrets.append(expected_regret(matrix, env.qualities))
        shares.append(best_option_share(matrix, 0))
    weakest_beta = min(betas)
    weakest_bound = TheoryBounds(
        num_options=NUM_OPTIONS, beta=weakest_beta, mu=MU, strict=False
    ).finite_regret_bound()
    return {
        "beta_spread": spread,
        "betas": "/".join(f"{beta:.3f}" for beta in betas),
        "regret": float(np.mean(regrets)),
        "best_option_share": float(np.mean(shares)),
        "bound_6delta_weakest": weakest_bound,
        "within_bound": float(np.mean(regrets)) <= weakest_bound,
    }


def run_experiment() -> ResultTable:
    table = ResultTable()
    for spread in SPREADS:
        table.add_row(run_configuration(spread))
    return table


@pytest.mark.benchmark(group="E14-heterogeneity")
def test_heterogeneous_adoption_rules_do_not_break_the_result(benchmark, save_results):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results(table, "E14_heterogeneity")
    regrets = table.column("regret")
    homogeneous = regrets[0]
    # Every spread stays within the (weakest-member) paper bound.
    assert all(table.column("within_bound"))
    # Heterogeneity changes the regret only mildly relative to homogeneous.
    assert all(abs(regret - homogeneous) < 0.06 for regret in regrets)
    # And the best option keeps a strong majority in every configuration.
    assert all(share > 0.6 for share in table.column("best_option_share"))
