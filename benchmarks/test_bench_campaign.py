"""Campaign dispatch overhead: socket brokers vs the local process pool.

The broker backend adds JSON framing, loopback TCP and a coordinator select
loop on top of the same ``execute_task`` compute path the process pool uses.
This benchmark prices that overhead on a 20-task campaign (10 grid points x
2 replications, loop engine) dispatched to two subprocess brokers started
exactly as operators start them (``python -m repro broker --coordinator
tcp://...``), and asserts the broker wall time stays within ``2x`` the
process-pool wall time — the acceptance bound for running campaigns across
hosts instead of cores.

Both backends are warmed with one throwaway campaign before timing, so
neither pays one-off costs (worker fork, broker dial + hello) inside the
measured window.
"""

from __future__ import annotations

import subprocess
import sys
import time

import pytest

from repro.campaign import BrokerBackend, campaign_from_spec, run_campaign
from repro.experiments import ResultTable
from repro.obs import MemorySink, Tracer
from repro.runtime import ParallelExecutor

MAX_OVERHEAD = 2.0
MAX_TRACE_OVERHEAD = 1.02  # tracing must stay within 2% of the untraced run
TRACE_EPSILON_S = 0.05  # absolute slack so sub-second runs aren't noise-bound
POPULATIONS = list(range(30, 80, 5))  # 10 grid points
REPLICATIONS = 2  # x2 -> 20 loop-engine tasks
WORKERS = 2


def campaign_spec(horizon, name):
    return {
        "name": name,
        "nodes": [
            {
                "id": "sim",
                "kind": "simulate",
                "request": {
                    "kind": "sweep",
                    "options": [0.8, 0.5],
                    "populations": POPULATIONS,
                    "horizon": horizon,
                    "replications": REPLICATIONS,
                    "engine": "loop",
                },
            },
            {"id": "stats", "kind": "analyse", "inputs": ["sim"]},
            {"id": "summary", "kind": "report", "inputs": ["stats"]},
        ],
    }


def _timed_run(campaign, backend):
    start = time.perf_counter()
    result = run_campaign(campaign, backend=backend)
    return time.perf_counter() - start, result


@pytest.mark.benchmark(group="campaign-dispatch")
def test_broker_dispatch_overhead_within_2x_of_pool(save_results):
    campaign = campaign_from_spec(campaign_spec(40, "bench"))
    warmup = campaign_from_spec(campaign_spec(4, "warmup"))

    pool = ParallelExecutor(WORKERS)
    run_campaign(warmup, backend=pool)  # fork/import warm-up
    pool_seconds, pool_result = _timed_run(campaign, pool)

    with BrokerBackend(min_brokers=WORKERS, timeout=60.0) as backend:
        brokers = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "broker",
                    "--coordinator",
                    backend.address,
                ],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            for _ in range(WORKERS)
        ]
        try:
            run_campaign(warmup, backend=backend)  # dial + hello warm-up
            broker_seconds, broker_result = _timed_run(campaign, backend)
        finally:
            backend.close()  # shutdown frames let the brokers exit cleanly
            for broker in brokers:
                broker.wait(timeout=30.0)

    # Same campaign, same numbers — dispatch must never change results.
    assert [list(broker_result[n].rows) for n in broker_result.order] == [
        list(pool_result[n].rows) for n in pool_result.order
    ]

    overhead = broker_seconds / pool_seconds
    table = ResultTable()
    table.add_row(
        {
            "tasks": len(POPULATIONS) * REPLICATIONS,
            "workers": WORKERS,
            "pool_seconds": pool_seconds,
            "broker_seconds": broker_seconds,
            "overhead_x": overhead,
        }
    )
    save_results(table, "bench_campaign_dispatch")
    assert overhead <= MAX_OVERHEAD, (
        f"broker dispatch took {broker_seconds:.2f}s vs pool "
        f"{pool_seconds:.2f}s ({overhead:.2f}x > {MAX_OVERHEAD}x)"
    )


@pytest.mark.benchmark(group="campaign-tracing")
def test_tracing_overhead_within_2_percent(save_results):
    """The observability layer must be free when off and near-free when on.

    Min-of-3 on the same 20-task campaign, first untraced (NULL_TRACER hot
    path) then with a live MemorySink tracer; the traced minimum must stay
    within 2% (+50ms absolute slack for sub-second runs) of the untraced
    minimum.  Min-of-N is the standard scheduler-noise filter: any single
    slow run is a preemption, the minimum is the cost.
    """
    repeats = 3
    campaign = campaign_from_spec(campaign_spec(40, "bench-trace"))
    warmup = campaign_from_spec(campaign_spec(4, "warmup"))
    executor = ParallelExecutor(WORKERS)
    run_campaign(warmup, backend=executor)  # fork/import warm-up

    base_seconds = min(
        _timed_run(campaign, executor)[0] for _ in range(repeats)
    )

    traced_runs = []
    for _ in range(repeats):
        sink = MemorySink()
        tracer = Tracer(sink)
        start = time.perf_counter()
        result = run_campaign(campaign, backend=executor, tracer=tracer)
        traced_runs.append((time.perf_counter() - start, sink, result))
    traced_seconds, sink, result = min(traced_runs, key=lambda run: run[0])

    # The traced run really traced: one span per shard plus the DAG nodes.
    with sink._lock:
        [trace_id] = list(sink._traces)
    records = sink.records(trace_id)
    ends = [r for r in records if r["event"] == "span_end"]
    names = [r["name"] for r in ends]
    assert names.count("shard") == executor.num_shards
    assert names.count("campaign_node") == len(result.order)

    overhead = traced_seconds / base_seconds
    table = ResultTable()
    table.add_row(
        {
            "tasks": len(POPULATIONS) * REPLICATIONS,
            "workers": WORKERS,
            "base_seconds": base_seconds,
            "traced_seconds": traced_seconds,
            "overhead_x": overhead,
        }
    )
    save_results(table, "bench_campaign_tracing")
    budget = base_seconds * MAX_TRACE_OVERHEAD + TRACE_EPSILON_S
    assert traced_seconds <= budget, (
        f"tracing took {traced_seconds:.3f}s vs {base_seconds:.3f}s untraced "
        f"({overhead:.3f}x; budget {budget:.3f}s)"
    )
