"""E9 — network-restricted sampling (Section 6 open problem).

Paper question: if individuals can only sample their neighbours in a social
graph, "whether, and to what extent, the efficiency of the group remains as a
function of the network topology."

The benchmark runs the network-restricted dynamics over a suite of standard
topologies at equal size and identical reward processes and reports regret,
best-option share and graph statistics.  Expected shape: the complete graph
(the paper's base model) is the most efficient; well-mixed sparse graphs
(Erdős–Rényi, small-world, preferential attachment) come close; poorly mixing
graphs (ring, grid) and the star are noticeably worse.

Runs on the vectorised sparse engine (``engine="vectorized"``) — the
per-agent loop makes this same sweep an order of magnitude slower (see
``benchmarks/test_bench_network.py`` for the measured engine comparison).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BernoulliEnvironment, best_option_share, expected_regret
from repro.experiments import ResultTable
from repro.network import SocialNetwork, simulate_network_dynamics

POPULATION = 300
NUM_OPTIONS = 3
HORIZON = 300
BETA = 0.62
REPLICATIONS = 3
QUALITIES = [0.85, 0.5, 0.5]


def run_experiment() -> ResultTable:
    table = ResultTable()
    networks = SocialNetwork.standard_suite(POPULATION, rng=0)
    for network in networks:
        regrets, shares = [], []
        for seed in range(REPLICATIONS):
            env = BernoulliEnvironment(QUALITIES, rng=seed)
            trajectory = simulate_network_dynamics(
                env, network, HORIZON, beta=BETA, rng=seed + 50, engine="vectorized"
            )
            matrix = trajectory.popularity_matrix()
            regrets.append(expected_regret(matrix, QUALITIES))
            shares.append(best_option_share(matrix, 0))
        metrics = network.metrics()
        table.add_row(
            {
                "topology": metrics["name"],
                "avg_degree": metrics["average_degree"],
                "spectral_gap": metrics["spectral_gap"],
                "regret": float(np.mean(regrets)),
                "best_option_share": float(np.mean(shares)),
            }
        )
    return table


@pytest.mark.benchmark(group="E9-network-topology")
def test_topology_controls_group_efficiency(benchmark, save_results):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results(table, "E9_network_topology")
    regret = {row["topology"].split("(")[0]: row["regret"] for row in table.rows}
    # The complete graph is (weakly) the best of the suite.
    assert regret["complete"] <= min(regret.values()) + 0.02
    # Well-mixed sparse graphs stay close to the complete graph...
    assert regret["erdos_renyi"] <= regret["complete"] + 0.08
    assert regret["watts_strogatz"] <= regret["complete"] + 0.1
    # ...while the star (all information routed through one hub) is clearly worse.
    assert regret["star"] >= regret["complete"] + 0.05
