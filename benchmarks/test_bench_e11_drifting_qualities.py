"""E11 — drifting option qualities (Section 6 future work).

Paper question: what happens "when the parameters controlling the quality of
the options (eta_i s) are allowed to change"?

The benchmark runs the finite-population dynamics against (a) a piecewise-
constant environment in which the identity of the best option flips halfway
through, and (b) a slow random-walk drift, and measures per-phase regret and
the recovery time after the switch.  Expected shape: the exploration floor
``mu > 0`` lets the group re-learn after a switch, with recovery time on the
order of the epoch length; tracking a slow drift costs a modest constant
regret overhead compared to a stationary environment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliEnvironment,
    PiecewiseConstantDriftEnvironment,
    RandomWalkDriftEnvironment,
    expected_regret,
    simulate_finite_population,
)
from repro.analysis import dominance_time
from repro.experiments import ResultTable

POPULATION = 3000
BETA = 0.62
MU = 0.03
PHASE = 400
REPLICATIONS = 3


def switching_metrics(seed: int) -> dict:
    env = PiecewiseConstantDriftEnvironment(
        phases=[[0.85, 0.3], [0.3, 0.85]], phase_length=PHASE, rng=seed
    )
    trajectory = simulate_finite_population(
        env, POPULATION, 2 * PHASE, beta=BETA, mu=MU, rng=seed + 10
    )
    matrix = trajectory.popularity_matrix()
    rewards = trajectory.reward_matrix().astype(float)
    phase1_regret = 0.85 - float(
        np.einsum("tj,tj->t", matrix[:PHASE], rewards[:PHASE]).mean()
    )
    phase2_regret = 0.85 - float(
        np.einsum("tj,tj->t", matrix[PHASE:], rewards[PHASE:]).mean()
    )
    recovery = dominance_time(matrix[PHASE:, 1], threshold=0.5, sustain=10)
    return {
        "phase1_regret": phase1_regret,
        "phase2_regret": phase2_regret,
        "recovery_steps": float(PHASE if recovery is None else recovery),
    }


def random_walk_metrics(seed: int) -> dict:
    drift_env = RandomWalkDriftEnvironment(
        [0.8, 0.5, 0.5], step_scale=0.01, low=0.2, high=0.9, rng=seed
    )
    stationary_env = BernoulliEnvironment([0.8, 0.5, 0.5], rng=seed)
    drift_traj = simulate_finite_population(
        drift_env, POPULATION, 600, beta=BETA, mu=MU, rng=seed + 20
    )
    stationary_traj = simulate_finite_population(
        stationary_env, POPULATION, 600, beta=BETA, mu=MU, rng=seed + 20
    )
    # For the drifting environment use realised rewards (the qualities move).
    drift_regret = float(
        np.mean(
            [
                0.8 - np.dot(q, r)
                for q, r in zip(
                    drift_traj.popularity_matrix(), drift_traj.reward_matrix().astype(float)
                )
            ]
        )
    )
    stationary_regret = expected_regret(
        stationary_traj.popularity_matrix(), stationary_env.qualities
    )
    return {"drift_regret": drift_regret, "stationary_regret": stationary_regret}


def run_experiment() -> ResultTable:
    table = ResultTable()
    switch = [switching_metrics(seed) for seed in range(REPLICATIONS)]
    walk = [random_walk_metrics(seed) for seed in range(REPLICATIONS)]
    table.add_row(
        {
            "scenario": "best option flips at t=400",
            "phase1_regret": float(np.mean([m["phase1_regret"] for m in switch])),
            "phase2_regret": float(np.mean([m["phase2_regret"] for m in switch])),
            "recovery_steps": float(np.mean([m["recovery_steps"] for m in switch])),
        }
    )
    table.add_row(
        {
            "scenario": "random-walk drift vs stationary",
            "phase1_regret": float(np.mean([m["stationary_regret"] for m in walk])),
            "phase2_regret": float(np.mean([m["drift_regret"] for m in walk])),
            "recovery_steps": 0.0,
        }
    )
    return table


@pytest.mark.benchmark(group="E11-drift")
def test_dynamics_tracks_changing_qualities(benchmark, save_results):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results(table, "E11_drifting_qualities")
    switch_row = table.rows[0]
    walk_row = table.rows[1]
    # The group recovers after the switch well within the second phase.
    assert switch_row["recovery_steps"] < PHASE / 2
    # Post-switch regret stays moderate (re-learning is not free but bounded).
    assert switch_row["phase2_regret"] < 0.45
    # Tracking slow drift costs only a bounded overhead versus stationary.
    assert walk_row["phase2_regret"] <= walk_row["phase1_regret"] + 0.25
