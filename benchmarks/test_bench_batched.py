"""Replicate-throughput benchmark: batched engine vs the sequential loop.

The replicate-axis engine (:class:`repro.core.batched.BatchedDynamics`)
advances all ``R`` replicates as one ``(R, m)`` count matrix per step, so the
per-replicate Python overhead of the sequential ``run_replications`` loop
(one :class:`FinitePopulationDynamics` instance, environment, and trajectory
per seed) disappears.  This benchmark measures both paths through the same
``run_replications`` entry point at the ISSUE's target configuration —
``N = 10^5``, ``R = 100`` — and asserts the batched path is at least 10x
faster per replicate-step.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.batched import simulate_batched_population
from repro.core.dynamics import simulate_finite_population
from repro.core.regret import expected_regret
from repro.environments import BernoulliEnvironment
from repro.experiments import (
    ExperimentConfig,
    ResultTable,
    batched_replication,
    run_replications,
)

QUALITIES = [0.8, 0.5, 0.5, 0.5, 0.5]
POPULATION = 100_000
REPLICATES = 100
HORIZON = 50
BETA = 0.65
MU = 0.05

REQUIRED_SPEEDUP = 10.0


def _loop_replication(seed, parameters):
    env = BernoulliEnvironment(QUALITIES, rng=seed)
    trajectory = simulate_finite_population(
        env, POPULATION, HORIZON, beta=BETA, mu=MU, rng=seed + 1
    )
    return {"regret": expected_regret(trajectory.popularity_matrix(), QUALITIES)}


@batched_replication
def _batched_replication(seeds, parameters):
    generator = np.random.default_rng(seeds)
    env = BernoulliEnvironment(QUALITIES, rng=generator)
    trajectory = simulate_batched_population(
        env, POPULATION, HORIZON, len(seeds), beta=BETA, mu=MU, rng=generator
    )
    return [{"regret": float(value)} for value in trajectory.expected_regret(QUALITIES)]


def _time(replication, rounds: int) -> float:
    """Best-of-``rounds`` wall time of one full run_replications call."""
    config = ExperimentConfig(name="bench-batched", replications=REPLICATES, seed=0)
    timings = []
    for _ in range(rounds):
        start = time.perf_counter()
        result = run_replications(config, replication)
        timings.append(time.perf_counter() - start)
        assert len(result.metrics) == REPLICATES
    return min(timings)


@pytest.mark.benchmark(group="throughput")
def test_batched_engine_replicate_throughput(save_results, traced_peak):
    """The batched engine delivers >= 10x replicate-throughput over the loop."""
    # Warm both paths once so allocator / import effects don't bias either side.
    _time(_batched_replication, rounds=1)
    batched_seconds = _time(_batched_replication, rounds=3)
    loop_seconds = _time(_loop_replication, rounds=2)

    # Peak memory in a separate tracemalloc pass (tracing skews wall time).
    config = ExperimentConfig(name="bench-batched-mem", replications=REPLICATES, seed=0)
    _, loop_peak = traced_peak(lambda: run_replications(config, _loop_replication))
    _, batched_peak = traced_peak(
        lambda: run_replications(config, _batched_replication)
    )

    replicate_steps = REPLICATES * HORIZON
    speedup = loop_seconds / batched_seconds
    table = ResultTable(
        [
            {
                "engine": "loop",
                "seconds": loop_seconds,
                "replicate_steps_per_s": replicate_steps / loop_seconds,
                "peak_mb": loop_peak / 2**20,
                "speedup": 1.0,
            },
            {
                "engine": "batched",
                "seconds": batched_seconds,
                "replicate_steps_per_s": replicate_steps / batched_seconds,
                "peak_mb": batched_peak / 2**20,
                "speedup": speedup,
            },
        ]
    )
    save_results(table, "bench_batched")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched engine speedup {speedup:.1f}x below the required "
        f"{REQUIRED_SPEEDUP:.0f}x at N={POPULATION}, R={REPLICATES}"
    )


@pytest.mark.benchmark(group="throughput")
def test_batched_and_loop_agree_on_mean_regret():
    """Both paths estimate the same mean regret at the benchmark configuration.

    A throughput win is worthless if the fast path simulates a different
    process; this cross-checks the replication means at smaller scale.
    """
    config = ExperimentConfig(name="bench-batched-agree", replications=40, seed=7)

    def small_loop(seed, parameters):
        env = BernoulliEnvironment(QUALITIES, rng=seed)
        trajectory = simulate_finite_population(
            env, 2000, HORIZON, beta=BETA, mu=MU, rng=seed + 1
        )
        return {"regret": expected_regret(trajectory.popularity_matrix(), QUALITIES)}

    @batched_replication
    def small_batched(seeds, parameters):
        generator = np.random.default_rng(seeds)
        env = BernoulliEnvironment(QUALITIES, rng=generator)
        trajectory = simulate_batched_population(
            env, 2000, HORIZON, len(seeds), beta=BETA, mu=MU, rng=generator
        )
        return [
            {"regret": float(value)} for value in trajectory.expected_regret(QUALITIES)
        ]

    loop_mean = run_replications(config, small_loop).metric_values("regret").mean()
    batched_mean = run_replications(config, small_batched).metric_values("regret").mean()
    assert batched_mean == pytest.approx(loop_mean, abs=0.02)
