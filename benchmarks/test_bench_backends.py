"""Backend/precision benchmark: the multi-backend seam on the flattened sweep.

Three claims of the array-engine refactor, measured on the ISSUE's target
workload — a 10^5-row flattened dynamics sweep (20 grid points x 5000
replications) advanced in lock-step:

1. **No NumPy regression**: the default float64/int64 path through the
   backend seam sustains the throughput floor, and the float32 path costs no
   more wall time than the default (they run the same float64 draw math and
   differ only in storage dtype).
2. **float32 memory**: opting into ``dtype=float32`` cuts the peak traced
   allocation of the sweep by at least 40% (the recorded trajectory —
   popularity + counts + rewards per step — dominates, and its float/int
   cells halve).
3. **Statistical equivalence**: the float32 sweep's per-row regrets agree
   with the float64 sweep's under a two-sample KS test — precision is a
   storage choice, not a different process.

A fourth, skip-guarded case smokes the numba-fused CSR kernel: with numba
installed, the fused network engine must be bit-identical to the two-pass
NumPy path at the same seed (the contract that lets ``use_numba`` auto-select
without invalidating golden fixtures).
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.environments import BernoulliEnvironment
from repro.experiments import ResultTable
from repro.experiments.dynamics_sweep import flatten_grid
from repro.network.kernels import HAS_NUMBA
from repro.network.topology import SocialNetwork
from repro.network.vectorized import simulate_batched_network_dynamics

GRID_POINTS = 20
REPLICATIONS = 5_000  # 20 x 5000 = 1e5 flattened rows
ROWS = GRID_POINTS * REPLICATIONS
POPULATION = 100
HORIZON = 20
QUALITIES = [0.8, 0.5, 0.5]

REQUIRED_MEMORY_SAVINGS = 0.40
REQUIRED_ROW_STEPS_PER_S = 50_000.0
KS_PVALUE_FLOOR = 0.01


def _flat_grid(dtype):
    point = {"qualities": QUALITIES, "N": POPULATION, "T": HORIZON, "beta": 0.65}
    if dtype is not None:
        point = {**point, "dtype": dtype}
    return flatten_grid([dict(point) for _ in range(GRID_POINTS)], REPLICATIONS)


def _run_sweep(dtype):
    flat = _flat_grid(dtype)
    dynamics, environment = flat.build(np.random.default_rng(0))
    trajectory = dynamics.run(environment, flat.horizon)
    return trajectory.expected_regret(flat.qualities)


def _time_sweep(dtype, rounds: int) -> float:
    timings = []
    for _ in range(rounds):
        start = time.perf_counter()
        regrets = _run_sweep(dtype)
        timings.append(time.perf_counter() - start)
        assert regrets.shape == (ROWS,)
    return min(timings)


@pytest.mark.benchmark(group="backends")
def test_backend_seam_throughput_and_float32_memory(save_results, traced_peak):
    """Default path holds the throughput floor; float32 saves >= 40% peak memory."""
    # Warm once so allocator/import effects don't bias the first timed round.
    _time_sweep(None, rounds=1)
    default_seconds = _time_sweep(None, rounds=2)
    float32_seconds = _time_sweep("float32", rounds=2)

    # Memory in a separate tracemalloc pass — tracing skews wall time.
    _, default_peak = traced_peak(lambda: _run_sweep(None))
    _, float32_peak = traced_peak(lambda: _run_sweep("float32"))
    savings = 1.0 - float32_peak / default_peak

    row_steps = ROWS * HORIZON
    table = ResultTable(
        [
            {
                "dtype": "float64",
                "seconds": default_seconds,
                "row_steps_per_s": row_steps / default_seconds,
                "peak_mb": default_peak / 2**20,
                "memory_savings": 0.0,
            },
            {
                "dtype": "float32",
                "seconds": float32_seconds,
                "row_steps_per_s": row_steps / float32_seconds,
                "peak_mb": float32_peak / 2**20,
                "memory_savings": savings,
            },
        ]
    )
    save_results(table, "bench_backends")

    default_rate = row_steps / default_seconds
    assert default_rate >= REQUIRED_ROW_STEPS_PER_S, (
        f"default NumPy path regressed to {default_rate:,.0f} row-steps/s, "
        f"below the {REQUIRED_ROW_STEPS_PER_S:,.0f} floor"
    )
    # Same draw math at both precisions -> float32 must not cost extra time
    # (generous factor: only storage casts differ).
    assert float32_seconds <= 1.6 * default_seconds, (
        f"float32 path took {float32_seconds:.2f}s vs float64 "
        f"{default_seconds:.2f}s — storage dtype should not slow the engine"
    )
    assert savings >= REQUIRED_MEMORY_SAVINGS, (
        f"float32 peak memory savings {savings:.1%} below the required "
        f"{REQUIRED_MEMORY_SAVINGS:.0%} ({default_peak / 2**20:.0f} MB -> "
        f"{float32_peak / 2**20:.0f} MB)"
    )


@pytest.mark.benchmark(group="backends")
def test_float32_regrets_statistically_match_float64():
    """Per-row regrets at the two precisions pass a two-sample KS test."""
    default_regrets = _run_sweep(None)
    float32_regrets = _run_sweep("float32")
    result = ks_2samp(default_regrets, float32_regrets)
    assert result.pvalue >= KS_PVALUE_FLOOR, (
        f"float32 regret distribution diverged from float64 "
        f"(KS statistic {result.statistic:.4f}, p={result.pvalue:.4f})"
    )


@pytest.mark.benchmark(group="backends")
@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
def test_numba_fused_kernel_matches_numpy_two_pass():
    """With numba installed the fused CSR kernel is bit-identical to NumPy."""
    network = SocialNetwork.watts_strogatz(
        500, nearest_neighbors=6, rewiring_probability=0.1, rng=3
    )

    def run(use_numba):
        environment = BernoulliEnvironment(QUALITIES, rng=11)
        return simulate_batched_network_dynamics(
            environment, network, horizon=40, num_replicates=50, rng=5,
            use_numba=use_numba,
        )

    fused = run(True)
    two_pass = run(False)
    np.testing.assert_array_equal(
        fused.final_state().counts, two_pass.final_state().counts
    )
    np.testing.assert_array_equal(
        fused.popularity_tensor(), two_pass.popularity_tensor()
    )
