"""Network-engine throughput: vectorised sparse engines vs the per-agent loop.

The per-agent reference loop (:class:`repro.network.dynamics.NetworkDynamics`)
pays Python-interpreter cost per agent per step, so at ``N = 10^4`` a single
step is tens of milliseconds.  The vectorised engine
(:class:`repro.network.vectorized.VectorizedNetworkDynamics`) replaces the
loop with one CSR sparse matvec plus bulk inverse-CDF sampling, and the
batched engine (:class:`~repro.network.vectorized.BatchedNetworkDynamics`)
amortises even the per-step Python overhead across ``R`` replicates sharing
one graph.  This benchmark measures all three on the same Watts–Strogatz
graph at the ISSUE's target size ``N = 10^4`` and asserts the vectorised
engine is at least 10x faster than the loop.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.adoption import SymmetricAdoptionRule
from repro.environments import BernoulliEnvironment
from repro.experiments import ResultTable
from repro.network import (
    BatchedNetworkDynamics,
    NetworkDynamics,
    SocialNetwork,
    VectorizedNetworkDynamics,
)

QUALITIES = [0.8, 0.5, 0.5]
SIZE = 10_000
HORIZON = 6
BATCH_REPLICATES = 16
BETA = 0.65
MU = 0.05

REQUIRED_SPEEDUP = 10.0


@pytest.fixture(scope="module")
def network() -> SocialNetwork:
    return SocialNetwork.watts_strogatz(
        SIZE, nearest_neighbors=6, rewiring_probability=0.1, rng=0
    )


def _run_single(dynamics_class, network: SocialNetwork) -> None:
    environment = BernoulliEnvironment(QUALITIES, rng=0)
    dynamics = dynamics_class(
        network=network,
        num_options=len(QUALITIES),
        adoption_rule=SymmetricAdoptionRule(BETA),
        exploration_rate=MU,
        rng=1,
    )
    dynamics.run(environment, HORIZON)


def _time_single(dynamics_class, network: SocialNetwork) -> float:
    start = time.perf_counter()
    _run_single(dynamics_class, network)
    return time.perf_counter() - start


def _run_batched(network: SocialNetwork) -> None:
    environment = BernoulliEnvironment(QUALITIES, rng=0)
    dynamics = BatchedNetworkDynamics(
        network=network,
        num_options=len(QUALITIES),
        num_replicates=BATCH_REPLICATES,
        adoption_rule=SymmetricAdoptionRule(BETA),
        exploration_rate=MU,
        rng=1,
    )
    dynamics.run(environment, HORIZON)


def _time_batched(network: SocialNetwork) -> float:
    start = time.perf_counter()
    _run_batched(network)
    return time.perf_counter() - start


@pytest.mark.benchmark(group="network-throughput")
def test_vectorized_network_engine_throughput(network, save_results, traced_peak):
    """The sparse vectorised engine delivers >= 10x over the per-agent loop."""
    # Warm the CSR cache and both code paths once so neither side pays
    # one-off allocation/import costs inside the timed region.
    network.csr_indices
    _time_single(VectorizedNetworkDynamics, network)

    vectorized_seconds = min(
        _time_single(VectorizedNetworkDynamics, network) for _ in range(3)
    )
    loop_seconds = _time_single(NetworkDynamics, network)
    batched_seconds = min(_time_batched(network) for _ in range(2))

    # Peak memory in a separate tracemalloc pass (tracing skews wall time).
    _, loop_peak = traced_peak(lambda: _run_single(NetworkDynamics, network))
    _, vectorized_peak = traced_peak(
        lambda: _run_single(VectorizedNetworkDynamics, network)
    )
    _, batched_peak = traced_peak(lambda: _run_batched(network))

    agent_steps = SIZE * HORIZON
    speedup = loop_seconds / vectorized_seconds
    batched_speedup = (loop_seconds * BATCH_REPLICATES) / batched_seconds
    table = ResultTable(
        [
            {
                "engine": "loop",
                "replicates": 1,
                "seconds": loop_seconds,
                "agent_steps_per_s": agent_steps / loop_seconds,
                "peak_mb": loop_peak / 2**20,
                "speedup_per_replicate": 1.0,
            },
            {
                "engine": "vectorized",
                "replicates": 1,
                "seconds": vectorized_seconds,
                "agent_steps_per_s": agent_steps / vectorized_seconds,
                "peak_mb": vectorized_peak / 2**20,
                "speedup_per_replicate": speedup,
            },
            {
                "engine": "batched",
                "replicates": BATCH_REPLICATES,
                "seconds": batched_seconds,
                "agent_steps_per_s": agent_steps * BATCH_REPLICATES / batched_seconds,
                "peak_mb": batched_peak / 2**20,
                "speedup_per_replicate": batched_speedup,
            },
        ]
    )
    save_results(table, "bench_network")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"vectorized network engine speedup {speedup:.1f}x below the required "
        f"{REQUIRED_SPEEDUP:.0f}x at N={SIZE}"
    )


@pytest.mark.benchmark(group="network-throughput")
def test_engines_agree_on_mean_regret(network):
    """A throughput win is worthless if the fast engines simulate a different process.

    Cross-checks the replicate-mean terminal best-option popularity of the
    three engines at a smaller size (the loop engine is the bottleneck).
    The full distributional gate lives in
    ``tests/integration/test_cross_validation.py``; this is a cheap smoke
    that the benchmark configuration itself is simulated consistently.
    """
    small = SocialNetwork.watts_strogatz(300, 6, 0.1, rng=0)
    replicates, horizon = 30, 40

    def loop_terminal():
        values = []
        for seed in range(replicates):
            environment = BernoulliEnvironment(QUALITIES, rng=seed)
            dynamics = NetworkDynamics(
                small, len(QUALITIES), SymmetricAdoptionRule(BETA), MU, rng=seed + 1
            )
            values.append(dynamics.run(environment, horizon).final_state().popularity()[0])
        return np.mean(values)

    def vectorized_terminal():
        values = []
        for seed in range(replicates):
            environment = BernoulliEnvironment(QUALITIES, rng=seed)
            dynamics = VectorizedNetworkDynamics(
                small, len(QUALITIES), SymmetricAdoptionRule(BETA), MU, rng=seed + 1
            )
            values.append(dynamics.run(environment, horizon).final_state().popularity()[0])
        return np.mean(values)

    def batched_terminal():
        environment = BernoulliEnvironment(QUALITIES, rng=7)
        dynamics = BatchedNetworkDynamics(
            small, len(QUALITIES), replicates, SymmetricAdoptionRule(BETA), MU, rng=8
        )
        return float(dynamics.run(environment, horizon).final_state().popularity()[:, 0].mean())

    loop_mean = loop_terminal()
    assert vectorized_terminal() == pytest.approx(loop_mean, abs=0.08)
    assert batched_terminal() == pytest.approx(loop_mean, abs=0.08)
