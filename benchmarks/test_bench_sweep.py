"""Grid-throughput benchmark: the fully batched sweep vs the per-point loop.

PR 1 collapsed the replicate axis; this benchmark measures collapsing the
*sweep* axis as well.  A 20-point ``(beta x mu)`` grid at ``N = 10^4`` with
50 replicates per point runs three ways through the same ``run_sweep`` entry
point:

* ``loop`` — the per-point per-seed loop (one
  :class:`FinitePopulationDynamics` launch per replicate, ``G * R`` launches);
* ``point-batched`` — PR 1's per-point batched path (one ``(R, m)``
  :class:`BatchedDynamics` launch per grid point, ``G`` launches);
* ``grid-batched`` — this PR's sweep-axis path (a single ``(G*R, m)`` launch
  with per-row parameters).

The grid-batched engine must deliver at least the ISSUE's 5x throughput floor
over the per-point loop, and its result table must agree with the loop
engine's metric means at equal seeds (same per-point seed lists, independent
random streams).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.batched import simulate_batched_population
from repro.environments import BernoulliEnvironment
from repro.experiments import (
    ParameterGrid,
    ResultTable,
    batched_replication,
    dynamics_grid_replication,
    dynamics_point_replication,
    run_sweep,
)

QUALITIES = (0.8, 0.5, 0.5, 0.5, 0.5)
POPULATION = 10_000
REPLICATES = 50
HORIZON = 25
GRID = ParameterGrid(
    {
        "beta": (0.55, 0.6, 0.65, 0.7, 0.75),
        "mu": (0.02, 0.05, 0.1, 0.2),
    }
)
BASE_PARAMETERS = {"qualities": QUALITIES, "N": POPULATION, "T": HORIZON}

REQUIRED_SPEEDUP = 5.0


@batched_replication
def _point_batched_replication(seeds, parameters):
    generator = np.random.default_rng(seeds)
    env = BernoulliEnvironment(list(parameters["qualities"]), rng=generator)
    trajectory = simulate_batched_population(
        env,
        parameters["N"],
        parameters["T"],
        len(seeds),
        beta=parameters["beta"],
        mu=parameters["mu"],
        rng=generator,
    )
    return [
        {"regret": float(value)}
        for value in trajectory.expected_regret(list(parameters["qualities"]))
    ]


def _time_sweep(replication, rounds: int):
    """Best-of-``rounds`` wall time of one full run_sweep call, plus its results."""
    timings, results, table = [], None, None
    for _ in range(rounds):
        start = time.perf_counter()
        results, table = run_sweep(
            "bench-sweep",
            GRID,
            replication,
            replications=REPLICATES,
            seed=0,
            base_parameters=BASE_PARAMETERS,
        )
        timings.append(time.perf_counter() - start)
        assert len(results) == len(GRID)
        assert all(len(result.metrics) == REPLICATES for result in results)
    return min(timings), results, table


@pytest.mark.benchmark(group="throughput")
def test_grid_batched_sweep_throughput(save_results):
    """One (G*R, m) launch beats G*R sequential launches by >= 5x."""
    # Warm the grid path once so allocator / import effects don't bias it.
    _time_sweep(dynamics_grid_replication, rounds=1)
    grid_seconds, grid_results, grid_table = _time_sweep(dynamics_grid_replication, rounds=3)
    point_seconds, _, _ = _time_sweep(_point_batched_replication, rounds=2)
    loop_seconds, loop_results, loop_table = _time_sweep(dynamics_point_replication, rounds=1)

    grid_steps = len(GRID) * REPLICATES * HORIZON
    rows = []
    for engine, seconds in (
        ("loop", loop_seconds),
        ("point-batched", point_seconds),
        ("grid-batched", grid_seconds),
    ):
        rows.append(
            {
                "engine": engine,
                "seconds": seconds,
                "grid_replicate_steps_per_s": grid_steps / seconds,
                "speedup_vs_loop": loop_seconds / seconds,
            }
        )
    table = ResultTable(rows)
    save_results(table, "bench_sweep")

    speedup = loop_seconds / grid_seconds
    assert speedup >= REQUIRED_SPEEDUP, (
        f"grid-batched sweep speedup {speedup:.1f}x below the required "
        f"{REQUIRED_SPEEDUP:.0f}x on a {len(GRID)}-point x {REPLICATES}-replicate "
        f"grid at N={POPULATION}"
    )

    # A throughput win is worthless if the fast path simulates a different
    # process: the two engines' per-point metric means must agree at equal
    # seeds (identical seed derivation, independent random streams).  The
    # tolerance is noise-aware — 5 standard errors of the mean difference,
    # estimated from the per-replicate spreads — so slow-mixing low-mu points
    # (whose per-replicate std reaches ~0.17) don't trip on Monte Carlo noise
    # while a broadcasting bug (a systematic shift) still fails loudly.
    for grid_row, loop_row, grid_result, loop_result in zip(
        grid_table.rows, loop_table.rows, grid_results, loop_results
    ):
        assert grid_row["beta"] == loop_row["beta"]
        assert grid_row["mu"] == loop_row["mu"]
        for metric in ("regret", "best_option_share"):
            spread = float(
                np.hypot(
                    grid_result.metric_values(metric).std() / np.sqrt(REPLICATES),
                    loop_result.metric_values(metric).std() / np.sqrt(REPLICATES),
                )
            )
            assert grid_row[metric] == pytest.approx(
                loop_row[metric], abs=max(0.01, 5.0 * spread)
            ), f"{metric} diverges at beta={grid_row['beta']}, mu={grid_row['mu']}"
