"""E10 — the dynamics as a distributed low-memory MWU (Section 1 claim).

Paper claim: the dynamics is a "novel, low-memory, low-communication,
distributed implementation of the MWU algorithm ... perhaps appropriate for
low-power devices in distributed settings such as sensor networks".

The benchmark runs the explicit message-passing protocol (O(1) state per node,
two small messages per node per round) under increasing communication
unreliability and a mid-run mass crash, and compares its regret against the
idealised shared-memory dynamics on matched parameters.  Expected shape:
perfect communication matches the shared-memory simulator; moderate loss
degrades regret gracefully; even a 40% mass failure leaves the surviving fleet
convergent (thanks to the exploration floor mu).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BernoulliEnvironment, expected_regret, simulate_finite_population
from repro.core.adoption import SymmetricAdoptionRule
from repro.distributed import (
    CrashFailureModel,
    DistributedLearningProtocol,
    LossyTransport,
    NoFailures,
)
from repro.experiments import ResultTable

NUM_NODES = 400
NUM_OPTIONS = 4
ROUNDS = 300
BETA = 0.62
MU = 0.03
REPLICATIONS = 3
QUALITIES = [0.9, 0.6, 0.6, 0.5]

SCENARIOS = [
    {"name": "shared-memory reference", "kind": "reference"},
    {"name": "protocol / perfect network", "loss": 0.0, "delay": 0.0, "crash": 0.0},
    {"name": "protocol / 10% loss", "loss": 0.1, "delay": 0.0, "crash": 0.0},
    {"name": "protocol / 30% loss + 10% delay", "loss": 0.3, "delay": 0.1, "crash": 0.0},
    {"name": "protocol / 10% loss + 40% crash", "loss": 0.1, "delay": 0.0, "crash": 0.4},
]


def run_scenario(scenario: dict, seed: int) -> dict:
    env = BernoulliEnvironment(QUALITIES, rng=seed)
    if scenario.get("kind") == "reference":
        trajectory = simulate_finite_population(
            env, NUM_NODES, ROUNDS, beta=BETA, mu=MU, rng=seed + 1
        )
        matrix = trajectory.popularity_matrix()
        return {
            "regret": expected_regret(matrix, QUALITIES),
            "best_share": float(matrix[:, 0].mean()),
            "messages": 0,
        }
    failure_model = (
        CrashFailureModel(
            mass_failure_round=ROUNDS // 2,
            mass_failure_fraction=scenario["crash"],
            rng=seed + 2,
        )
        if scenario["crash"] > 0
        else NoFailures()
    )
    protocol = DistributedLearningProtocol(
        NUM_NODES,
        NUM_OPTIONS,
        adoption_rule=SymmetricAdoptionRule(BETA),
        exploration_rate=MU,
        transport=LossyTransport(
            loss_rate=scenario["loss"], delay_rate=scenario["delay"], rng=seed + 3
        ),
        failure_model=failure_model,
        rng=seed + 4,
    )
    result = protocol.run(env, ROUNDS)
    return {
        "regret": result.regret,
        "best_share": result.best_option_share,
        "messages": result.transport_stats["sent"],
    }


def run_experiment() -> ResultTable:
    table = ResultTable()
    for scenario in SCENARIOS:
        metrics = [run_scenario(scenario, seed) for seed in range(REPLICATIONS)]
        table.add_row(
            {
                "scenario": scenario["name"],
                "regret": float(np.mean([m["regret"] for m in metrics])),
                "best_option_share": float(np.mean([m["best_share"] for m in metrics])),
                "messages_per_node_round": float(
                    np.mean([m["messages"] for m in metrics]) / (NUM_NODES * ROUNDS)
                ),
            }
        )
    return table


@pytest.mark.benchmark(group="E10-distributed-protocol")
def test_protocol_matches_reference_and_degrades_gracefully(benchmark, save_results):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results(table, "E10_distributed_protocol")
    regret = {row["scenario"]: row["regret"] for row in table.rows}
    share = {row["scenario"]: row["best_option_share"] for row in table.rows}
    # Perfect communication reproduces the shared-memory dynamics.
    assert regret["protocol / perfect network"] == pytest.approx(
        regret["shared-memory reference"], abs=0.05
    )
    # Communication failures degrade performance monotonically but not catastrophically.
    assert regret["protocol / 10% loss"] <= regret["protocol / 30% loss + 10% delay"] + 0.02
    # Even heavy loss keeps the fleet well above the uniform share of 1/m = 0.25.
    assert share["protocol / 30% loss + 10% delay"] > 0.35
    # The surviving fleet after a 40% mass crash still finds the best channel.
    assert share["protocol / 10% loss + 40% crash"] > 0.5
