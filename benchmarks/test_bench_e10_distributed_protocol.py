"""E10 — the dynamics as a distributed low-memory MWU (Section 1 claim).

Paper claim: the dynamics is a "novel, low-memory, low-communication,
distributed implementation of the MWU algorithm ... perhaps appropriate for
low-power devices in distributed settings such as sensor networks".

The benchmark runs the protocol under increasing communication unreliability
and a mid-run mass crash, and compares its regret against the idealised
shared-memory dynamics on matched parameters.  Expected shape: perfect
communication matches the shared-memory simulator; moderate loss degrades
regret gracefully; even a 40% mass failure leaves the surviving fleet
convergent (thanks to the exploration floor mu).

Engine: each protocol scenario is one :class:`repro.distributed.BatchedProtocol`
launch advancing all replicate fleets as ``(R, N)`` matrices per round — the
loss x crash grid that used to take minutes of per-message Python at toy
sizes now runs at ``N = 2000`` in seconds (the loop engine remains the
cross-validation reference in ``tests/integration/test_cross_validation.py``).
Per-message *delay* is the one transport feature only the loop engine models,
so the scenario grid here sticks to loss and crashes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BernoulliEnvironment, simulate_batched_population
from repro.core.adoption import SymmetricAdoptionRule
from repro.distributed import BatchedProtocol
from repro.experiments import ResultTable

NUM_NODES = 2000
NUM_OPTIONS = 4
ROUNDS = 300
BETA = 0.62
MU = 0.03
REPLICATIONS = 8
QUALITIES = [0.9, 0.6, 0.6, 0.5]

SCENARIOS = [
    {"name": "shared-memory reference", "kind": "reference"},
    {"name": "protocol / perfect network", "loss": 0.0, "crash": 0.0},
    {"name": "protocol / 10% loss", "loss": 0.1, "crash": 0.0},
    {"name": "protocol / 30% loss", "loss": 0.3, "crash": 0.0},
    {"name": "protocol / 10% loss + 40% crash", "loss": 0.1, "crash": 0.4},
]


def run_scenario(scenario: dict, seed: int) -> dict:
    generator = np.random.default_rng(seed)
    env = BernoulliEnvironment(QUALITIES, rng=generator)
    if scenario.get("kind") == "reference":
        trajectory = simulate_batched_population(
            env,
            NUM_NODES,
            ROUNDS,
            REPLICATIONS,
            beta=BETA,
            mu=MU,
            rng=generator,
        )
        return {
            "regret": float(trajectory.empirical_regret(max(QUALITIES)).mean()),
            "best_share": float(trajectory.best_option_share(0).mean()),
            "messages": 0,
        }
    protocol = BatchedProtocol(
        NUM_NODES,
        NUM_OPTIONS,
        num_replicates=REPLICATIONS,
        adoption_rule=SymmetricAdoptionRule(BETA),
        exploration_rate=MU,
        loss_rate=scenario["loss"],
        mass_failure_round=ROUNDS // 2 if scenario["crash"] > 0 else None,
        mass_failure_fraction=scenario["crash"],
        rng=generator,
    )
    result = protocol.run(env, ROUNDS)
    return {
        "regret": float(result.regret().mean()),
        "best_share": float(result.best_option_share().mean()),
        "messages": result.transport_stats["sent"] / REPLICATIONS,
    }


def run_experiment() -> ResultTable:
    table = ResultTable()
    for index, scenario in enumerate(SCENARIOS):
        metrics = run_scenario(scenario, seed=100 + index)
        table.add_row(
            {
                "scenario": scenario["name"],
                "regret": metrics["regret"],
                "best_option_share": metrics["best_share"],
                "messages_per_node_round": metrics["messages"] / (NUM_NODES * ROUNDS),
            }
        )
    return table


@pytest.mark.benchmark(group="E10-distributed-protocol")
def test_protocol_matches_reference_and_degrades_gracefully(benchmark, save_results):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results(table, "E10_distributed_protocol")
    regret = {row["scenario"]: row["regret"] for row in table.rows}
    share = {row["scenario"]: row["best_option_share"] for row in table.rows}
    # Perfect communication reproduces the shared-memory dynamics.
    assert regret["protocol / perfect network"] == pytest.approx(
        regret["shared-memory reference"], abs=0.05
    )
    # Communication failures degrade performance monotonically but not catastrophically.
    assert regret["protocol / 10% loss"] <= regret["protocol / 30% loss"] + 0.02
    # Even heavy loss keeps the fleet well above the uniform share of 1/m = 0.25.
    assert share["protocol / 30% loss"] > 0.35
    # The surviving fleet after a 40% mass crash still finds the best channel.
    assert share["protocol / 10% loss + 40% crash"] > 0.5
