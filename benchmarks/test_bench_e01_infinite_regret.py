"""E1 — Theorem 4.3: infinite-population regret is at most 3*delta.

Paper claim: for ``1/2 < beta <= e/(e+1)``, ``6*mu <= delta^2`` and
``T >= ln(m)/delta^2``, the infinite-population distributed learning dynamics
(the stochastic MWU process of Eq. 1) has average regret at most
``3*delta = 3*ln(beta/(1-beta))``.

The benchmark sweeps ``beta`` and ``m``, measures the regret over several
replications and records measured-vs-bound for every grid point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliEnvironment,
    TheoryBounds,
    expected_regret,
    simulate_infinite_population,
)
from repro.experiments import ResultTable

BETAS = [0.55, 0.6, 0.65, 0.72]
OPTION_COUNTS = [2, 5, 10, 20]
REPLICATIONS = 4


def run_experiment() -> ResultTable:
    table = ResultTable()
    for beta in BETAS:
        for num_options in OPTION_COUNTS:
            delta = TheoryBounds(num_options=num_options, beta=beta, mu=0.0, strict=False).delta
            mu = delta**2 / 6.0
            bounds = TheoryBounds(num_options=num_options, beta=beta, mu=mu)
            horizon = int(np.ceil(bounds.minimum_horizon())) * 2
            regrets = []
            for seed in range(REPLICATIONS):
                env = BernoulliEnvironment.with_gap(
                    num_options, best_quality=0.8, gap=0.3, rng=seed
                )
                trajectory = simulate_infinite_population(env, horizon, beta=beta, mu=mu)
                regrets.append(
                    expected_regret(trajectory.distribution_matrix(), env.qualities)
                )
            table.add_row(
                {
                    "beta": beta,
                    "m": num_options,
                    "delta": delta,
                    "horizon": horizon,
                    "measured_regret": float(np.mean(regrets)),
                    "bound_3delta": bounds.infinite_regret_bound(),
                    "bound_sharper": bounds.infinite_regret_bound(horizon),
                    "within_bound": bool(np.mean(regrets) <= bounds.infinite_regret_bound()),
                }
            )
    return table


@pytest.mark.benchmark(group="E1-infinite-regret")
def test_infinite_population_regret_within_three_delta(benchmark, save_results):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results(table, "E1_infinite_regret")
    assert all(table.column("within_bound"))
    # The measured regret should also beat the sharper intermediate bound.
    assert all(
        row["measured_regret"] <= row["bound_sharper"] + 1e-9 for row in table.rows
    )
