"""Throughput benchmarks for the simulators themselves.

These are conventional pytest-benchmark timings (multiple rounds) of the
hot paths — the vectorised finite-population step, the infinite-population
step, the network-restricted step and one protocol round — so performance
regressions in the core simulators are visible alongside the scientific
benchmarks E1-E12.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adoption import SymmetricAdoptionRule
from repro.core.dynamics import FinitePopulationDynamics
from repro.core.infinite import InfinitePopulationDynamics
from repro.core.sampling import MixtureSampling
from repro.distributed import DistributedLearningProtocol
from repro.environments import BernoulliEnvironment
from repro.network import NetworkDynamics, SocialNetwork


@pytest.mark.benchmark(group="throughput")
def test_finite_population_step_throughput(benchmark):
    dynamics = FinitePopulationDynamics(
        100_000, 10, adoption_rule=SymmetricAdoptionRule(0.6),
        sampling_rule=MixtureSampling(0.02), rng=0,
    )
    rewards = np.random.default_rng(1).integers(0, 2, size=10)
    benchmark(dynamics.step, rewards)


@pytest.mark.benchmark(group="throughput")
def test_infinite_population_step_throughput(benchmark):
    dynamics = InfinitePopulationDynamics(
        100, adoption_rule=SymmetricAdoptionRule(0.6), sampling_rule=MixtureSampling(0.02)
    )
    rewards = np.random.default_rng(2).integers(0, 2, size=100)
    benchmark(dynamics.step, rewards)


@pytest.mark.benchmark(group="throughput")
def test_full_simulation_throughput(benchmark):
    def run():
        env = BernoulliEnvironment.with_gap(5, best_quality=0.8, gap=0.3, rng=3)
        dynamics = FinitePopulationDynamics(10_000, 5, rng=4)
        return dynamics.run(env, 200)

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="throughput")
def test_network_dynamics_step_throughput(benchmark):
    network = SocialNetwork.watts_strogatz(1000, 8, 0.1, rng=5)
    dynamics = NetworkDynamics(network, 5, rng=6)
    rewards = np.random.default_rng(7).integers(0, 2, size=5)
    benchmark(dynamics.step, rewards)


@pytest.mark.benchmark(group="throughput")
def test_protocol_round_throughput(benchmark):
    protocol = DistributedLearningProtocol(1000, 5, rng=8)
    rewards = np.random.default_rng(9).integers(0, 2, size=5)
    benchmark(protocol.run_round, rewards)
