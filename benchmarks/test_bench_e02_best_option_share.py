"""E2 — Theorem 4.3 (part 2): the best option's average probability.

Paper claim: under the Theorem 4.3 conditions,
``(1/T) sum_t E[P^{t-1}_1] >= 1 - 3*delta/(eta_1 - eta_2)``.

The benchmark sweeps the quality gap and ``beta`` and verifies the bound holds
wherever it is non-vacuous, also recording how much slack there is.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliEnvironment,
    TheoryBounds,
    best_option_share,
    simulate_infinite_population,
)
from repro.experiments import ResultTable

GAPS = [0.2, 0.4, 0.6]
BETAS = [0.55, 0.6]
REPLICATIONS = 4
NUM_OPTIONS = 5


def run_experiment() -> ResultTable:
    table = ResultTable()
    for beta in BETAS:
        delta = TheoryBounds(num_options=NUM_OPTIONS, beta=beta, mu=0.0, strict=False).delta
        mu = delta**2 / 6.0
        bounds = TheoryBounds(num_options=NUM_OPTIONS, beta=beta, mu=mu)
        horizon = int(np.ceil(bounds.minimum_horizon())) * 3
        for gap in GAPS:
            shares = []
            for seed in range(REPLICATIONS):
                env = BernoulliEnvironment.with_gap(
                    NUM_OPTIONS, best_quality=0.85, gap=gap, rng=seed
                )
                trajectory = simulate_infinite_population(env, horizon, beta=beta, mu=mu)
                shares.append(best_option_share(trajectory.distribution_matrix(), 0))
            bound = bounds.best_option_share_bound(gap)
            measured = float(np.mean(shares))
            table.add_row(
                {
                    "beta": beta,
                    "gap": gap,
                    "delta": delta,
                    "horizon": horizon,
                    "measured_share": measured,
                    "bound": bound,
                    "bound_vacuous": bound == 0.0,
                    "within_bound": measured >= bound,
                }
            )
    return table


@pytest.mark.benchmark(group="E2-best-option-share")
def test_best_option_share_lower_bound(benchmark, save_results):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results(table, "E2_best_option_share")
    assert all(table.column("within_bound"))
    # Larger gaps should yield larger best-option shares for fixed beta.
    for beta in BETAS:
        shares = table.filter(beta=beta).sort_by("gap").column("measured_share")
        assert shares == sorted(shares)
