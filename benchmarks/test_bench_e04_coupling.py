"""E4 — Lemma 4.5: coupling closeness between finite and infinite dynamics.

Paper claim: under a coupling in which both processes see the same rewards,
``P^t_j / Q^t_j`` stays within ``[1/(1+delta_t), 1+delta_t]`` for
``delta_t = 5^t * delta''`` with probability at least ``1 - 6tm/N^10``, where
``delta'' = sqrt(60 m ln N / ((1-beta) mu N))``.  The closeness degrades with
time (5^t) and improves with N.

The benchmark realises the coupling for a sweep of population sizes, records
the measured worst-case ratio at several horizons and the lemma's bound, and
checks (a) every measured ratio is within the bound, and (b) the measured
ratio improves monotonically with N.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import BernoulliEnvironment, run_coupled_dynamics
from repro.experiments import ResultTable

POPULATIONS = [1_000, 10_000, 100_000]
HORIZON = 8
CHECKPOINTS = [1, 4, 8]
BETA = 0.6
REPLICATIONS = 3


def run_experiment() -> ResultTable:
    table = ResultTable()
    for population in POPULATIONS:
        ratio_samples = {checkpoint: [] for checkpoint in CHECKPOINTS}
        bound_values = {}
        for seed in range(REPLICATIONS):
            env = BernoulliEnvironment([0.8, 0.5, 0.5], rng=seed)
            run = run_coupled_dynamics(
                env, population_size=population, horizon=HORIZON, beta=BETA, rng=seed + 100
            )
            for checkpoint in CHECKPOINTS:
                ratio_samples[checkpoint].append(run.ratio_series[checkpoint - 1])
                bound_values[checkpoint] = (
                    run.bound_series[checkpoint - 1] if run.bound_series is not None else np.inf
                )
        for checkpoint in CHECKPOINTS:
            measured = float(np.mean(ratio_samples[checkpoint]))
            table.add_row(
                {
                    "N": population,
                    "t": checkpoint,
                    "measured_ratio": measured,
                    "lemma_bound": float(bound_values[checkpoint]),
                    "within_bound": measured <= bound_values[checkpoint],
                }
            )
    return table


@pytest.mark.benchmark(group="E4-coupling")
def test_coupling_within_lemma_bound_and_improves_with_population(benchmark, save_results):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    save_results(table, "E4_coupling")
    assert all(table.column("within_bound"))
    # Closeness improves with N at every checkpoint.
    for checkpoint in CHECKPOINTS:
        ratios = table.filter(t=checkpoint).sort_by("N").column("measured_ratio")
        assert ratios == sorted(ratios, reverse=True)
