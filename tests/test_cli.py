"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.population == 2000
        assert args.beta == pytest.approx(0.6)

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])


class TestSimulateCommand:
    def test_runs_and_prints_table(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--options", "0.9", "0.3",
                "--population", "300",
                "--horizon", "60",
                "--replications", "1",
                "--seed", "0",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "regret" in output and "finite" in output

    def test_infinite_flag_adds_rows(self, capsys):
        main(
            [
                "simulate",
                "--options", "0.9", "0.3",
                "--population", "200",
                "--horizon", "40",
                "--replications", "1",
                "--infinite",
            ]
        )
        output = capsys.readouterr().out
        assert "infinite" in output

    def test_plot_flag_draws_chart(self, capsys):
        main(
            [
                "simulate",
                "--options", "0.9", "0.3",
                "--population", "200",
                "--horizon", "40",
                "--replications", "1",
                "--plot",
            ]
        )
        assert "Best option share" in capsys.readouterr().out

    def test_output_writes_csv(self, tmp_path, capsys):
        target = tmp_path / "out.csv"
        main(
            [
                "simulate",
                "--options", "0.8", "0.4",
                "--population", "200",
                "--horizon", "30",
                "--replications", "2",
                "--output", str(target),
            ]
        )
        assert target.exists()
        assert "wrote" in capsys.readouterr().out


class TestRunCommand:
    def test_batched_engine_prints_summary(self, capsys):
        exit_code = main(
            [
                "run",
                "--options", "0.85", "0.45",
                "--population", "400",
                "--horizon", "40",
                "--replications", "20",
                "--seed", "1",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "engine=batched" in output
        assert "regret" in output and "best_option_share" in output
        assert "20" in output  # replication count column

    def test_loop_engine_fallback(self, capsys):
        exit_code = main(
            [
                "run",
                "--options", "0.85", "0.45",
                "--population", "200",
                "--horizon", "20",
                "--replications", "3",
                "--engine", "loop",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "engine=loop" in output

    def test_output_writes_csv(self, tmp_path):
        target = tmp_path / "run.csv"
        main(
            [
                "run",
                "--options", "0.8", "0.4",
                "--population", "200",
                "--horizon", "20",
                "--replications", "5",
                "--output", str(target),
            ]
        )
        assert target.exists()

    def test_default_engine_is_batched(self):
        args = build_parser().parse_args(["run"])
        assert args.engine == "batched"
        assert args.replications == 100


class TestBoundsCommand:
    def test_prints_paper_quantities(self, capsys):
        exit_code = main(["bounds", "--num-options", "5", "--beta", "0.6"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "delta" in output
        assert "finite_regret_bound" in output

    def test_population_adds_theorem_conditions(self, capsys):
        main(["bounds", "--num-options", "5", "--beta", "0.6", "--population", "1000"])
        output = capsys.readouterr().out
        assert "thm4.4:condition1_holds" in output


class TestCouplingCommand:
    def test_reports_ratio_per_step(self, capsys):
        exit_code = main(
            ["coupling", "--population", "2000", "--horizon", "4", "--seed", "1"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "measured_ratio" in output
        assert "lemma_bound" in output


class TestSweepCommand:
    def test_one_row_per_population(self, capsys, tmp_path):
        target = tmp_path / "sweep.csv"
        exit_code = main(
            [
                "sweep",
                "--options", "0.85", "0.45",
                "--populations", "100", "500",
                "--horizon", "60",
                "--replications", "1",
                "--output", str(target),
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert output.count("\n") >= 4
        assert target.exists()
        from repro.experiments import read_csv

        table = read_csv(target)
        assert table.column("N") == [100, 500]

    def test_default_engine_is_batched(self, capsys):
        args = build_parser().parse_args(["sweep"])
        assert args.engine == "batched"
        exit_code = main(
            [
                "sweep",
                "--options", "0.85", "0.45",
                "--populations", "100",
                "--horizon", "20",
                "--replications", "2",
            ]
        )
        assert exit_code == 0
        assert "engine=batched" in capsys.readouterr().out

    def test_beta_and_mu_axes_multiply_the_grid(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--options", "0.85", "0.45",
                "--populations", "100", "200",
                "--betas", "0.6", "0.7",
                "--mus", "0.05", "0.1",
                "--horizon", "15",
                "--replications", "2",
                "--seed", "4",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "8 grid points" in output
        # one table row per grid point (plus headers/summary lines)
        assert output.count("0.85") >= 8

    def test_loop_engine_fallback_matches_grid_seeds(self, capsys, tmp_path):
        """Both engines run the same grid; rows align point for point."""
        tables = {}
        for engine in ("batched", "loop"):
            target = tmp_path / f"{engine}.csv"
            exit_code = main(
                [
                    "sweep",
                    "--options", "0.85", "0.45",
                    "--populations", "150",
                    "--betas", "0.6", "0.7",
                    "--horizon", "15",
                    "--replications", "2",
                    "--seed", "3",
                    "--engine", engine,
                    "--output", str(target),
                ]
            )
            assert exit_code == 0
            from repro.experiments import read_csv

            tables[engine] = read_csv(target)
        assert tables["batched"].column("beta") == tables["loop"].column("beta")
        assert tables["batched"].column("N") == tables["loop"].column("N")
        output = capsys.readouterr().out
        assert "engine=loop" in output


class TestNetworkCommand:
    def test_default_engine_is_batched(self):
        args = build_parser().parse_args(["network"])
        assert args.engine == "batched"
        assert args.topology == "watts_strogatz"

    def test_batched_engine_prints_topology_and_summary(self, capsys):
        exit_code = main(
            [
                "network",
                "--options", "0.85", "0.45",
                "--topology", "ring",
                "--size", "200",
                "--horizon", "30",
                "--replications", "8",
                "--seed", "1",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "topology=ring" in output
        assert "engine=batched" in output
        assert "avg_degree" in output
        # Expensive topology statistics only appear behind --stats.
        assert "spectral_gap" not in output
        assert "regret" in output and "best_option_share" in output

    def test_stats_flag_adds_expensive_topology_statistics(self, capsys):
        exit_code = main(
            [
                "network",
                "--topology", "ring",
                "--size", "40",
                "--horizon", "10",
                "--replications", "2",
                "--stats",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "spectral_gap" in output
        assert "diameter" in output
        assert "clustering" in output

    @pytest.mark.parametrize("engine", ("vectorized", "loop"))
    def test_alternative_engines_run(self, engine, capsys):
        exit_code = main(
            [
                "network",
                "--options", "0.85", "0.45",
                "--topology", "complete",
                "--size", "60",
                "--horizon", "15",
                "--replications", "3",
                "--engine", engine,
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert f"engine={engine}" in output

    def test_output_writes_csv(self, tmp_path):
        target = tmp_path / "network.csv"
        exit_code = main(
            [
                "network",
                "--topology", "erdos_renyi",
                "--size", "80",
                "--horizon", "15",
                "--replications", "4",
                "--graph-seed", "2",
                "--output", str(target),
            ]
        )
        assert exit_code == 0
        assert target.exists()

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["network", "--topology", "moebius"])


class TestProtocolCommand:
    def test_default_engine_is_batched(self):
        args = build_parser().parse_args(["protocol"])
        assert args.engine == "batched"
        assert args.nodes == 1000

    def test_batched_engine_prints_summary(self, capsys):
        exit_code = main(
            [
                "protocol",
                "--options", "0.85", "0.45",
                "--nodes", "200",
                "--rounds", "30",
                "--loss", "0.2",
                "--replications", "8",
                "--seed", "1",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "engine=batched" in output
        assert "loss=0.2" in output
        assert "regret" in output and "best_option_share" in output
        assert "alive_fraction" in output

    @pytest.mark.parametrize("engine", ("vectorized", "loop"))
    def test_alternative_engines_run(self, engine, capsys):
        exit_code = main(
            [
                "protocol",
                "--options", "0.85", "0.45",
                "--nodes", "60",
                "--rounds", "15",
                "--replications", "2",
                "--engine", engine,
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert f"engine={engine}" in output

    def test_mass_crash_defaults_to_midpoint_round(self, capsys):
        exit_code = main(
            [
                "protocol",
                "--options", "0.85", "0.45",
                "--nodes", "100",
                "--rounds", "20",
                "--mass-crash-fraction", "0.4",
                "--replications", "3",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "mass_crash_round=10" in output

    def test_delay_requires_the_loop_engine(self, capsys):
        exit_code = main(
            [
                "protocol",
                "--nodes", "50",
                "--rounds", "5",
                "--delay", "0.1",
                "--engine", "batched",
            ]
        )
        assert exit_code == 2
        assert "loop engine" in capsys.readouterr().err

    def test_delay_runs_on_the_loop_engine(self, capsys):
        exit_code = main(
            [
                "protocol",
                "--options", "0.85", "0.45",
                "--nodes", "50",
                "--rounds", "10",
                "--delay", "0.1",
                "--replications", "2",
                "--engine", "loop",
            ]
        )
        assert exit_code == 0
        assert "engine=loop" in capsys.readouterr().out

    def test_output_writes_csv(self, tmp_path):
        target = tmp_path / "protocol.csv"
        exit_code = main(
            [
                "protocol",
                "--nodes", "80",
                "--rounds", "10",
                "--loss", "0.1",
                "--replications", "4",
                "--output", str(target),
            ]
        )
        assert exit_code == 0
        assert target.exists()


class TestRuntimeFlags:
    SWEEP = [
        "sweep",
        "--options", "0.8", "0.5",
        "--populations", "200", "400",
        "--horizon", "10",
        "--replications", "2",
        "--engine", "loop",
    ]

    def test_workers_and_store_run_and_report_cache_stats(self, capsys, tmp_path):
        store = str(tmp_path / "sweep.sqlite")
        assert main(self.SWEEP + ["--workers", "2", "--store", store]) == 0
        output = capsys.readouterr().out
        assert "on 2 workers" in output
        assert "0 cache hits, 4 misses, 4 rows" in output

    def test_warm_store_serves_every_task(self, capsys, tmp_path):
        store = str(tmp_path / "sweep.sqlite")
        main(self.SWEEP + ["--store", store])
        first = capsys.readouterr().out
        assert main(self.SWEEP + ["--store", store, "--resume"]) == 0
        second = capsys.readouterr().out
        assert "4 cache hits, 0 misses, 4 rows" in second
        # identical metric tables modulo the store-stats and tier lines
        assert first.splitlines()[:-2] == second.splitlines()[:-2]

    def test_resume_without_store_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.SWEEP + ["--resume"])
        assert excinfo.value.code == 2
        assert "--resume needs --store" in capsys.readouterr().err

    def test_resume_with_missing_store_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(self.SWEEP + ["--resume", "--store", str(tmp_path / "absent.sqlite")])
        assert excinfo.value.code == 2
        assert "cannot resume" in capsys.readouterr().err

    def test_nonpositive_workers_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.SWEEP + ["--workers", "0"])
        assert excinfo.value.code == 2
        assert "--workers must be at least 1" in capsys.readouterr().err

    def test_store_hot_mb_reports_tier_stats(self, capsys, tmp_path):
        store = str(tmp_path / "tiered.sqlite")
        arguments = self.SWEEP + ["--store", store, "--store-hot-mb", "8"]
        assert main(arguments) == 0
        cold = capsys.readouterr().out
        assert "4 spills" in cold
        assert main(arguments + ["--resume"]) == 0
        warm = capsys.readouterr().out
        assert "4 cache hits, 0 misses, 4 rows" in warm
        # A fresh process starts with an empty hot tier: replay is cold.
        assert "0 hot hits, 4 cold hits" in warm

    def test_nonpositive_store_hot_mb_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.SWEEP + ["--store-hot-mb", "0"])
        assert excinfo.value.code == 2
        assert "--store-hot-mb must be positive" in capsys.readouterr().err

    def test_serve_rejects_nonpositive_store_hot_mb(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--store-hot-mb", "-1"])
        assert excinfo.value.code == 2
        assert "--store-hot-mb must be positive" in capsys.readouterr().err

    def test_batched_sweep_notes_the_per_point_convention(self, capsys, tmp_path):
        arguments = self.SWEEP[:-1] + ["batched"]  # swap --engine loop -> batched
        store = str(tmp_path / "batched.sqlite")
        assert main(arguments + ["--store", store]) == 0
        assert "one grid point per task" in capsys.readouterr().err

    def test_network_batched_workers_notes_single_task(self, capsys):
        exit_code = main(
            [
                "network",
                "--topology", "ring",
                "--size", "100",
                "--horizon", "5",
                "--replications", "2",
                "--workers", "2",
            ]
        )
        assert exit_code == 0
        assert "indivisible task" in capsys.readouterr().err


class TestStoreClosedOnErrorPaths:
    """Regression: a failure after --store opened must still close the store.

    The old commands only closed the store on the success path (inside
    ``_finish_runtime``), so any error between ``ResultStore(args.store)``
    and the final print leaked the sqlite connection.
    """

    def _capture_store(self, monkeypatch):
        import repro.cli as cli_module
        from repro.runtime import ResultStore

        created = []

        class RecordingStore(ResultStore):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

        monkeypatch.setattr(cli_module, "ResultStore", RecordingStore)
        return created

    @pytest.mark.parametrize("command_args", [
        TestRuntimeFlags.SWEEP,
        ["network", "--topology", "ring", "--size", "60", "--horizon", "5",
         "--replications", "2", "--engine", "loop"],
        ["protocol", "--nodes", "40", "--rounds", "5",
         "--replications", "2", "--engine", "loop"],
    ])
    def test_execution_error_closes_the_store(
        self, command_args, monkeypatch, tmp_path
    ):
        import repro.cli as cli_module

        created = self._capture_store(monkeypatch)

        def explode(*args, **kwargs):
            raise RuntimeError("engine blew up")

        monkeypatch.setattr(cli_module, "execute_request", explode)
        store_path = str(tmp_path / "leak.sqlite")
        with pytest.raises(RuntimeError, match="engine blew up"):
            main(command_args + ["--store", store_path])
        assert len(created) == 1
        assert created[0].closed

    def test_output_write_error_closes_the_store(self, monkeypatch, tmp_path):
        import repro.cli as cli_module

        created = self._capture_store(monkeypatch)

        def refuse(table, output):
            raise OSError("disk full")

        monkeypatch.setattr(cli_module, "_finish", refuse)
        with pytest.raises(OSError, match="disk full"):
            main(
                TestRuntimeFlags.SWEEP
                + ["--store", str(tmp_path / "leak.sqlite")]
            )
        assert len(created) == 1
        assert created[0].closed

    def test_success_path_still_closes_and_reports(self, capsys, tmp_path):
        store_path = str(tmp_path / "ok.sqlite")
        assert main(TestRuntimeFlags.SWEEP + ["--store", store_path]) == 0
        assert "cache hits" in capsys.readouterr().out


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.store is None
        assert args.queue_size == 16
        assert args.job_workers == 2
        assert args.workers == 1

    def test_serve_rejects_nonpositive_workers(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--workers", "0"])
        assert excinfo.value.code == 2
        assert "--workers must be at least 1" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_runs_and_shuts_down_cleanly(self, capsys, monkeypatch, tmp_path):
        import repro.cli as cli_module

        # serve_forever blocks; stand in a Ctrl-C so the command exercises
        # its startup banner and graceful-shutdown path end to end.
        monkeypatch.setattr(
            cli_module.SimulationDaemon,
            "serve_forever",
            lambda self: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        store_path = str(tmp_path / "serve.sqlite")
        assert main(["serve", "--port", "0", "--store", store_path]) == 0
        captured = capsys.readouterr()
        assert "repro serve listening on http://" in captured.out
        assert store_path in captured.out
        assert "shutting down" in captured.err

    def test_serve_without_store_notes_recomputation(self, capsys, monkeypatch):
        import repro.cli as cli_module

        monkeypatch.setattr(
            cli_module.SimulationDaemon,
            "serve_forever",
            lambda self: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        assert main(["serve", "--port", "0"]) == 0
        assert "no result store" in capsys.readouterr().out

    def test_serve_bind_failure_closes_store_and_returns_2(
        self, capsys, monkeypatch, tmp_path
    ):
        import repro.cli as cli_module
        from repro.runtime import ResultStore

        created = []

        class RecordingStore(ResultStore):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

        monkeypatch.setattr(cli_module, "ResultStore", RecordingStore)

        def refuse_bind(address, service, verbose=False):
            service.close()
            raise OSError("address already in use")

        monkeypatch.setattr(cli_module, "SimulationDaemon", refuse_bind)
        exit_code = main(["serve", "--store", str(tmp_path / "serve.sqlite")])
        assert exit_code == 2
        assert "cannot start daemon" in capsys.readouterr().err
        assert len(created) == 1
        assert created[0].closed


class TestEngineOptionFlags:
    """--backend/--dtype thread from the CLI through the shared request layer."""

    def test_parser_defaults_to_no_override(self):
        for command in ("sweep", "network", "protocol"):
            args = build_parser().parse_args([command])
            assert args.backend is None
            assert args.dtype is None

    def test_unknown_dtype_rejected_by_the_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--dtype", "float16"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["network", "--backend", "metal"])

    def test_float32_sweep_rows_match_the_service_request(self, capsys, tmp_path):
        """The CLI and a direct service request produce identical rows."""
        from repro.experiments import read_csv, write_csv
        from repro.service.requests import execute_request, sweep_request

        cli_target = tmp_path / "cli.csv"
        exit_code = main(
            [
                "sweep",
                "--options", "0.85", "0.45",
                "--populations", "100",
                "--horizon", "15",
                "--replications", "2",
                "--seed", "3",
                "--dtype", "float32",
                "--output", str(cli_target),
            ]
        )
        assert exit_code == 0
        capsys.readouterr()

        result = execute_request(
            sweep_request(
                options=[0.85, 0.45],
                populations=[100],
                horizon=15,
                replications=2,
                seed=3,
                dtype="float32",
            )
        )
        service_target = tmp_path / "service.csv"
        write_csv(result.table, service_target)
        assert read_csv(cli_target).rows == read_csv(service_target).rows

    def test_float32_changes_the_recorded_metrics(self, tmp_path):
        """Distinct precisions are distinct workloads, not a relabelling."""
        from repro.experiments import read_csv

        tables = {}
        for label, extra in (("default", []), ("float32", ["--dtype", "float32"])):
            target = tmp_path / f"{label}.csv"
            assert main(
                [
                    "sweep",
                    "--options", "0.85", "0.45",
                    "--populations", "100",
                    "--horizon", "15",
                    "--replications", "2",
                    "--seed", "3",
                    "--output", str(target),
                ]
                + extra
            ) == 0
            tables[label] = read_csv(target)
        assert tables["default"].column("N") == tables["float32"].column("N")

    @pytest.mark.parametrize(
        "command, extra",
        [
            ("sweep", ["--populations", "100"]),
            ("network", ["--size", "40"]),
            ("protocol", ["--nodes", "40"]),
        ],
    )
    def test_overrides_with_per_seed_engines_exit_with_an_error(
        self, command, extra, capsys
    ):
        exit_code = main(
            [
                command,
                "--options", "0.85", "0.45",
                "--engine", "loop",
                "--dtype", "float32",
            ]
            + extra
        )
        assert exit_code == 2
        assert "batched engine" in capsys.readouterr().err

    def test_float32_network_and_protocol_run(self, capsys):
        assert main(
            [
                "network",
                "--options", "0.85", "0.45",
                "--size", "40",
                "--horizon", "6",
                "--replications", "2",
                "--dtype", "float32",
            ]
        ) == 0
        assert main(
            [
                "protocol",
                "--options", "0.85", "0.45",
                "--nodes", "40",
                "--rounds", "6",
                "--replications", "2",
                "--dtype", "float32",
            ]
        ) == 0
        capsys.readouterr()
