"""Tracing wired through the runtime, broker and campaign layers.

Covers the cross-layer observability contracts: shard span identities are
bit-identical on every backend (they derive from task content addresses,
never wall clocks), cache hits are attributed, broker requeues leave a
structured event, and a traced campaign records one span per DAG node plus
one per shard with correct parent links.
"""

from __future__ import annotations

import logging
import socket
import threading

import pytest

from repro.campaign import (
    BrokerBackend,
    campaign_from_spec,
    parse_address,
    run_broker,
    run_campaign,
)
from repro.campaign.broker import recv_frame, send_frame
from repro.experiments.dynamics_sweep import dynamics_point_replication
from repro.obs import (
    MemorySink,
    Tracer,
    get_registry,
    set_ambient_context,
    set_tracer,
    validate_record,
)
from repro.runtime import (
    ExecutionOptions,
    ParallelExecutor,
    ResultStore,
    SerialExecutor,
)
from repro.runtime.shard import Task
from repro.service.requests import execute_request, sweep_request

REPLICATION_REF = "repro.experiments.dynamics_sweep:dynamics_point_replication"


@pytest.fixture
def tracing():
    """Install a MemorySink tracer process-wide; restore and clean up after."""
    sink = MemorySink()
    tracer = Tracer(sink)
    previous = set_tracer(tracer)
    try:
        yield tracer, sink
    finally:
        set_tracer(previous)
        set_ambient_context(None, None)


def sweep(populations=(40, 50), replications=2):
    return sweep_request(
        options=[0.8, 0.5],
        populations=list(populations),
        horizon=6,
        replications=replications,
        seed=0,
        engine="loop",
    )


def records_by_name(sink, name, event="span_end"):
    out = []
    for trace_records in [sink.records(t) for t in all_trace_ids(sink)]:
        out.extend(
            r for r in trace_records if r["name"] == name and r["event"] == event
        )
    return out


def all_trace_ids(sink):
    with sink._lock:
        return list(sink._traces)


def sample_task(ordinal):
    return Task(
        ordinal=ordinal,
        point_index=ordinal,
        name=f"obs-{ordinal}",
        function_ref=REPLICATION_REF,
        mode="loop",
        parameters={"qualities": [0.8, 0.5], "N": 40, "T": 6},
        seeds=(100 + ordinal,),
        replicate_offset=0,
    )


def start_broker(address, **kwargs):
    holder = {}

    def target():
        try:
            holder["executed"] = run_broker(address, connect_timeout=10.0, **kwargs)
        except BaseException as error:  # noqa: BLE001 - surfaced by the test
            holder["error"] = error

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, holder


def start_vanishing_broker(address):
    """A protocol-speaking impostor: accept exactly one shard, then vanish.

    Unlike ``run_broker(max_shards=1)`` — which finishes its shard and so
    only *races* the coordinator into a requeue — this closes the socket
    while its shard is in flight, which forces the dropped-connection
    requeue path deterministically.
    """
    holder = {}

    def target():
        host, port = parse_address(address)
        sock = socket.create_connection((host, port), timeout=10.0)
        try:
            send_frame(sock, {"type": "hello", "workers": 1})
            frame = recv_frame(sock)
            holder["frame"] = frame
        finally:
            sock.close()

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, holder


class TestRunPlanTracing:
    def test_shard_span_ids_identical_across_backends(self, tracing):
        # Same request, same shard partitioning (8 shards each way): the
        # serial and process-pool runs must record the *same* span ids —
        # the determinism contract that lets traces be diffed across hosts.
        tracer, _ = tracing
        request = sweep(populations=(40, 45, 50, 55), replications=2)

        def run(executor):
            sink = MemorySink()
            local = Tracer(sink)
            result = execute_request(
                request, options=ExecutionOptions(executor=executor, tracer=local)
            )
            spans = {
                (r["name"], r["span"], r["parent"], r["trace"])
                for t in all_trace_ids(sink)
                for r in sink.records(t)
                if r["event"] == "span_end"
            }
            return result.rows, spans

        serial_rows, serial_spans = run(SerialExecutor(num_shards=8))
        parallel_rows, parallel_spans = run(
            ParallelExecutor(2, shards_per_worker=4)
        )
        assert serial_rows == parallel_rows
        assert serial_spans == parallel_spans
        assert sum(1 for name, *_ in serial_spans if name == "shard") == 8

    def test_traced_run_matches_untraced_rows(self):
        request = sweep()
        untraced = execute_request(
            request, options=ExecutionOptions(executor=SerialExecutor())
        )
        traced = execute_request(
            request,
            options=ExecutionOptions(
                executor=SerialExecutor(), tracer=Tracer(MemorySink())
            ),
        )
        assert traced.rows == untraced.rows

    def test_tracer_alone_activates_the_runtime_path(self, tracing):
        # ExecutionOptions(tracer=...) with no executor/store must still
        # route through run_plan — otherwise nothing would be traced.
        tracer, sink = tracing
        execute_request(sweep(), options=ExecutionOptions(tracer=tracer))
        assert len(records_by_name(sink, "run_plan")) == 1
        assert records_by_name(sink, "shard")

    def test_every_record_is_schema_valid(self, tracing):
        tracer, sink = tracing
        execute_request(sweep(), options=ExecutionOptions(tracer=tracer))
        for trace_id in all_trace_ids(sink):
            for record in sink.records(trace_id):
                assert validate_record(record) == []

    def test_cache_hits_are_attributed(self, tracing, tmp_path):
        tracer, sink = tracing
        registry = get_registry()
        hits = registry.counter("repro_plan_cache_hits_total")
        misses = registry.counter("repro_plan_cache_misses_total")
        hits_before, misses_before = hits.value(), misses.value()
        request = sweep()
        with ResultStore(tmp_path / "cache.sqlite") as store:
            execute_request(
                request, options=ExecutionOptions(store=store, tracer=tracer)
            )
            cold_events = records_by_name(sink, "cache_lookup", event="event")
            assert cold_events[-1]["attributes"]["hits"] == 0
            task_count = cold_events[-1]["attributes"]["tasks"]
            assert misses.value() - misses_before == task_count
            execute_request(
                request, options=ExecutionOptions(store=store, tracer=tracer)
            )
        warm_events = records_by_name(sink, "cache_lookup", event="event")
        assert warm_events[-1]["attributes"] == {
            "hits": task_count,
            "misses": 0,
            "tasks": task_count,
        }
        assert hits.value() - hits_before == task_count
        # the warm run dispatched nothing, so both run_plan spans exist but
        # the shard span count did not grow
        warm_run_plans = records_by_name(sink, "run_plan")
        assert len(warm_run_plans) == 2
        assert warm_run_plans[0]["span"] == warm_run_plans[1]["span"]
        assert len(records_by_name(sink, "shard")) == task_count  # cold only

    def test_shard_spans_carry_worker_timing_and_rows(self, tracing):
        tracer, sink = tracing
        execute_request(sweep(), options=ExecutionOptions(tracer=tracer))
        for shard in records_by_name(sink, "shard"):
            assert shard["wall_s"] > 0.0
            assert shard["attributes"]["rows"] > 0
            assert shard["attributes"]["rows_per_s"] > 0.0


class TestBrokerTracing:
    def test_requeue_emits_structured_event_and_counter(self, tracing, caplog):
        tracer, sink = tracing
        registry = get_registry()
        requeues = registry.counter("repro_broker_requeues_total")
        requeues_before = requeues.value()
        shards = [[sample_task(i)] for i in range(4)]
        with caplog.at_level(logging.WARNING, logger="repro.campaign.broker"):
            with tracer.span("campaign", "requeue-drill"):
                with BrokerBackend(min_brokers=2, timeout=15.0) as backend:
                    crashy_thread, crashy = start_vanishing_broker(backend.address)
                    survivor_thread, _ = start_broker(backend.address)
                    results = list(
                        backend.run_shards(shards, dynamics_point_replication)
                    )
        crashy_thread.join(timeout=10.0)
        survivor_thread.join(timeout=10.0)
        assert len(results) == 4
        assert crashy["frame"]["type"] == "shard"  # it really held a shard
        assert requeues.value() - requeues_before >= 1
        requeue_logs = [
            record
            for record in caplog.records
            if record.message.startswith("broker_requeue")
        ]
        assert requeue_logs
        assert "broker=" in requeue_logs[0].message
        assert "shard=" in requeue_logs[0].message
        assert "in_flight=" in requeue_logs[0].message
        events = records_by_name(sink, "broker_requeue", event="event")
        assert events
        assert set(events[0]["attributes"]) == {"broker", "shard", "in_flight"}

    def test_broker_shard_timing_reaches_the_driver(self, tracing):
        # The result frame's worker-measured timing must become the shard
        # span's wall time, not the coordinator round-trip.
        tracer, sink = tracing
        with BrokerBackend(min_brokers=1, timeout=15.0) as backend:
            thread, _ = start_broker(backend.address)
            execute_request(
                sweep(), options=ExecutionOptions(executor=backend, tracer=tracer)
            )
        thread.join(timeout=10.0)
        shards = records_by_name(sink, "shard")
        assert shards
        for shard in shards:
            assert shard["wall_s"] > 0.0
            assert shard["cpu_s"] >= 0.0


class TestCampaignTracing:
    def campaign_spec(self):
        return {
            "name": "traced",
            "nodes": [
                {
                    "id": "sim",
                    "kind": "simulate",
                    "request": {
                        "kind": "sweep",
                        "options": [0.8, 0.5],
                        "populations": list(range(30, 80, 5)),  # 10 points
                        "horizon": 6,
                        "replications": 2,  # x2 -> 20 loop tasks
                        "engine": "loop",
                    },
                },
                {"id": "stats", "kind": "analyse", "inputs": ["sim"]},
                {"id": "summary", "kind": "report", "inputs": ["stats"]},
            ],
        }

    def run_traced(self, backend=None, close=False):
        campaign = campaign_from_spec(self.campaign_spec())
        sink = MemorySink()
        tracer = Tracer(sink)
        threads = []
        if backend == "broker":
            backend = BrokerBackend(min_brokers=2, timeout=15.0)
            threads = [start_broker(backend.address)[0] for _ in range(2)]
        try:
            result = run_campaign(
                campaign,
                backend=backend or SerialExecutor(num_shards=16),
                tracer=tracer,
            )
        finally:
            if close and backend is not None:
                backend.close()
        for thread in threads:
            thread.join(timeout=10.0)
        trace_id = next(iter(all_trace_ids(sink)))
        return result, sink.records(trace_id)

    def test_two_broker_campaign_spans_one_per_shard_and_node(self, tracing):
        result, records = self.run_traced(backend="broker", close=True)
        problems = [validate_record(r) for r in records if validate_record(r)]
        assert problems == []
        ends = [r for r in records if r["event"] == "span_end"]
        by_name = {}
        for record in ends:
            by_name.setdefault(record["name"], []).append(record)

        # one root, one span per DAG node, one run_plan under the simulate
        # node, one span per dispatched shard (20 tasks across 16 shards)
        assert len(by_name["campaign"]) == 1
        assert len(by_name["campaign_node"]) == 3
        assert len(by_name["run_plan"]) == 1
        assert len(by_name["shard"]) == 16

        root = by_name["campaign"][0]
        nodes = {r["attributes"]["node"]: r for r in by_name["campaign_node"]}
        assert set(nodes) == {"sim", "stats", "summary"}
        for node in nodes.values():
            assert node["parent"] == root["span"]
            assert node["trace"] == root["trace"]
        run_plan = by_name["run_plan"][0]
        assert run_plan["parent"] == nodes["sim"]["span"]
        for shard in by_name["shard"]:
            assert shard["parent"] == run_plan["span"]
            assert shard["trace"] == root["trace"]
        # the DAG edges ride on the node spans
        assert nodes["stats"]["attributes"]["inputs"] == ["sim"]
        assert nodes["summary"]["attributes"]["inputs"] == ["stats"]
        assert {r.kind for r in result.campaign.nodes} == {
            "simulate",
            "analyse",
            "report",
        }

    def test_span_identities_match_between_serial_and_broker_runs(self, tracing):
        serial_result, serial_records = self.run_traced()
        broker_result, broker_records = self.run_traced(
            backend="broker", close=True
        )

        def identities(records):
            return {
                (r["name"], r["trace"], r["span"], r["parent"])
                for r in records
                if r["event"] == "span_end"
            }

        assert identities(serial_records) == identities(broker_records)
        assert [
            list(serial_result[n].rows) for n in serial_result.order
        ] == [list(broker_result[n].rows) for n in broker_result.order]
