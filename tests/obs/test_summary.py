"""Trace summarization: JSONL loading, per-phase stats, table rendering."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MemorySink,
    Tracer,
    load_records,
    render_summary,
    summarize_records,
    summarize_trace_file,
)


def write_trace(path, records):
    path.write_text("".join(json.dumps(record) + "\n" for record in records))


def span_end(name, wall_s, cpu_s=0.0):
    return {
        "event": "span_end",
        "ts": 0.0,
        "trace": "t" * 32,
        "span": "s" * 16,
        "parent": None,
        "name": name,
        "key": "",
        "wall_s": wall_s,
        "cpu_s": cpu_s,
        "attributes": {},
    }


class TestLoadRecords:
    def test_round_trips_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, [span_end("shard", 0.5)])
        assert load_records(path)[0]["name"] == "shard"

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(span_end("a", 0.1)) + "\n\n\n")
        assert len(load_records(path)) == 1

    def test_malformed_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "span_end"}\nnot json\n')
        with pytest.raises(ValueError, match=r":2: not valid JSON"):
            load_records(path)


class TestSummarize:
    def test_groups_by_phase_and_sorts_by_total_wall(self):
        records = [
            span_end("shard", 0.1),
            span_end("shard", 0.3, cpu_s=0.2),
            span_end("run_plan", 0.5),
            {"event": "span_start", "name": "shard"},  # starts are ignored
            {"event": "event", "name": "cache_lookup"},
        ]
        summaries = summarize_records(records)
        assert [summary.name for summary in summaries] == ["run_plan", "shard"]
        shard = summaries[1]
        assert shard.count == 2
        assert shard.total_wall_s == pytest.approx(0.4)
        assert shard.mean_wall_s == pytest.approx(0.2)
        assert shard.max_wall_s == pytest.approx(0.3)
        assert shard.total_cpu_s == pytest.approx(0.2)
        assert shard.as_dict()["count"] == 2

    def test_percentiles_interpolate(self):
        records = [span_end("s", wall) for wall in (0.1, 0.2, 0.3, 0.4)]
        [summary] = summarize_records(records)
        assert summary.p50_wall_s == pytest.approx(0.25)
        assert summary.p95_wall_s == pytest.approx(0.385)

    def test_empty_trace_renders_a_note(self):
        assert "no span_end records" in render_summary([])


class TestRendering:
    def test_table_has_aligned_columns_and_footer(self):
        summaries = summarize_records(
            [span_end("shard", 0.004), span_end("run_plan", 120.0)]
        )
        text = render_summary(summaries, total_events=4)
        lines = text.splitlines()
        assert lines[0].split() == [
            "phase",
            "count",
            "total",
            "mean",
            "p50",
            "p95",
            "max",
            "cpu",
        ]
        assert "run_plan" in lines[2]  # biggest total first
        assert "120.0s" in text
        assert "4.00ms" in text
        assert "2 spans over 4 records" in text

    def test_summarize_trace_file_end_to_end(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer", "key") as outer:
            pass
        write_trace(path, sink.records(outer.trace_id))
        text = summarize_trace_file(path)
        assert "outer" in text
        assert "1 spans over 2 records" in text
