"""Tracer core: deterministic ids, context propagation, sinks, schema."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    NullTracer,
    SpanContext,
    TeeSink,
    Tracer,
    current_context,
    get_tracer,
    resolve_tracer,
    set_ambient_context,
    set_tracer,
    span_id_for,
    trace_id_for_key,
    validate_record,
)


class TestDeterministicIds:
    def test_trace_id_is_a_pure_function_of_the_key(self):
        assert trace_id_for_key("abc") == trace_id_for_key("abc")
        assert trace_id_for_key("abc") != trace_id_for_key("abd")
        assert len(trace_id_for_key("abc")) == 32

    def test_span_id_mixes_trace_parent_name_and_key(self):
        trace = trace_id_for_key("k")
        base = span_id_for(trace, None, "shard", "k")
        assert len(base) == 16
        assert span_id_for(trace, None, "shard", "k") == base
        assert span_id_for(trace, "p", "shard", "k") != base
        assert span_id_for(trace, None, "other", "k") != base
        assert span_id_for(trace, None, "shard", "k2") != base

    def test_same_workload_twice_yields_identical_records(self):
        # The whole point: no wall clocks or pids in any id, so two runs of
        # the same keyed workload produce bit-identical span identities.
        def run():
            sink = MemorySink()
            tracer = Tracer(sink)
            with tracer.span("outer", "request-key") as outer:
                with tracer.span("inner", "task-key"):
                    pass
                trace_id = outer.trace_id
            return [
                {k: r[k] for k in ("event", "trace", "span", "parent", "name")}
                for r in sink.records(trace_id)
            ]

        assert run() == run()


class TestContextPropagation:
    def test_nested_spans_link_parent_ids(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer", "key") as outer:
            with tracer.span("inner", "key2") as inner:
                assert inner.trace_id == outer.trace_id
                assert current_context().span_id == inner.span_id
            assert current_context().span_id == outer.span_id
        assert current_context() is None
        records = sink.records(outer.trace_id)
        inner_start = next(
            r for r in records if r["name"] == "inner" and r["event"] == "span_start"
        )
        assert inner_start["parent"] == outer.span_id

    def test_ambient_context_is_the_fallback(self):
        # Worker processes cannot inherit a contextvar across fork/spawn;
        # they get the parent context via set_ambient_context instead.
        assert current_context() is None
        set_ambient_context("t" * 32, "s" * 16)
        try:
            context = current_context()
            assert context == SpanContext("t" * 32, "s" * 16)
            sink = MemorySink()
            tracer = Tracer(sink)
            with tracer.span("child", "k") as child:
                assert child.trace_id == "t" * 32
            [start, _] = sink.records("t" * 32)
            assert start["parent"] == "s" * 16
        finally:
            set_ambient_context(None, None)
        assert current_context() is None

    def test_contextvar_wins_over_ambient(self):
        set_ambient_context("a" * 32, "b" * 16)
        try:
            tracer = Tracer(MemorySink())
            with tracer.span("outer", "key") as outer:
                assert current_context().span_id == outer.span_id
        finally:
            set_ambient_context(None, None)

    def test_exceptions_mark_the_span_and_restore_context(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("fails", "key") as span:
                raise RuntimeError("boom")
        assert current_context() is None
        end = sink.records(span.trace_id)[-1]
        assert end["event"] == "span_end"
        assert end["attributes"]["error"] == "RuntimeError"

    def test_record_span_emits_start_and_end_back_to_back(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        context = tracer.record_span(
            "shard", "shard-key", wall_s=0.25, cpu_s=0.125, attributes={"rows": 3}
        )
        [start, end] = sink.records(context.trace_id)
        assert start["event"] == "span_start"
        assert end["event"] == "span_end"
        assert end["wall_s"] == 0.25
        assert end["cpu_s"] == 0.125
        assert end["attributes"]["rows"] == 3
        assert end["ts"] - start["ts"] == pytest.approx(0.25)

    def test_events_attach_to_the_current_span(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer", "key") as outer:
            tracer.event("cache_lookup", {"hits": 2})
        event = [r for r in sink.records(outer.trace_id) if r["event"] == "event"]
        assert len(event) == 1
        assert event[0]["span"] == outer.span_id
        assert event[0]["attributes"] == {"hits": 2}


class TestSchema:
    def test_valid_records_pass(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer", "key") as outer:
            tracer.event("tick")
            tracer.record_span("shard", "k2", wall_s=0.1)
        for record in sink.records(outer.trace_id):
            assert validate_record(record) == []

    def test_missing_fields_reported(self):
        problems = validate_record({"event": "span_end"})
        assert problems  # every missing required field is named
        assert any("trace" in problem for problem in problems)
        assert any("wall_s" in problem for problem in problems)

    def test_unknown_event_kind_reported(self):
        assert validate_record({"event": "bogus"})
        assert validate_record("not a dict")


class TestSinks:
    def test_jsonl_sink_appends_one_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(sink)
        with tracer.span("outer", "key"):
            pass
        tracer.close()
        tracer.close()  # idempotent
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["event"] for line in lines] == [
            "span_start",
            "span_end",
        ]

    def test_jsonl_sink_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        JsonlSink(path).close()
        assert path.exists()

    def test_jsonl_sink_drops_writes_after_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.close()
        sink.emit({"event": "event"})  # must not raise
        assert path.read_text() == ""

    def test_memory_sink_evicts_oldest_traces(self):
        sink = MemorySink(max_traces=2)
        for index in range(3):
            sink.emit({"event": "event", "trace": f"t{index}", "span": ""})
        assert sink.records("t0") == []
        assert len(sink.records("t2")) == 1

    def test_memory_sink_truncates_runaway_traces(self):
        sink = MemorySink(max_records=2)
        for _ in range(5):
            sink.emit({"event": "event", "trace": "t", "span": ""})
        assert len(sink.records("t")) == 2
        assert sink.truncated("t")
        assert not sink.truncated("missing")

    def test_memory_sink_bounds_validated(self):
        with pytest.raises(ValueError):
            MemorySink(max_traces=0)

    def test_memory_sink_is_thread_safe(self):
        sink = MemorySink(max_traces=64, max_records=100_000)

        def hammer(trace):
            for _ in range(500):
                sink.emit({"event": "event", "trace": trace, "span": ""})

        threads = [
            threading.Thread(target=hammer, args=(f"t{i % 4}",)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(len(sink.records(f"t{i}")) for i in range(4)) == 8 * 500

    def test_tee_sink_fans_out_and_skips_none(self, tmp_path):
        memory = MemorySink()
        jsonl = JsonlSink(tmp_path / "t.jsonl")
        tee = TeeSink(memory, None, jsonl)
        tee.emit({"event": "event", "trace": "t", "span": ""})
        assert len(memory.records("t")) == 1
        tee.close()  # closes every sink (MemorySink clears, JsonlSink closes)
        assert len((tmp_path / "t.jsonl").read_text().splitlines()) == 1
        assert memory.records("t") == []


class TestProcessTracer:
    def test_null_tracer_is_the_default_and_emits_nothing(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled
        span = NULL_TRACER.span("anything", "key")
        with span as active:
            active.set_attribute("a", 1)
            active.event("tick")
        assert NULL_TRACER.record_span("x", "k", wall_s=1.0) is None
        assert isinstance(NULL_TRACER, NullTracer)

    def test_null_spans_are_shared(self):
        # Zero allocation on the hot path: every call returns the singleton.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_set_tracer_installs_and_restores(self):
        tracer = Tracer(MemorySink())
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
            assert resolve_tracer(None) is tracer
            other = NullTracer()
            assert resolve_tracer(other) is other
        finally:
            set_tracer(previous)
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_the_null_tracer(self):
        set_tracer(Tracer(MemorySink()))
        set_tracer(None)
        assert get_tracer() is NULL_TRACER
