"""MetricsRegistry: thread-safety, bucket semantics, Prometheus exposition."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    format_sample,
    freeze_labels,
    get_registry,
)


class TestLabels:
    def test_freeze_is_order_insensitive(self):
        assert freeze_labels({"a": 1, "b": 2}) == freeze_labels({"b": 2, "a": 1})

    def test_empty_and_none_freeze_to_the_empty_tuple(self):
        assert freeze_labels(None) == ()
        assert freeze_labels({}) == ()

    def test_values_are_stringified(self):
        assert freeze_labels({"n": 5}) == (("n", "5"),)

    def test_format_sample_escapes_quotes_and_newlines(self):
        line = format_sample("m", (("path", 'a"b\nc'),), 1)
        assert line == 'm{path="a\\"b\\nc"} 1'


class TestCounter:
    def test_counts_per_label_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        counter.inc(backend="a")
        counter.inc(2, backend="a")
        counter.inc(backend="b")
        assert counter.value(backend="a") == 3
        assert counter.value(backend="b") == 1
        assert counter.value(backend="missing") == 0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_concurrent_hammer_lands_exactly(self):
        # N threads x M increments must land on exactly N * M: a torn
        # read-modify-write would lose increments.
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total")
        threads_n, increments_m = 8, 2500

        def hammer():
            for _ in range(increments_m):
                counter.inc(worker="shared")

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(worker="shared") == threads_n * increments_m

    def test_concurrent_histogram_hammer_lands_exactly(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        threads_n, observations_m = 8, 1000

        def hammer():
            for index in range(observations_m):
                histogram.observe(index % 3)

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count() == threads_n * observations_m


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("in_flight")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value() == 3

    def test_series_are_independent_per_label(self):
        gauge = MetricsRegistry().gauge("in_flight")
        gauge.inc(backend="parallel")
        gauge.inc(3, backend="broker")
        assert gauge.value(backend="parallel") == 1
        assert gauge.value(backend="broker") == 3


class TestHistogram:
    def test_bucket_boundaries_are_inclusive(self):
        # An observation exactly on a bound lands in that bucket (le =
        # "less than or equal", the Prometheus contract).
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.1, 1.0, 10.0, 10.1):
            histogram.observe(value)
        snapshot = registry.snapshot()["latency"]
        counts = snapshot["counts"][()]
        assert counts == [1, 2, 3, 4]  # cumulative + the +Inf bucket
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(21.2)

    def test_quantiles_interpolate_within_the_bucket(self):
        histogram = MetricsRegistry().histogram("q", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 3.0):
            histogram.observe(value)
        # rank 4 of 8 sits at the top of the (1, 2] bucket
        assert histogram.quantile(0.5) == pytest.approx(2.0)
        assert histogram.quantile(0.0) == pytest.approx(0.0)
        # everything beyond the last finite bound clamps to it
        histogram.observe(100.0)
        assert histogram.quantile(1.0) == pytest.approx(4.0)

    def test_quantile_none_when_empty(self):
        histogram = MetricsRegistry().histogram("empty")
        assert histogram.quantile(0.5) is None

    def test_quantile_range_validated(self):
        histogram = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError, match="quantile"):
            histogram.quantile(1.5)

    @pytest.mark.parametrize(
        "buckets", [(), (1.0, 1.0), (2.0, 1.0), (1.0, float("inf"))]
    )
    def test_invalid_buckets_rejected(self, buckets):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=buckets)


class TestRegistry:
    def test_get_or_create_returns_the_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("shared") is registry.counter("shared")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("taken")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("taken")

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError, match="metric names"):
            MetricsRegistry().counter("bad-name")

    def test_collectors_feed_the_exposition(self):
        registry = MetricsRegistry()

        def collect():
            yield ("repro_store_rows", "gauge", "rows", {}, 7)

        handle = registry.register_collector(collect)
        assert "repro_store_rows 7" in registry.render_prometheus()
        registry.unregister_collector(handle)
        assert "repro_store_rows" not in registry.render_prometheus()

    def test_process_registry_is_a_singleton(self):
        assert get_registry() is get_registry()

    def test_prometheus_exposition_golden(self):
        # Frozen end-to-end rendering: HELP/TYPE headers, label sorting,
        # cumulative buckets with +Inf, _sum/_count, trailing newline.
        registry = MetricsRegistry()
        counter = registry.counter("repro_demo_total", "demo counter")
        counter.inc(2, backend="b")
        counter.inc(backend="a")
        gauge = registry.gauge("repro_demo_depth")
        gauge.set(1.5)
        histogram = registry.histogram(
            "repro_demo_seconds", "demo latency", buckets=(0.5, 1.0)
        )
        histogram.observe(0.25)
        histogram.observe(2.0)
        expected = "\n".join(
            [
                "# TYPE repro_demo_depth gauge",
                "repro_demo_depth 1.5",
                "# HELP repro_demo_seconds demo latency",
                "# TYPE repro_demo_seconds histogram",
                'repro_demo_seconds_bucket{le="0.5"} 1',
                'repro_demo_seconds_bucket{le="1"} 1',
                'repro_demo_seconds_bucket{le="+Inf"} 2',
                "repro_demo_seconds_sum 2.25",
                "repro_demo_seconds_count 2",
                "# HELP repro_demo_total demo counter",
                "# TYPE repro_demo_total counter",
                'repro_demo_total{backend="a"} 1',
                'repro_demo_total{backend="b"} 2',
                "",
            ]
        )
        assert registry.render_prometheus() == expected

    def test_default_latency_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            set(DEFAULT_LATENCY_BUCKETS)
        )
