"""Tests for the backend/dtype parameter convention (repro.experiments.engine_options)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.dynamics_sweep import (
    dynamics_point_replication,
    flatten_grid,
)
from repro.experiments.engine_options import (
    engine_options,
    is_default_options,
    require_default_engine_options,
)
from repro.experiments.network_sweep import network_batched_replication
from repro.experiments.protocol_sweep import (
    protocol_point_replication,
    protocol_vectorized_replication,
)


class TestEngineOptions:
    def test_absent_options_resolve_to_none(self):
        assert engine_options({"N": 50}) == (None, None)

    def test_present_options_are_returned(self):
        parameters = {"N": 50, "backend": "numpy", "dtype": "float32"}
        assert engine_options(parameters) == ("numpy", "float32")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            engine_options({"backend": "metal"})

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            engine_options({"dtype": "float16"})

    def test_is_default_accepts_explicit_default_spellings(self):
        assert is_default_options(None, None)
        assert is_default_options("numpy", "float64")
        assert not is_default_options(None, "float32")
        assert not is_default_options("torch", None)

    def test_require_default_passes_defaults_through(self):
        require_default_engine_options({"N": 50}, "loop")
        require_default_engine_options(
            {"backend": "numpy", "dtype": "float64"}, "loop"
        )

    def test_require_default_names_the_refusing_engine(self):
        with pytest.raises(ValueError, match="loop engine only supports"):
            require_default_engine_options({"dtype": "float32"}, "loop")


class TestPerSeedEnginesRefuseOverrides:
    """Defense in depth below the request layer: per-seed paths are numpy/float64."""

    def test_dynamics_loop_refuses_float32(self):
        parameters = {
            "qualities": [0.8, 0.5], "N": 40, "T": 5, "dtype": "float32",
        }
        with pytest.raises(ValueError, match="batched engine"):
            dynamics_point_replication(0, parameters)

    @pytest.mark.parametrize(
        "replication",
        [protocol_point_replication, protocol_vectorized_replication],
        ids=["loop", "vectorized"],
    )
    def test_protocol_per_seed_engines_refuse_float32(self, replication):
        parameters = {
            "qualities": [0.8, 0.5], "N": 40, "T": 5, "dtype": "float32",
        }
        with pytest.raises(ValueError, match="batched engine"):
            replication(0, parameters)


class TestFlattenGridOptions:
    POINT = {"qualities": [0.8, 0.5], "N": 40, "T": 6, "beta": 0.65}

    def test_flattened_batch_carries_one_option_pair(self):
        points = [dict(self.POINT, dtype="float32") for _ in range(3)]
        flat = flatten_grid(points, 4)
        assert flat.dtype == "float32"
        assert flat.backend is None
        dynamics, environment = flat.build(np.random.default_rng(0))
        assert dynamics.precision.name == "float32"
        assert environment.qualities.dtype == np.float32

    def test_default_points_build_the_default_engine(self):
        flat = flatten_grid([dict(self.POINT)], 4)
        assert flat.backend is None and flat.dtype is None
        dynamics, environment = flat.build(np.random.default_rng(0))
        assert dynamics.precision.is_default
        assert environment.qualities.dtype == np.float64

    def test_mixed_precision_points_rejected(self):
        points = [dict(self.POINT), dict(self.POINT, dtype="float32")]
        with pytest.raises(ValueError, match="one backend at one precision"):
            flatten_grid(points, 4)


class TestNetworkBatchedOptions:
    def test_float32_threads_through_to_the_engine(self):
        parameters = {
            "qualities": [0.8, 0.5],
            "topology": "ring",
            "N": 30,
            "T": 4,
            "dtype": "float32",
        }
        rows = network_batched_replication([0, 1, 2], parameters)
        assert len(rows) == 3
        for row in rows:
            assert np.isfinite(row["regret"])


class TestPrecisionInTheContentAddress:
    """float32 sweeps get their own store keys — no cross-precision cache hits."""

    def test_store_keeps_one_entry_per_precision(self, tmp_path):
        from repro.experiments import ParameterGrid, run_sweep
        from repro.experiments.dynamics_sweep import dynamics_grid_replication
        from repro.runtime.store import ResultStore

        grid = ParameterGrid({"N": [40]})
        base = {"qualities": (0.8, 0.5), "T": 5}
        with ResultStore(tmp_path / "store.sqlite") as store:
            run_sweep(
                "precision", grid, dynamics_grid_replication,
                replications=2, seed=0, base_parameters=base, store=store,
            )
            entries_after_default = len(store)
            assert entries_after_default > 0
            counters = store.counters().as_dict()
            # Same workload at float32: every task must MISS the float64 cache.
            run_sweep(
                "precision", grid, dynamics_grid_replication,
                replications=2, seed=0,
                base_parameters={**base, "dtype": "float32"}, store=store,
            )
            assert len(store) == 2 * entries_after_default
            after = store.counters().as_dict()
            assert after["hits"] == counters["hits"]
            # And re-running float32 is now a pure cache hit.
            run_sweep(
                "precision", grid, dynamics_grid_replication,
                replications=2, seed=0,
                base_parameters={**base, "dtype": "float32"}, store=store,
            )
            assert len(store) == 2 * entries_after_default
            assert store.counters().as_dict()["hits"] > after["hits"]
