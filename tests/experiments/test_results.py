"""Tests for ResultTable."""

import pytest

from repro.experiments import ResultTable


class TestResultTable:
    def test_add_row_and_columns(self):
        table = ResultTable()
        table.add_row({"a": 1, "b": 2})
        table.add_row({"a": 3, "c": 4})
        assert table.columns == ["a", "b", "c"]
        assert len(table) == 2

    def test_construct_from_rows(self):
        table = ResultTable([{"x": 1}, {"x": 2}])
        assert table.column("x") == [1, 2]

    def test_column_missing_values_are_none(self):
        table = ResultTable([{"a": 1}, {"a": 2, "b": 3}])
        assert table.column("b") == [None, 3]

    def test_column_unknown_raises(self):
        table = ResultTable([{"a": 1}])
        with pytest.raises(KeyError):
            table.column("zzz")

    def test_filter(self):
        table = ResultTable([{"kind": "x", "v": 1}, {"kind": "y", "v": 2}])
        filtered = table.filter(kind="x")
        assert len(filtered) == 1
        assert filtered.column("v") == [1]

    def test_sort_by(self):
        table = ResultTable([{"v": 3}, {"v": 1}, {"v": 2}])
        assert table.sort_by("v").column("v") == [1, 2, 3]
        assert table.sort_by("v", reverse=True).column("v") == [3, 2, 1]

    def test_sort_by_unknown_column(self):
        with pytest.raises(KeyError):
            ResultTable([{"v": 1}]).sort_by("w")

    def test_to_text_contains_values(self):
        table = ResultTable([{"name": "run", "regret": 0.1234}])
        text = table.to_text()
        assert "regret" in text and "0.1234" in text

    def test_rows_are_copies(self):
        table = ResultTable([{"a": 1}])
        table.rows[0]["a"] = 99
        assert table.column("a") == [1]

    def test_rejects_empty_row(self):
        with pytest.raises(ValueError):
            ResultTable().add_row({})

    def test_iteration(self):
        table = ResultTable([{"a": 1}, {"a": 2}])
        assert [row["a"] for row in table] == [1, 2]
