"""Tests for the canonical network replication functions and their wiring."""

import numpy as np
import pytest

from repro.experiments import (
    NETWORK_ENGINES,
    NETWORK_REPLICATIONS,
    ExperimentConfig,
    ParameterGrid,
    build_network,
    network_batched_replication,
    network_point_replication,
    network_vectorized_replication,
    run_replications,
    run_sweep,
)

PARAMETERS = {
    "qualities": (0.85, 0.45),
    "topology": "ring",
    "N": 60,
    "T": 25,
    "beta": 0.65,
    "mu": 0.05,
}


class TestBuildNetwork:
    def test_every_topology_family_builds(self):
        for topology in (
            "complete",
            "ring",
            "star",
            "erdos_renyi",
            "barabasi_albert",
            "watts_strogatz",
        ):
            network = build_network({"topology": topology, "N": 30})
            assert network.size == 30
        grid = build_network({"topology": "grid", "N": 30})
        assert grid.size == 25  # nearest side*side square

    def test_random_families_are_deterministic_in_graph_seed(self):
        import networkx as nx

        first = build_network({"topology": "erdos_renyi", "N": 40, "graph_seed": 3})
        second = build_network({"topology": "erdos_renyi", "N": 40, "graph_seed": 3})
        other = build_network({"topology": "erdos_renyi", "N": 40, "graph_seed": 4})
        assert nx.utils.graphs_equal(first.graph, second.graph)
        assert not nx.utils.graphs_equal(first.graph, other.graph)

    def test_topology_parameters_respected(self):
        network = build_network({"topology": "ring", "N": 20, "ring_k": 3})
        assert network.degree(0) == 6
        ws = build_network({"topology": "watts_strogatz", "N": 20, "ws_k": 4, "ws_p": 0.0})
        assert ws.degree(0) == 4

    def test_missing_keys_and_unknown_topology_raise(self):
        with pytest.raises(KeyError):
            build_network({"N": 10})
        with pytest.raises(KeyError):
            build_network({"topology": "ring"})
        with pytest.raises(ValueError):
            build_network({"topology": "moebius", "N": 10})


class TestReplicationFunctions:
    def test_engine_registry_is_complete(self):
        assert set(NETWORK_ENGINES) == set(NETWORK_REPLICATIONS)
        assert NETWORK_REPLICATIONS["loop"] is network_point_replication
        assert NETWORK_REPLICATIONS["vectorized"] is network_vectorized_replication
        assert NETWORK_REPLICATIONS["batched"] is network_batched_replication

    def test_batched_function_is_marked_for_fast_path(self):
        assert getattr(network_batched_replication, "batched_replications", False)
        assert not getattr(network_point_replication, "batched_replications", False)

    @pytest.mark.parametrize("engine", NETWORK_ENGINES)
    def test_run_replications_produces_metrics(self, engine):
        config = ExperimentConfig(
            name=f"net-{engine}", parameters=dict(PARAMETERS), replications=4, seed=9
        )
        result = run_replications(config, NETWORK_REPLICATIONS[engine])
        assert len(result.metrics) == 4
        assert result.metric_names() == ["best_option_share", "regret"]
        assert np.all(np.isfinite(result.metric_values("regret")))

    def test_point_engines_share_seeding_convention(self):
        """loop and vectorized runs with equal seeds use (env=seed, dyn=seed+1)."""
        loop = network_point_replication(3, dict(PARAMETERS))
        vectorized = network_vectorized_replication(3, dict(PARAMETERS))
        # Different engines, same conventions: both deterministic per seed.
        assert loop == network_point_replication(3, dict(PARAMETERS))
        assert vectorized == network_vectorized_replication(3, dict(PARAMETERS))

    def test_engines_agree_on_mean_share(self):
        """All three engines estimate the same mean best-option share."""
        replications = 24
        means = {}
        for engine in NETWORK_ENGINES:
            config = ExperimentConfig(
                name=f"agree-{engine}",
                parameters=dict(PARAMETERS),
                replications=replications,
                seed=2,
            )
            result = run_replications(config, NETWORK_REPLICATIONS[engine])
            means[engine] = result.metric_values("best_option_share").mean()
        assert means["vectorized"] == pytest.approx(means["loop"], abs=0.1)
        assert means["batched"] == pytest.approx(means["loop"], abs=0.1)

    def test_default_mu_is_derived_from_beta(self):
        parameters = dict(PARAMETERS)
        del parameters["mu"]
        metrics = network_vectorized_replication(0, parameters)
        assert 0.0 <= metrics["best_option_share"] <= 1.0

    def test_missing_required_keys_raise(self):
        with pytest.raises(KeyError):
            network_point_replication(0, {"topology": "ring", "N": 10, "T": 5})
        with pytest.raises(KeyError):
            network_batched_replication([0, 1], {"qualities": (0.8, 0.4), "topology": "ring", "N": 10})


class TestTopologySweep:
    def test_sweep_over_topologies_one_row_each(self):
        grid = ParameterGrid({"topology": ["complete", "ring", "star"]})
        results, table = run_sweep(
            "topology-sweep",
            grid,
            network_batched_replication,
            replications=5,
            seed=0,
            base_parameters={"qualities": (0.85, 0.45), "N": 50, "T": 20, "beta": 0.65},
        )
        assert len(results) == 3
        assert table.column("topology") == ["complete", "ring", "star"]
        for result in results:
            assert len(result.metrics) == 5
