"""Tests for ExperimentConfig."""

import pytest

from repro.experiments import ExperimentConfig


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig(name="demo")
        assert config.replications == 5
        assert config.seed == 0
        assert config.parameters == {}

    def test_with_parameters_merges(self):
        config = ExperimentConfig(name="demo", parameters={"a": 1, "b": 2})
        updated = config.with_parameters(b=3, c=4)
        assert updated.parameters == {"a": 1, "b": 3, "c": 4}
        # original untouched
        assert config.parameters == {"a": 1, "b": 2}

    def test_describe_mentions_name_and_parameters(self):
        config = ExperimentConfig(name="E1", parameters={"beta": 0.6}, replications=3)
        description = config.describe()
        assert "E1" in description and "beta=0.6" in description and "x3" in description

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            ExperimentConfig(name="")

    def test_rejects_bad_replications(self):
        with pytest.raises(ValueError):
            ExperimentConfig(name="x", replications=0)

    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError):
            ExperimentConfig(name="x", seed=-1)

    def test_frozen(self):
        config = ExperimentConfig(name="x")
        with pytest.raises(AttributeError):
            config.name = "y"
