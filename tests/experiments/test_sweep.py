"""Tests for parameter sweeps."""

import pytest

from repro.experiments import ParameterGrid, run_sweep


class TestParameterGrid:
    def test_length_is_product(self):
        grid = ParameterGrid({"a": [1, 2], "b": [10, 20, 30]})
        assert len(grid) == 6

    def test_iteration_covers_all_combinations(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y"]})
        points = list(grid)
        assert {"a": 1, "b": "x"} in points
        assert {"a": 2, "b": "y"} in points
        assert len(points) == 4

    def test_iteration_order_last_axis_fastest(self):
        grid = ParameterGrid({"a": [1, 2], "b": [10, 20]})
        points = list(grid)
        assert points[0] == {"a": 1, "b": 10}
        assert points[1] == {"a": 1, "b": 20}

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            ParameterGrid({})

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError):
            ParameterGrid({"a": []})

    def test_generator_axis_materialised_once(self):
        """Regression: a generator axis used to pass validation then yield nothing."""
        grid = ParameterGrid({"a": (value for value in [1, 2, 3]), "b": [10]})
        assert len(grid) == 3
        first_pass = list(grid)
        second_pass = list(grid)
        assert first_pass == second_pass
        assert {"a": 3, "b": 10} in first_pass

    def test_empty_generator_axis_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({"a": (value for value in [])})

    def test_iterator_axis_materialised_once(self):
        grid = ParameterGrid({"a": iter([1, 2])})
        assert len(grid) == 2
        assert list(grid) == [{"a": 1}, {"a": 2}]


class TestRunSweep:
    def test_table_has_one_row_per_point(self):
        grid = ParameterGrid({"x": [1, 2, 3]})
        results, table = run_sweep(
            "demo",
            grid,
            lambda seed, parameters: {"metric": float(parameters["x"])},
            replications=2,
            seed=0,
        )
        assert len(results) == 3
        assert len(table) == 3
        assert table.column("metric") == [1.0, 2.0, 3.0]

    def test_base_parameters_merged(self):
        grid = ParameterGrid({"x": [1]})
        _, table = run_sweep(
            "demo",
            grid,
            lambda seed, parameters: {"sum": float(parameters["x"] + parameters["offset"])},
            replications=1,
            seed=0,
            base_parameters={"offset": 10},
        )
        assert table.column("sum") == [11.0]

    def test_distinct_seeds_per_point(self):
        grid = ParameterGrid({"x": [1, 2]})
        results, _ = run_sweep(
            "demo",
            grid,
            lambda seed, parameters: {"seed": float(seed)},
            replications=1,
            seed=0,
        )
        assert results[0].seeds != results[1].seeds
