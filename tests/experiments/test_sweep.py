"""Tests for parameter sweeps."""

import pytest

from repro.experiments import ParameterGrid, run_sweep


class TestParameterGrid:
    def test_length_is_product(self):
        grid = ParameterGrid({"a": [1, 2], "b": [10, 20, 30]})
        assert len(grid) == 6

    def test_iteration_covers_all_combinations(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y"]})
        points = list(grid)
        assert {"a": 1, "b": "x"} in points
        assert {"a": 2, "b": "y"} in points
        assert len(points) == 4

    def test_iteration_order_last_axis_fastest(self):
        grid = ParameterGrid({"a": [1, 2], "b": [10, 20]})
        points = list(grid)
        assert points[0] == {"a": 1, "b": 10}
        assert points[1] == {"a": 1, "b": 20}

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            ParameterGrid({})

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError):
            ParameterGrid({"a": []})

    def test_generator_axis_materialised_once(self):
        """Regression: a generator axis used to pass validation then yield nothing."""
        grid = ParameterGrid({"a": (value for value in [1, 2, 3]), "b": [10]})
        assert len(grid) == 3
        first_pass = list(grid)
        second_pass = list(grid)
        assert first_pass == second_pass
        assert {"a": 3, "b": 10} in first_pass

    def test_empty_generator_axis_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid({"a": (value for value in [])})

    def test_iterator_axis_materialised_once(self):
        grid = ParameterGrid({"a": iter([1, 2])})
        assert len(grid) == 2
        assert list(grid) == [{"a": 1}, {"a": 2}]


class TestRunSweep:
    def test_table_has_one_row_per_point(self):
        grid = ParameterGrid({"x": [1, 2, 3]})
        results, table = run_sweep(
            "demo",
            grid,
            lambda seed, parameters: {"metric": float(parameters["x"])},
            replications=2,
            seed=0,
        )
        assert len(results) == 3
        assert len(table) == 3
        assert table.column("metric") == [1.0, 2.0, 3.0]

    def test_base_parameters_merged(self):
        grid = ParameterGrid({"x": [1]})
        _, table = run_sweep(
            "demo",
            grid,
            lambda seed, parameters: {"sum": float(parameters["x"] + parameters["offset"])},
            replications=1,
            seed=0,
            base_parameters={"offset": 10},
        )
        assert table.column("sum") == [11.0]

    def test_distinct_seeds_per_point(self):
        grid = ParameterGrid({"x": [1, 2]})
        results, _ = run_sweep(
            "demo",
            grid,
            lambda seed, parameters: {"seed": float(seed)},
            replications=1,
            seed=0,
        )
        assert results[0].seeds != results[1].seeds


class TestGridBatchedSweep:
    def _make_grid_function(self, transform=None):
        from repro.experiments import grid_batched_replication

        calls = []

        @grid_batched_replication
        def replication(seed_blocks, points):
            calls.append((seed_blocks, points))
            blocks = [
                [{"metric": float(point["x"]) + seed * 0.0} for seed in block]
                for block, point in zip(seed_blocks, points)
            ]
            return transform(blocks) if transform else blocks

        return replication, calls

    def test_called_exactly_once_with_all_points(self):
        from repro.experiments import ParameterGrid, run_sweep

        replication, calls = self._make_grid_function()
        results, table = run_sweep(
            "grid", ParameterGrid({"x": [1, 2, 3]}), replication, replications=2, seed=0
        )
        assert len(calls) == 1
        seed_blocks, points = calls[0]
        assert [point["x"] for point in points] == [1, 2, 3]
        assert all(len(block) == 2 for block in seed_blocks)
        assert len(results) == 3
        assert table.column("metric") == [1.0, 2.0, 3.0]
        # provenance matches the per-point derivation
        assert [result.seeds for result in results] == seed_blocks

    def test_wrong_block_count_rejected(self):
        from repro.experiments import ParameterGrid, run_sweep

        replication, _ = self._make_grid_function(transform=lambda blocks: blocks[:-1])
        with pytest.raises(ValueError, match="metric blocks"):
            run_sweep(
                "grid", ParameterGrid({"x": [1, 2]}), replication, replications=2, seed=0
            )

    def test_wrong_row_count_rejected(self):
        from repro.experiments import ParameterGrid, run_sweep

        replication, _ = self._make_grid_function(
            transform=lambda blocks: [blocks[0][:1]] + blocks[1:]
        )
        with pytest.raises(ValueError, match="metric rows"):
            run_sweep(
                "grid", ParameterGrid({"x": [1, 2]}), replication, replications=2, seed=0
            )

    def test_base_parameters_reach_every_point(self):
        from repro.experiments import ParameterGrid, grid_batched_replication, run_sweep

        @grid_batched_replication
        def replication(seed_blocks, points):
            return [
                [{"sum": float(point["x"] + point["offset"])} for _ in block]
                for block, point in zip(seed_blocks, points)
            ]

        _, table = run_sweep(
            "grid",
            ParameterGrid({"x": [1, 2]}),
            replication,
            replications=1,
            seed=0,
            base_parameters={"offset": 10},
        )
        assert table.column("sum") == [11.0, 12.0]


class TestFlattenGrid:
    def test_row_layout_and_broadcasting(self):
        import numpy as np

        from repro.experiments import flatten_grid

        points = [
            {"qualities": (0.9, 0.1), "N": 50, "T": 6, "beta": 0.6, "mu": 0.05},
            {"qualities": (0.2, 0.8), "N": 70, "T": 6, "beta": 0.7, "mu": 0.1},
        ]
        flat = flatten_grid(points, replications=3)
        assert flat.num_rows == 6
        assert flat.num_options == 2
        assert flat.horizon == 6
        np.testing.assert_array_equal(flat.population_sizes, [50] * 3 + [70] * 3)
        np.testing.assert_allclose(flat.beta, [0.6] * 3 + [0.7] * 3)
        np.testing.assert_allclose(flat.alpha, [0.4] * 3 + [0.3] * 3)
        np.testing.assert_allclose(flat.mu, [0.05] * 3 + [0.1] * 3)
        np.testing.assert_array_equal(flat.qualities[:3], np.tile([0.9, 0.1], (3, 1)))

    def test_equal_sizes_collapse_to_int(self):
        from repro.experiments import flatten_grid

        points = [
            {"qualities": (0.9, 0.1), "N": 50, "T": 6},
            {"qualities": (0.2, 0.8), "N": 50, "T": 6},
        ]
        flat = flatten_grid(points, replications=2)
        assert isinstance(flat.population_sizes, int)
        assert flat.population_sizes == 50

    def test_default_mu_derives_from_each_rows_beta(self):
        from repro.experiments import flatten_grid

        points = [
            {"qualities": (0.9, 0.1), "N": 50, "T": 6, "beta": 0.6},
            {"qualities": (0.9, 0.1), "N": 50, "T": 6, "beta": 0.8},
        ]
        flat = flatten_grid(points, replications=1)
        assert flat.mu[0] < flat.mu[1]

    def test_missing_required_key_raises(self):
        from repro.experiments import flatten_grid

        with pytest.raises(KeyError, match="qualities"):
            flatten_grid([{"N": 50, "T": 6}], replications=1)

    def test_mismatched_option_counts_rejected(self):
        from repro.experiments import flatten_grid

        points = [
            {"qualities": (0.9, 0.1), "N": 50, "T": 6},
            {"qualities": (0.9, 0.1, 0.2), "N": 50, "T": 6},
        ]
        with pytest.raises(ValueError, match="options"):
            flatten_grid(points, replications=1)
