"""Tests for the Markdown report generator."""

import pytest

from repro.experiments import ResultTable, write_csv
from repro.experiments.report import (
    collect_result_tables,
    generate_report,
    table_to_markdown,
)


@pytest.fixture
def results_dir(tmp_path):
    write_csv(
        ResultTable([{"beta": 0.6, "measured_regret": 0.1, "within_bound": True}]),
        tmp_path / "E1_infinite_regret.csv",
    )
    write_csv(
        ResultTable([{"scenario": "perfect", "regret": 0.05}]),
        tmp_path / "E10_distributed_protocol.csv",
    )
    write_csv(
        ResultTable([{"custom": 1}]),
        tmp_path / "extra_results.csv",
    )
    return tmp_path


class TestTableToMarkdown:
    def test_renders_header_and_rows(self):
        table = ResultTable([{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}])
        markdown = table_to_markdown(table)
        lines = markdown.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    def test_booleans_rendered_as_yes_no(self):
        table = ResultTable([{"ok": True}, {"ok": False}])
        markdown = table_to_markdown(table)
        assert "yes" in markdown and "no" in markdown

    def test_empty_table(self):
        assert "empty" in table_to_markdown(ResultTable())

    def test_missing_cells_rendered_empty(self):
        table = ResultTable([{"a": 1}, {"a": 2, "b": 3}])
        markdown = table_to_markdown(table)
        first_data_row = markdown.splitlines()[2]
        # The missing "b" cell of the first row renders as an empty cell.
        assert first_data_row == "| 1 |  |"


class TestCollectResultTables:
    def test_loads_all_csvs(self, results_dir):
        tables = collect_result_tables(results_dir)
        assert set(tables) == {"E1_infinite_regret", "E10_distributed_protocol", "extra_results"}
        assert len(tables["E1_infinite_regret"]) == 1

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_result_tables(tmp_path / "absent")


class TestGenerateReport:
    def test_contains_titles_in_numeric_order(self, results_dir):
        report = generate_report(results_dir)
        e1 = report.index("E1 — Theorem 4.3")
        e10 = report.index("E10 — message-passing protocol")
        extra = report.index("extra_results")
        assert e1 < e10 < extra

    def test_writes_output_file(self, results_dir, tmp_path):
        target = tmp_path / "out" / "report.md"
        report = generate_report(results_dir, output_path=target)
        assert target.exists()
        assert target.read_text() == report

    def test_empty_directory_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError):
            generate_report(empty)

    def test_custom_title(self, results_dir):
        report = generate_report(results_dir, title="My custom run")
        assert report.startswith("# My custom run")
