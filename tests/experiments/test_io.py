"""Tests for CSV result IO."""

import pytest

from repro.experiments import ResultTable, read_csv, write_csv


class TestCsvRoundTrip:
    def test_round_trip_preserves_values(self, tmp_path):
        table = ResultTable(
            [
                {"name": "a", "regret": 0.125, "count": 3, "ok": True},
                {"name": "b", "regret": 0.5, "count": 7, "ok": False},
            ]
        )
        path = write_csv(table, tmp_path / "results.csv")
        loaded = read_csv(path)
        assert len(loaded) == 2
        assert loaded.column("regret") == [0.125, 0.5]
        assert loaded.column("count") == [3, 7]
        assert loaded.column("ok") == [True, False]
        assert loaded.column("name") == ["a", "b"]

    def test_missing_cells_dropped_on_read(self, tmp_path):
        table = ResultTable([{"a": 1}, {"a": 2, "b": 3}])
        path = write_csv(table, tmp_path / "sparse.csv")
        loaded = read_csv(path)
        assert "b" not in loaded.rows[0]
        assert loaded.rows[1]["b"] == 3

    def test_creates_parent_directories(self, tmp_path):
        table = ResultTable([{"a": 1}])
        path = write_csv(table, tmp_path / "nested" / "dir" / "out.csv")
        assert path.exists()

    def test_write_empty_table_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(ResultTable(), tmp_path / "empty.csv")

    def test_read_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_csv(tmp_path / "absent.csv")

    def test_empty_string_cell_reads_back_as_absent(self, tmp_path):
        # The documented round-trip asymmetry: an empty *string* value is
        # indistinguishable from a missing cell on disk, so it is dropped.
        table = ResultTable([{"a": "", "b": 1}])
        loaded = read_csv(write_csv(table, tmp_path / "empty_cell.csv"))
        assert "a" not in loaded.rows[0]
        assert loaded.rows[0]["b"] == 1


class TestAppendMode:
    def test_append_accumulates_rows(self, tmp_path):
        path = tmp_path / "shards.csv"
        write_csv(ResultTable([{"shard": 0, "regret": 0.25}]), path)
        write_csv(ResultTable([{"shard": 1, "regret": 0.5}]), path, append=True)
        write_csv(ResultTable([{"shard": 2, "regret": 0.75}]), path, append=True)
        loaded = read_csv(path)
        assert loaded.column("shard") == [0, 1, 2]
        assert loaded.column("regret") == [0.25, 0.5, 0.75]

    def test_append_to_missing_file_writes_header(self, tmp_path):
        path = tmp_path / "fresh.csv"
        write_csv(ResultTable([{"a": 1}]), path, append=True)
        assert read_csv(path).column("a") == [1]

    def test_append_with_sparse_rows_uses_existing_header(self, tmp_path):
        path = tmp_path / "sparse.csv"
        write_csv(ResultTable([{"a": 1, "b": 2}]), path)
        write_csv(ResultTable([{"a": 3}]), path, append=True)
        loaded = read_csv(path)
        assert loaded.rows[1] == {"a": 3}

    def test_append_with_new_column_rejected(self, tmp_path):
        path = tmp_path / "strict.csv"
        write_csv(ResultTable([{"a": 1}]), path)
        with pytest.raises(ValueError, match="surprise"):
            write_csv(ResultTable([{"a": 2, "surprise": 9}]), path, append=True)

    def test_plain_write_still_overwrites(self, tmp_path):
        path = tmp_path / "overwrite.csv"
        write_csv(ResultTable([{"a": 1}, {"a": 2}]), path)
        write_csv(ResultTable([{"a": 3}]), path)
        assert read_csv(path).column("a") == [3]


class TestStrictCellParsing:
    """Regression: string cells that Python's int()/float() happen to accept.

    ``int``/``float`` take underscore separators, surrounding whitespace and
    inf/nan spellings, so the old best-effort parser silently turned
    string-valued columns into numbers on read.
    """

    @pytest.mark.parametrize(
        "value",
        ["1_000", " 7 ", "7 ", " 7", "inf", "-inf", "nan", "Infinity", "NaN",
         "1_0.5", "0x10", "1e", "true", "false", "TRUE"],
    )
    def test_stringish_cells_round_trip_as_strings(self, value, tmp_path):
        path = write_csv(ResultTable([{"label": value}]), tmp_path / "strings.csv")
        assert read_csv(path).column("label") == [value]

    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("12", 12),
            ("-3", -3),
            ("+4", 4),
            ("0.5", 0.5),
            ("-0.5", -0.5),
            (".5", 0.5),
            ("2.", 2.0),
            ("1e5", 1e5),
            ("1.5E-3", 1.5e-3),
            ("True", True),
            ("False", False),
        ],
    )
    def test_numeric_and_bool_spellings_still_parse(self, text, expected, tmp_path):
        path = tmp_path / "typed.csv"
        path.write_text(f"cell\n{text}\n")
        [row] = read_csv(path).rows
        assert row["cell"] == expected
        assert type(row["cell"]) is type(expected)

    def test_mixed_column_preserves_per_cell_types(self, tmp_path):
        table = ResultTable(
            [{"cell": "1_000"}, {"cell": 1000}, {"cell": "inf"}, {"cell": 2.5}]
        )
        loaded = read_csv(write_csv(table, tmp_path / "mixed.csv"))
        assert loaded.column("cell") == ["1_000", 1000, "inf", 2.5]
