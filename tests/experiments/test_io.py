"""Tests for CSV result IO."""

import pytest

from repro.experiments import ResultTable, read_csv, write_csv


class TestCsvRoundTrip:
    def test_round_trip_preserves_values(self, tmp_path):
        table = ResultTable(
            [
                {"name": "a", "regret": 0.125, "count": 3, "ok": True},
                {"name": "b", "regret": 0.5, "count": 7, "ok": False},
            ]
        )
        path = write_csv(table, tmp_path / "results.csv")
        loaded = read_csv(path)
        assert len(loaded) == 2
        assert loaded.column("regret") == [0.125, 0.5]
        assert loaded.column("count") == [3, 7]
        assert loaded.column("ok") == [True, False]
        assert loaded.column("name") == ["a", "b"]

    def test_missing_cells_dropped_on_read(self, tmp_path):
        table = ResultTable([{"a": 1}, {"a": 2, "b": 3}])
        path = write_csv(table, tmp_path / "sparse.csv")
        loaded = read_csv(path)
        assert "b" not in loaded.rows[0]
        assert loaded.rows[1]["b"] == 3

    def test_creates_parent_directories(self, tmp_path):
        table = ResultTable([{"a": 1}])
        path = write_csv(table, tmp_path / "nested" / "dir" / "out.csv")
        assert path.exists()

    def test_write_empty_table_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(ResultTable(), tmp_path / "empty.csv")

    def test_read_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_csv(tmp_path / "absent.csv")
