"""Tests for the protocol replication functions and their engine registry."""

import numpy as np
import pytest

from repro.experiments import (
    PROTOCOL_ENGINES,
    PROTOCOL_REPLICATIONS,
    ExperimentConfig,
    ParameterGrid,
    protocol_batched_replication,
    protocol_point_replication,
    protocol_vectorized_replication,
    run_replications,
    run_sweep,
)

BASE = {
    "qualities": (0.85, 0.45),
    "N": 60,
    "T": 15,
    "beta": 0.65,
    "mu": 0.05,
}


class TestRegistry:
    def test_every_engine_registered(self):
        assert set(PROTOCOL_ENGINES) == set(PROTOCOL_REPLICATIONS)
        assert PROTOCOL_REPLICATIONS["loop"] is protocol_point_replication
        assert PROTOCOL_REPLICATIONS["vectorized"] is protocol_vectorized_replication
        assert PROTOCOL_REPLICATIONS["batched"] is protocol_batched_replication

    def test_batched_is_marked_for_the_fast_path(self):
        assert getattr(protocol_batched_replication, "batched_replications", False)
        assert not getattr(protocol_point_replication, "batched_replications", False)


class TestReplicationFunctions:
    @pytest.mark.parametrize("engine", PROTOCOL_ENGINES)
    def test_metrics_shared_across_engines(self, engine):
        config = ExperimentConfig(
            name=f"protocol-{engine}",
            parameters=dict(BASE, loss=0.2),
            replications=3,
            seed=0,
        )
        result = run_replications(config, PROTOCOL_REPLICATIONS[engine])
        assert result.metric_names() == [
            "alive_fraction",
            "best_option_share",
            "regret",
        ]
        shares = result.metric_values("best_option_share")
        assert np.all(shares >= 0) and np.all(shares <= 1)
        assert np.all(result.metric_values("alive_fraction") == 1.0)

    def test_missing_required_parameters_raise(self):
        with pytest.raises(KeyError):
            protocol_point_replication(0, {"qualities": (0.8, 0.4), "N": 10})
        with pytest.raises(KeyError):
            protocol_vectorized_replication(0, {"N": 10, "T": 5})

    def test_mu_defaults_to_the_theorem_maximum(self):
        # No mu given: both per-seed engines derive the same default, so the
        # point is well-defined on every engine.
        parameters = {"qualities": (0.8, 0.4), "N": 30, "T": 5, "beta": 0.65}
        row = protocol_vectorized_replication(0, parameters)
        assert set(row) == {"regret", "best_option_share", "alive_fraction"}

    @pytest.mark.parametrize(
        "function",
        [protocol_vectorized_replication, protocol_batched_replication],
        ids=["vectorized", "batched"],
    )
    def test_vectorised_engines_reject_delay(self, function):
        parameters = dict(BASE, delay=0.1)
        with pytest.raises(ValueError, match="delay"):
            if getattr(function, "batched_replications", False):
                function([0, 1], parameters)
            else:
                function(0, parameters)

    def test_loop_engine_accepts_delay(self):
        row = protocol_point_replication(0, dict(BASE, delay=0.2))
        assert 0 <= row["best_option_share"] <= 1

    def test_crash_parameters_reduce_alive_fraction(self):
        parameters = dict(BASE, mass_crash_round=5, mass_crash_fraction=0.4)
        for engine in PROTOCOL_ENGINES:
            config = ExperimentConfig(
                name=f"crash-{engine}", parameters=dict(parameters), replications=2, seed=1
            )
            result = run_replications(config, PROTOCOL_REPLICATIONS[engine])
            # alive_fraction is read at the start of the final round, after
            # the scheduled 40% mass failure.
            assert np.all(result.metric_values("alive_fraction") <= 0.65)


class TestSweepIntegration:
    def test_loss_crash_grid_sweeps_on_the_batched_engine(self):
        grid = ParameterGrid({"loss": [0.0, 0.3], "crash": [0.0, 0.02]})
        _, table = run_sweep(
            "protocol-grid",
            grid,
            protocol_batched_replication,
            replications=3,
            seed=2,
            base_parameters=dict(BASE),
        )
        assert len(table) == 4
        losses = table.column("loss")
        assert sorted(set(losses)) == [0.0, 0.3]
        for row in table.rows:
            assert 0 <= row["best_option_share"] <= 1
            if row["crash"] > 0:
                assert row["alive_fraction"] < 1.0
