"""Tests for the replication runner (per-seed loop and batched fast path)."""

import pytest

from repro.experiments import ExperimentConfig, batched_replication, run_replications


def simple_replication(seed, parameters):
    return {"value": float(seed % 10), "doubled": 2.0 * (seed % 10)}


@batched_replication
def simple_batched_replication(seeds, parameters):
    return [{"value": float(seed % 10), "doubled": 2.0 * (seed % 10)} for seed in seeds]


class TestRunReplications:
    def test_number_of_replications(self):
        config = ExperimentConfig(name="demo", replications=4, seed=1)
        result = run_replications(config, simple_replication)
        assert len(result.metrics) == 4
        assert len(result.seeds) == 4

    def test_deterministic_given_seed(self):
        config = ExperimentConfig(name="demo", replications=3, seed=5)
        first = run_replications(config, simple_replication)
        second = run_replications(config, simple_replication)
        assert first.seeds == second.seeds
        assert first.metrics == second.metrics

    def test_metric_values_and_names(self):
        config = ExperimentConfig(name="demo", replications=3, seed=2)
        result = run_replications(config, simple_replication)
        assert result.metric_names() == ["doubled", "value"]
        assert result.metric_values("value").shape == (3,)

    def test_missing_metric_raises(self):
        config = ExperimentConfig(name="demo", replications=2, seed=0)
        result = run_replications(config, simple_replication)
        with pytest.raises(KeyError):
            result.metric_values("absent")

    def test_summarize(self):
        config = ExperimentConfig(name="demo", replications=3, seed=0)
        result = run_replications(config, simple_replication)
        summary = result.summarize("value")
        assert summary.replications == 3

    def test_summary_row_includes_parameters(self):
        config = ExperimentConfig(
            name="demo", parameters={"beta": 0.6}, replications=2, seed=0
        )
        result = run_replications(config, simple_replication)
        row = result.summary_row()
        assert row["beta"] == 0.6
        assert "value" in row

    def test_parameters_passed_to_replication(self):
        seen = []

        def replication(seed, parameters):
            seen.append(parameters)
            return {"ok": 1.0}

        config = ExperimentConfig(name="demo", parameters={"x": 3}, replications=2, seed=0)
        run_replications(config, replication)
        assert all(parameters == {"x": 3} for parameters in seen)

    def test_rejects_bad_replication_output(self):
        config = ExperimentConfig(name="demo", replications=1, seed=0)
        with pytest.raises(ValueError):
            run_replications(config, lambda seed, parameters: {})
        with pytest.raises(ValueError):
            run_replications(config, lambda seed, parameters: 3.0)


class TestBatchedFastPath:
    def test_batched_function_called_once_with_all_seeds(self):
        calls = []

        @batched_replication
        def replication(seeds, parameters):
            calls.append(list(seeds))
            return [{"ok": 1.0} for _ in seeds]

        config = ExperimentConfig(name="demo", replications=5, seed=3)
        result = run_replications(config, replication)
        assert len(calls) == 1
        assert calls[0] == result.seeds
        assert len(result.metrics) == 5

    def test_batched_matches_loop_for_seed_pure_functions(self):
        """A metrics function of the seed alone gives identical results either way."""
        config = ExperimentConfig(name="demo", replications=6, seed=11)
        loop = run_replications(config, simple_replication)
        batched = run_replications(config, simple_batched_replication)
        assert loop.seeds == batched.seeds
        assert loop.metrics == batched.metrics

    def test_batched_row_count_mismatch_rejected(self):
        @batched_replication
        def replication(seeds, parameters):
            return [{"ok": 1.0}]

        config = ExperimentConfig(name="demo", replications=3, seed=0)
        with pytest.raises(ValueError, match="metric rows"):
            run_replications(config, replication)

    def test_batched_rows_validated(self):
        @batched_replication
        def replication(seeds, parameters):
            return [{} for _ in seeds]

        config = ExperimentConfig(name="demo", replications=2, seed=0)
        with pytest.raises(ValueError):
            run_replications(config, replication)

    def test_batched_receives_parameters(self):
        seen = []

        @batched_replication
        def replication(seeds, parameters):
            seen.append(parameters)
            return [{"ok": 1.0} for _ in seeds]

        config = ExperimentConfig(name="demo", parameters={"x": 3}, replications=2, seed=0)
        run_replications(config, replication)
        assert seen == [{"x": 3}]
