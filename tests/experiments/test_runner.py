"""Tests for the replication runner."""

import pytest

from repro.experiments import ExperimentConfig, run_replications


def simple_replication(seed, parameters):
    return {"value": float(seed % 10), "doubled": 2.0 * (seed % 10)}


class TestRunReplications:
    def test_number_of_replications(self):
        config = ExperimentConfig(name="demo", replications=4, seed=1)
        result = run_replications(config, simple_replication)
        assert len(result.metrics) == 4
        assert len(result.seeds) == 4

    def test_deterministic_given_seed(self):
        config = ExperimentConfig(name="demo", replications=3, seed=5)
        first = run_replications(config, simple_replication)
        second = run_replications(config, simple_replication)
        assert first.seeds == second.seeds
        assert first.metrics == second.metrics

    def test_metric_values_and_names(self):
        config = ExperimentConfig(name="demo", replications=3, seed=2)
        result = run_replications(config, simple_replication)
        assert result.metric_names() == ["doubled", "value"]
        assert result.metric_values("value").shape == (3,)

    def test_missing_metric_raises(self):
        config = ExperimentConfig(name="demo", replications=2, seed=0)
        result = run_replications(config, simple_replication)
        with pytest.raises(KeyError):
            result.metric_values("absent")

    def test_summarize(self):
        config = ExperimentConfig(name="demo", replications=3, seed=0)
        result = run_replications(config, simple_replication)
        summary = result.summarize("value")
        assert summary.replications == 3

    def test_summary_row_includes_parameters(self):
        config = ExperimentConfig(
            name="demo", parameters={"beta": 0.6}, replications=2, seed=0
        )
        result = run_replications(config, simple_replication)
        row = result.summary_row()
        assert row["beta"] == 0.6
        assert "value" in row

    def test_parameters_passed_to_replication(self):
        seen = []

        def replication(seed, parameters):
            seen.append(parameters)
            return {"ok": 1.0}

        config = ExperimentConfig(name="demo", parameters={"x": 3}, replications=2, seed=0)
        run_replications(config, replication)
        assert all(parameters == {"x": 3} for parameters in seen)

    def test_rejects_bad_replication_output(self):
        config = ExperimentConfig(name="demo", replications=1, seed=0)
        with pytest.raises(ValueError):
            run_replications(config, lambda seed, parameters: {})
        with pytest.raises(ValueError):
            run_replications(config, lambda seed, parameters: 3.0)
