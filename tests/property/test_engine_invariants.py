"""Property tests shared by all three simulation engines.

Every engine — the sequential vectorised :class:`FinitePopulationDynamics`,
the faithful :class:`AgentBasedDynamics`, and the replicate-axis
:class:`BatchedDynamics` — simulates the same two-stage process, so the same
invariants must hold for each:

* per-(replicate-)step counts are non-negative and sum to at most ``N``
  (the *row's own* ``N`` in the per-row-parameterised sweep mode);
* the popularity distribution always lies on the probability simplex;
* scalar parameters and all-equal per-row parameter arrays are the *same*
  dynamics, bit for bit;
* :func:`run_replications` / :func:`run_sweep` outputs are a pure function of
  the config seed, on the per-seed loop, the per-point batched path, and the
  whole-grid batched path — and a flattened sweep row is bit-reproducible by
  a standalone :class:`BatchedDynamics` launch built from the same seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import Population
from repro.core.adoption import RowwiseAdoptionRule, SymmetricAdoptionRule
from repro.core.batched import BatchedDynamics, simulate_batched_population
from repro.core.dynamics import (
    AgentBasedDynamics,
    FinitePopulationDynamics,
    simulate_finite_population,
)
from repro.core.regret import expected_regret
from repro.core.sampling import MixtureSampling, default_exploration_rate
from repro.environments import BernoulliEnvironment, RowwiseBernoulliEnvironment
from repro.experiments import (
    ExperimentConfig,
    ParameterGrid,
    batched_replication,
    dynamics_grid_replication,
    dynamics_point_replication,
    run_replications,
    run_sweep,
)
from repro.utils.rng import seeds_for_replications

ENGINES = ("finite", "agent", "batched")

BATCH_REPLICATES = 3


def _run_engine(engine, population, options, beta, mu, seed, steps):
    """Run ``steps`` steps of ``engine`` and return the visited (counts, popularity) rows.

    For the batched engine every replicate contributes one row per step, so
    the invariant assertions below cover the whole batch.
    """
    reward_rng = np.random.default_rng(seed + 1)
    rewards = [reward_rng.integers(0, 2, size=options) for _ in range(steps)]
    rows = []
    if engine == "finite":
        dynamics = FinitePopulationDynamics(
            population,
            options,
            adoption_rule=SymmetricAdoptionRule(beta),
            sampling_rule=MixtureSampling(mu),
            rng=seed,
        )
        for reward in rewards:
            state = dynamics.step(reward)
            rows.append((state.counts, state.popularity()))
    elif engine == "agent":
        group = Population.homogeneous(population, options, beta=beta, rng=seed)
        dynamics = AgentBasedDynamics(group, exploration_rate=mu, rng=seed + 2)
        for reward in rewards:
            state = dynamics.step(reward)
            rows.append((state.counts, state.popularity()))
    elif engine == "batched":
        dynamics = BatchedDynamics(
            BATCH_REPLICATES,
            population,
            options,
            adoption_rule=SymmetricAdoptionRule(beta),
            sampling_rule=MixtureSampling(mu),
            rng=seed,
        )
        for reward in rewards:
            state = dynamics.step(reward)
            popularity = state.popularity()
            for replicate in range(BATCH_REPLICATES):
                rows.append((state.counts[replicate], popularity[replicate]))
    else:  # pragma: no cover - parametrization guard
        raise ValueError(engine)
    return rows


class TestEngineInvariants:
    @pytest.mark.parametrize("engine", ENGINES)
    @settings(max_examples=15, deadline=None)
    @given(
        population=st.integers(min_value=1, max_value=80),
        options=st.integers(min_value=1, max_value=5),
        beta=st.floats(min_value=0.5, max_value=0.95, allow_nan=False),
        mu=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=10_000),
        steps=st.integers(min_value=1, max_value=5),
    )
    def test_counts_bounded_and_popularity_on_simplex(
        self, engine, population, options, beta, mu, seed, steps
    ):
        for counts, popularity in _run_engine(
            engine, population, options, beta, mu, seed, steps
        ):
            assert np.all(counts >= 0)
            assert 0 <= counts.sum() <= population
            assert np.all(popularity >= 0.0)
            assert abs(popularity.sum() - 1.0) < 1e-9


class TestRowwiseParameterInvariants:
    """The sweep-axis mode: per-row ``(alpha, beta, mu, N)`` arrays."""

    @settings(max_examples=15, deadline=None)
    @given(
        populations=st.lists(st.integers(min_value=1, max_value=80), min_size=1, max_size=4),
        options=st.integers(min_value=1, max_value=4),
        betas=st.lists(
            st.floats(min_value=0.5, max_value=0.95, allow_nan=False),
            min_size=1,
            max_size=4,
        ),
        mu=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=10_000),
        steps=st.integers(min_value=1, max_value=4),
    )
    def test_per_row_counts_bounded_by_each_rows_population(
        self, populations, options, betas, mu, seed, steps
    ):
        """Every row respects its *own* population size and simplex."""
        rows = max(len(populations), len(betas))
        populations = np.resize(np.asarray(populations, dtype=np.int64), rows)
        betas = np.resize(np.asarray(betas), rows)
        mus = np.resize(np.asarray([mu, min(1.0, mu + 0.3)]), rows)
        dynamics = BatchedDynamics(
            rows,
            populations,
            options,
            adoption_rule=RowwiseAdoptionRule.symmetric(betas),
            sampling_rule=MixtureSampling(mus),
            rng=seed,
        )
        reward_rng = np.random.default_rng(seed + 1)
        for _ in range(steps):
            state = dynamics.step(reward_rng.integers(0, 2, size=(rows, options)))
            assert np.all(state.counts >= 0)
            assert np.all(state.counts.sum(axis=1) <= populations)
            popularity = state.popularity()
            assert np.all(popularity >= 0.0)
            assert np.allclose(popularity.sum(axis=1), 1.0, atol=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(
        population=st.integers(min_value=1, max_value=80),
        options=st.integers(min_value=1, max_value=4),
        beta=st.floats(min_value=0.5, max_value=0.95, allow_nan=False),
        mu=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=10_000),
        steps=st.integers(min_value=1, max_value=4),
    )
    def test_scalar_and_all_equal_arrays_are_bit_identical(
        self, population, options, beta, mu, seed, steps
    ):
        """Broadcasting is exact: all-equal (R,) arrays == scalars, same stream."""
        rows = 3
        scalar = BatchedDynamics(
            rows,
            population,
            options,
            adoption_rule=SymmetricAdoptionRule(beta),
            sampling_rule=MixtureSampling(mu),
            rng=seed,
        )
        rowwise = BatchedDynamics(
            rows,
            np.full(rows, population),
            options,
            adoption_rule=RowwiseAdoptionRule.symmetric(np.full(rows, beta)),
            sampling_rule=MixtureSampling(np.full(rows, mu)),
            rng=seed,
        )
        reward_rng = np.random.default_rng(seed + 1)
        for _ in range(steps):
            rewards = reward_rng.integers(0, 2, size=(rows, options))
            state_scalar = scalar.step(rewards)
            state_rowwise = rowwise.step(rewards)
            assert np.array_equal(state_scalar.counts, state_rowwise.counts)

    def test_mixed_scalar_array_broadcasting(self):
        """A scalar alpha against an array beta broadcasts to every row."""
        rule = RowwiseAdoptionRule(0.3, np.array([0.6, 0.7, 0.8]))
        assert np.array_equal(rule.alpha, [0.3, 0.3, 0.3])
        probabilities = rule.adopt_probabilities(np.array([[1, 0], [0, 1], [1, 1]]))
        assert np.array_equal(probabilities, [[0.6, 0.3], [0.3, 0.7], [0.8, 0.8]])
        # per-row defaults derive from each row's own delta
        rates = default_exploration_rate(rule)
        assert rates.shape == (3,)
        assert rates[0] < rates[1] < rates[2]

    def test_rowwise_rule_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BatchedDynamics(
                4,
                50,
                2,
                adoption_rule=RowwiseAdoptionRule.symmetric(np.array([0.6, 0.7])),
            )
        with pytest.raises(ValueError):
            BatchedDynamics(
                4,
                50,
                2,
                sampling_rule=MixtureSampling(np.array([0.1, 0.2])),
            )
        with pytest.raises(ValueError):
            BatchedDynamics(4, np.array([50, 60]), 2)


QUALITIES = [0.85, 0.45]


def _loop_replication(seed, parameters):
    env = BernoulliEnvironment(QUALITIES, rng=seed)
    trajectory = simulate_finite_population(
        env, parameters["N"], parameters["T"], beta=0.65, mu=0.05, rng=seed + 1
    )
    return {"regret": expected_regret(trajectory.popularity_matrix(), QUALITIES)}


@batched_replication
def _batched_replication_fn(seeds, parameters):
    generator = np.random.default_rng(seeds)
    env = BernoulliEnvironment(QUALITIES, rng=generator)
    trajectory = simulate_batched_population(
        env,
        parameters["N"],
        parameters["T"],
        len(seeds),
        beta=0.65,
        mu=0.05,
        rng=generator,
    )
    return [{"regret": float(value)} for value in trajectory.expected_regret(QUALITIES)]


class TestSeededDeterminism:
    @pytest.mark.parametrize(
        "replication", [_loop_replication, _batched_replication_fn], ids=["loop", "batched"]
    )
    def test_run_replications_deterministic(self, replication):
        config = ExperimentConfig(
            name="determinism", parameters={"N": 120, "T": 12}, replications=6, seed=9
        )
        first = run_replications(config, replication)
        second = run_replications(config, replication)
        assert first.seeds == second.seeds
        assert first.metrics == second.metrics

    @pytest.mark.parametrize(
        "replication", [_loop_replication, _batched_replication_fn], ids=["loop", "batched"]
    )
    def test_run_sweep_deterministic(self, replication):
        grid = ParameterGrid({"N": [60, 120]})
        first_results, first_table = run_sweep(
            "determinism",
            grid,
            replication,
            replications=4,
            seed=5,
            base_parameters={"T": 10},
        )
        second_results, second_table = run_sweep(
            "determinism",
            grid,
            replication,
            replications=4,
            seed=5,
            base_parameters={"T": 10},
        )
        assert [result.metrics for result in first_results] == [
            result.metrics for result in second_results
        ]
        assert first_table.rows == second_table.rows

    def test_different_seeds_change_metrics(self):
        base = ExperimentConfig(
            name="determinism", parameters={"N": 120, "T": 12}, replications=4, seed=1
        )
        other = ExperimentConfig(
            name="determinism", parameters={"N": 120, "T": 12}, replications=4, seed=2
        )
        assert (
            run_replications(base, _batched_replication_fn).metrics
            != run_replications(other, _batched_replication_fn).metrics
        )


SWEEP_GRID_AXES = {"N": (60, 90), "beta": (0.6, 0.75)}
SWEEP_BASE = {"qualities": (0.85, 0.45), "T": 8, "mu": 0.05}


class TestSweepAxisBatching:
    """The whole-grid batched path of ``run_sweep``."""

    def test_grid_engine_deterministic_and_seed_compatible_with_loop(self):
        """Grid runs are pure functions of the seed, with loop-identical seed lists."""
        grid = ParameterGrid(SWEEP_GRID_AXES)
        first_results, first_table = run_sweep(
            "grid", grid, dynamics_grid_replication,
            replications=4, seed=5, base_parameters=SWEEP_BASE,
        )
        second_results, second_table = run_sweep(
            "grid", grid, dynamics_grid_replication,
            replications=4, seed=5, base_parameters=SWEEP_BASE,
        )
        loop_results, _ = run_sweep(
            "grid", grid, dynamics_point_replication,
            replications=4, seed=5, base_parameters=SWEEP_BASE,
        )
        assert [result.metrics for result in first_results] == [
            result.metrics for result in second_results
        ]
        assert first_table.rows == second_table.rows
        # Engine choice never changes an experiment's provenance record.
        assert [result.seeds for result in first_results] == [
            result.seeds for result in loop_results
        ]
        changed_results, _ = run_sweep(
            "grid", grid, dynamics_grid_replication,
            replications=4, seed=6, base_parameters=SWEEP_BASE,
        )
        assert [result.metrics for result in first_results] != [
            result.metrics for result in changed_results
        ]

    def test_grid_rows_bit_match_standalone_batched_run(self):
        """A sweep row is reproducible by a hand-built flattened BatchedDynamics.

        This is the exact-seed guarantee of sweep-axis batching: the harness
        adds nothing to the engine's random stream, so rebuilding the same
        (G*R, m) launch from the same seeds yields the sweep's metrics bit
        for bit.
        """
        grid = ParameterGrid(SWEEP_GRID_AXES)
        replications = 3
        results, _ = run_sweep(
            "exact", grid, dynamics_grid_replication,
            replications=replications, seed=13, base_parameters=SWEEP_BASE,
        )

        # Hand-build the flattened launch (deliberately NOT via flatten_grid,
        # so the test pins the documented construction, not the helper).
        points = list(grid)
        num_rows = len(points) * replications
        seed_blocks = [
            seeds_for_replications(13 + index, replications)
            for index in range(len(points))
        ]
        assert [result.seeds for result in results] == seed_blocks
        flat_seeds = [seed for block in seed_blocks for seed in block]
        qualities = np.tile(np.asarray(SWEEP_BASE["qualities"]), (num_rows, 1))
        betas = np.repeat([point["beta"] for point in points], replications)
        sizes = np.repeat([point["N"] for point in points], replications)

        generator = np.random.default_rng(flat_seeds)
        environment = RowwiseBernoulliEnvironment(qualities, rng=generator)
        dynamics = BatchedDynamics(
            num_replicates=num_rows,
            population_size=sizes,
            num_options=qualities.shape[1],
            adoption_rule=RowwiseAdoptionRule(1.0 - betas, betas),
            sampling_rule=MixtureSampling(np.full(num_rows, SWEEP_BASE["mu"])),
            rng=generator,
        )
        trajectory = dynamics.run(environment, SWEEP_BASE["T"])
        regrets = trajectory.expected_regret(qualities)
        shares = trajectory.best_option_share(qualities.argmax(axis=1))

        for point_index, result in enumerate(results):
            for row in range(replications):
                flat_row = point_index * replications + row
                assert result.metrics[row]["regret"] == float(regrets[flat_row])
                assert result.metrics[row]["best_option_share"] == float(
                    shares[flat_row]
                )

    def test_grid_function_rejected_by_run_replications(self):
        config = ExperimentConfig(name="grid", parameters={}, replications=2, seed=0)
        with pytest.raises(TypeError):
            run_replications(config, dynamics_grid_replication)

    def test_mismatched_horizons_rejected(self):
        grid = ParameterGrid({"T": (5, 6)})
        with pytest.raises(ValueError, match="horizon"):
            run_sweep(
                "bad", grid, dynamics_grid_replication,
                replications=2, seed=0,
                base_parameters={"qualities": (0.8, 0.4), "N": 50},
            )
