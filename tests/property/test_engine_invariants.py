"""Property tests shared by all three simulation engines.

Every engine — the sequential vectorised :class:`FinitePopulationDynamics`,
the faithful :class:`AgentBasedDynamics`, and the replicate-axis
:class:`BatchedDynamics` — simulates the same two-stage process, so the same
invariants must hold for each:

* per-(replicate-)step counts are non-negative and sum to at most ``N``;
* the popularity distribution always lies on the probability simplex;
* :func:`run_replications` / :func:`run_sweep` outputs are a pure function of
  the config seed, on both the per-seed loop and the batched fast path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import Population
from repro.core.adoption import SymmetricAdoptionRule
from repro.core.batched import BatchedDynamics, simulate_batched_population
from repro.core.dynamics import (
    AgentBasedDynamics,
    FinitePopulationDynamics,
    simulate_finite_population,
)
from repro.core.regret import expected_regret
from repro.core.sampling import MixtureSampling
from repro.environments import BernoulliEnvironment
from repro.experiments import (
    ExperimentConfig,
    ParameterGrid,
    batched_replication,
    run_replications,
    run_sweep,
)

ENGINES = ("finite", "agent", "batched")

BATCH_REPLICATES = 3


def _run_engine(engine, population, options, beta, mu, seed, steps):
    """Run ``steps`` steps of ``engine`` and return the visited (counts, popularity) rows.

    For the batched engine every replicate contributes one row per step, so
    the invariant assertions below cover the whole batch.
    """
    reward_rng = np.random.default_rng(seed + 1)
    rewards = [reward_rng.integers(0, 2, size=options) for _ in range(steps)]
    rows = []
    if engine == "finite":
        dynamics = FinitePopulationDynamics(
            population,
            options,
            adoption_rule=SymmetricAdoptionRule(beta),
            sampling_rule=MixtureSampling(mu),
            rng=seed,
        )
        for reward in rewards:
            state = dynamics.step(reward)
            rows.append((state.counts, state.popularity()))
    elif engine == "agent":
        group = Population.homogeneous(population, options, beta=beta, rng=seed)
        dynamics = AgentBasedDynamics(group, exploration_rate=mu, rng=seed + 2)
        for reward in rewards:
            state = dynamics.step(reward)
            rows.append((state.counts, state.popularity()))
    elif engine == "batched":
        dynamics = BatchedDynamics(
            BATCH_REPLICATES,
            population,
            options,
            adoption_rule=SymmetricAdoptionRule(beta),
            sampling_rule=MixtureSampling(mu),
            rng=seed,
        )
        for reward in rewards:
            state = dynamics.step(reward)
            popularity = state.popularity()
            for replicate in range(BATCH_REPLICATES):
                rows.append((state.counts[replicate], popularity[replicate]))
    else:  # pragma: no cover - parametrization guard
        raise ValueError(engine)
    return rows


class TestEngineInvariants:
    @pytest.mark.parametrize("engine", ENGINES)
    @settings(max_examples=15, deadline=None)
    @given(
        population=st.integers(min_value=1, max_value=80),
        options=st.integers(min_value=1, max_value=5),
        beta=st.floats(min_value=0.5, max_value=0.95, allow_nan=False),
        mu=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=10_000),
        steps=st.integers(min_value=1, max_value=5),
    )
    def test_counts_bounded_and_popularity_on_simplex(
        self, engine, population, options, beta, mu, seed, steps
    ):
        for counts, popularity in _run_engine(
            engine, population, options, beta, mu, seed, steps
        ):
            assert np.all(counts >= 0)
            assert 0 <= counts.sum() <= population
            assert np.all(popularity >= 0.0)
            assert abs(popularity.sum() - 1.0) < 1e-9


QUALITIES = [0.85, 0.45]


def _loop_replication(seed, parameters):
    env = BernoulliEnvironment(QUALITIES, rng=seed)
    trajectory = simulate_finite_population(
        env, parameters["N"], parameters["T"], beta=0.65, mu=0.05, rng=seed + 1
    )
    return {"regret": expected_regret(trajectory.popularity_matrix(), QUALITIES)}


@batched_replication
def _batched_replication_fn(seeds, parameters):
    generator = np.random.default_rng(seeds)
    env = BernoulliEnvironment(QUALITIES, rng=generator)
    trajectory = simulate_batched_population(
        env,
        parameters["N"],
        parameters["T"],
        len(seeds),
        beta=0.65,
        mu=0.05,
        rng=generator,
    )
    return [{"regret": float(value)} for value in trajectory.expected_regret(QUALITIES)]


class TestSeededDeterminism:
    @pytest.mark.parametrize(
        "replication", [_loop_replication, _batched_replication_fn], ids=["loop", "batched"]
    )
    def test_run_replications_deterministic(self, replication):
        config = ExperimentConfig(
            name="determinism", parameters={"N": 120, "T": 12}, replications=6, seed=9
        )
        first = run_replications(config, replication)
        second = run_replications(config, replication)
        assert first.seeds == second.seeds
        assert first.metrics == second.metrics

    @pytest.mark.parametrize(
        "replication", [_loop_replication, _batched_replication_fn], ids=["loop", "batched"]
    )
    def test_run_sweep_deterministic(self, replication):
        grid = ParameterGrid({"N": [60, 120]})
        first_results, first_table = run_sweep(
            "determinism",
            grid,
            replication,
            replications=4,
            seed=5,
            base_parameters={"T": 10},
        )
        second_results, second_table = run_sweep(
            "determinism",
            grid,
            replication,
            replications=4,
            seed=5,
            base_parameters={"T": 10},
        )
        assert [result.metrics for result in first_results] == [
            result.metrics for result in second_results
        ]
        assert first_table.rows == second_table.rows

    def test_different_seeds_change_metrics(self):
        base = ExperimentConfig(
            name="determinism", parameters={"N": 120, "T": 12}, replications=4, seed=1
        )
        other = ExperimentConfig(
            name="determinism", parameters={"N": 120, "T": 12}, replications=4, seed=2
        )
        assert (
            run_replications(base, _batched_replication_fn).metrics
            != run_replications(other, _batched_replication_fn).metrics
        )
