"""Property tests for the dtype discipline of the batched engines.

The :class:`~repro.backends.Precision` contract: random draws always consume
the generator stream in float64, so ``float32`` changes only what the engines
*store*.  Three families of properties pin that down:

* **bit-identity of the dynamics** — for every batched engine (core, network,
  protocol) the float32 run visits exactly the same count matrices as the
  float64 run from the same seed, merely stored in ``int32``; and the
  explicit ``backend="numpy"``/``precision="float64"`` spelling is
  bit-identical to the implicit default (which the golden fixtures in
  ``tests/integration/test_golden_trajectories.py`` pin in turn);
* **int32 conservation** — narrowed count matrices still conserve the
  population row by row (no silent wrap-around);
* **statistical equivalence of the flattened sweep** — the one place float32
  can perturb the *process* is the rowwise sweep environment, whose stored
  float32 qualities shift Bernoulli thresholds at the 1e-7 level; a KS test
  on per-row regrets and a chi-squared test on pooled terminal counts pin
  that the two precisions remain draws from the same distribution.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import chisquare, ks_2samp

from repro.core.adoption import SymmetricAdoptionRule
from repro.core.batched import BatchedDynamics
from repro.core.sampling import MixtureSampling
from repro.distributed import BatchedProtocol
from repro.environments import BernoulliEnvironment
from repro.experiments.dynamics_sweep import flatten_grid
from repro.network import BatchedNetworkDynamics, SocialNetwork

QUALITIES = [0.8, 0.5]


def _batched_pair(precision, population, options, beta, mu, seed):
    return BatchedDynamics(
        4,
        population,
        options,
        adoption_rule=SymmetricAdoptionRule(beta),
        sampling_rule=MixtureSampling(mu),
        rng=seed,
        precision=precision,
    )


class TestCoreEngineBitIdentity:
    @settings(max_examples=20, deadline=None)
    @given(
        population=st.integers(min_value=1, max_value=120),
        options=st.integers(min_value=1, max_value=5),
        beta=st.floats(min_value=0.5, max_value=0.95, allow_nan=False),
        mu=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=10_000),
        steps=st.integers(min_value=1, max_value=5),
    )
    def test_float32_visits_the_same_counts_and_conserves_n(
        self, population, options, beta, mu, seed, steps
    ):
        default = _batched_pair(None, population, options, beta, mu, seed)
        narrow = _batched_pair("float32", population, options, beta, mu, seed)
        reward_rng = np.random.default_rng(seed + 1)
        for _ in range(steps):
            rewards = reward_rng.integers(0, 2, size=options)
            state_default = default.step(rewards)
            state_narrow = narrow.step(rewards)
            assert state_narrow.counts.dtype == np.int32
            assert state_default.counts.dtype == np.int64
            # Same dynamics, narrower storage.
            np.testing.assert_array_equal(
                state_narrow.counts, state_default.counts
            )
            # int32 narrowing never breaks per-row conservation.
            assert np.all(state_narrow.counts >= 0)
            assert np.all(state_narrow.counts.sum(axis=1) <= population)
            popularity = state_narrow.popularity(
                dtype=narrow.precision.float_dtype
            )
            assert popularity.dtype == np.float32

    def test_explicit_default_spellings_are_the_implicit_default(self):
        implicit = _batched_pair(None, 50, 3, 0.65, 0.05, 9)
        explicit = BatchedDynamics(
            4,
            50,
            3,
            adoption_rule=SymmetricAdoptionRule(0.65),
            sampling_rule=MixtureSampling(0.05),
            rng=9,
            backend="numpy",
            precision="float64",
        )
        environment = BernoulliEnvironment(QUALITIES + [0.5], rng=2)
        rewards = [environment.sample() for _ in range(6)]
        for reward in rewards:
            np.testing.assert_array_equal(
                implicit.step(reward).counts, explicit.step(reward).counts
            )

    def test_float32_trajectory_stores_narrow_tensors(self):
        environment = BernoulliEnvironment(QUALITIES, rng=0)
        dynamics = _batched_pair("float32", 80, 2, 0.65, 0.05, 4)
        trajectory = dynamics.run(environment, 10)
        assert trajectory.popularity_tensor().dtype == np.float32
        assert trajectory.final_state().counts.dtype == np.int32

    def test_int32_engine_refuses_uncountable_populations(self):
        with pytest.raises(OverflowError, match="int32"):
            _batched_pair("float32", int(np.iinfo(np.int32).max) + 1, 2, 0.65, 0.05, 0)


class TestNetworkEngineBitIdentity:
    @pytest.fixture(scope="class")
    def network(self):
        return SocialNetwork.watts_strogatz(
            120, nearest_neighbors=4, rewiring_probability=0.1, rng=0
        )

    @pytest.mark.parametrize("seed", [0, 3])
    def test_float32_matches_default_bit_for_bit(self, network, seed):
        def run(precision):
            environment = BernoulliEnvironment(QUALITIES + [0.5], rng=seed)
            dynamics = BatchedNetworkDynamics(
                network, 3, num_replicates=5, rng=seed + 1, precision=precision
            )
            return dynamics.run(environment, 12)

        default = run(None)
        narrow = run("float32")
        assert narrow.final_state().counts.dtype == np.int32
        np.testing.assert_array_equal(
            narrow.final_state().counts, default.final_state().counts
        )
        assert narrow.popularity_tensor().dtype == np.float32
        np.testing.assert_array_equal(
            narrow.popularity_tensor(),
            default.popularity_tensor().astype(np.float32),
        )


class TestProtocolEngineBitIdentity:
    @pytest.mark.parametrize("seed", [1, 8])
    def test_float32_matches_default_bit_for_bit(self, seed):
        def run(precision):
            environment = BernoulliEnvironment(QUALITIES, rng=seed)
            protocol = BatchedProtocol(
                90,
                2,
                num_replicates=5,
                loss_rate=0.1,
                per_round_crash_probability=0.01,
                rng=seed + 1,
                precision=precision,
            )
            return protocol.run(environment, 15)

        default = run(None)
        narrow = run("float32")
        np.testing.assert_array_equal(narrow.alive_matrix, default.alive_matrix)
        assert narrow.trajectory.popularity_tensor().dtype == np.float32
        np.testing.assert_array_equal(
            narrow.trajectory.popularity_tensor(),
            default.trajectory.popularity_tensor().astype(np.float32),
        )
        # Regret is derived from the float32-stored popularity trajectory,
        # so it agrees to storage rounding, not bit-for-bit.
        np.testing.assert_allclose(narrow.regret(), default.regret(), atol=1e-6)


class TestFlattenedSweepStatisticalEquivalence:
    """The rowwise environment is the one genuinely perturbed float32 path."""

    ROWS = 4 * 300  # 4 grid points x 300 replications

    def _run(self, dtype):
        point = {"qualities": QUALITIES, "N": 60, "T": 15, "beta": 0.65}
        if dtype is not None:
            point = {**point, "dtype": dtype}
        flat = flatten_grid([dict(point) for _ in range(4)], 300)
        dynamics, environment = flat.build(np.random.default_rng(0))
        trajectory = dynamics.run(environment, flat.horizon)
        return (
            trajectory.expected_regret(flat.qualities),
            trajectory.final_state().counts,
        )

    def test_regrets_pass_ks_and_counts_pass_chi_squared(self):
        default_regrets, default_counts = self._run(None)
        narrow_regrets, narrow_counts = self._run("float32")
        assert narrow_counts.dtype == np.int32
        assert default_regrets.shape == narrow_regrets.shape == (self.ROWS,)

        ks = ks_2samp(default_regrets, np.asarray(narrow_regrets, dtype=np.float64))
        assert ks.pvalue >= 0.01, (
            f"float32 regrets diverged (KS={ks.statistic:.4f}, p={ks.pvalue:.4f})"
        )

        pooled_default = default_counts.sum(axis=0, dtype=np.float64)
        pooled_narrow = narrow_counts.sum(axis=0, dtype=np.float64)
        # chisquare needs matching totals; committed populations may differ
        # by a handful of agents, so rescale the expectation.
        expected = pooled_default * pooled_narrow.sum() / pooled_default.sum()
        chi2 = chisquare(pooled_narrow, expected)
        assert chi2.pvalue >= 0.01, (
            f"terminal option counts diverged (chi2={chi2.statistic:.2f}, "
            f"p={chi2.pvalue:.4f})"
        )
