"""Property tests shared by the three distributed-protocol engines.

Every protocol engine — the message-passing loop
:class:`DistributedLearningProtocol`, the array-ops
:class:`VectorizedProtocol`, and the replicate-axis
:class:`BatchedProtocol` — simulates the same lossy round law, so the same
invariants must hold for each:

* the alive mask is monotone: crash-stop failures only ever shrink it;
* messages are conserved under loss: every sent message is delivered,
  dropped, or (loop engine with delay) still pending — and the vectorised
  engines never queue across rounds;
* the expected regret (popularity against the true qualities) is
  non-negative, because the pre-round popularity lies on the simplex;
* per-round committed counts never exceed the alive count, and choices stay
  in ``{-1, 0, .., m-1}``;
* :func:`run_replications` outputs are a pure function of the config seed on
  every engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adoption import SymmetricAdoptionRule
from repro.core.regret import expected_regret
from repro.distributed import (
    BatchedProtocol,
    CrashFailureModel,
    DistributedLearningProtocol,
    LossyTransport,
    VectorizedProtocol,
)
from repro.environments import BernoulliEnvironment
from repro.experiments import (
    PROTOCOL_ENGINES,
    PROTOCOL_REPLICATIONS,
    ExperimentConfig,
    run_replications,
)

QUALITIES = (0.8, 0.5)


def _failure_model(crash, mass_round, mass_fraction, seed):
    return CrashFailureModel(
        per_round_crash_probability=crash,
        mass_failure_round=mass_round,
        mass_failure_fraction=mass_fraction,
        rng=seed,
    )


class TestVectorizedInvariants:
    @given(
        num_nodes=st.integers(min_value=1, max_value=60),
        options=st.integers(min_value=1, max_value=4),
        loss=st.floats(min_value=0.0, max_value=1.0),
        crash=st.floats(min_value=0.0, max_value=0.3),
        mu=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_alive_monotone_counts_bounded_messages_conserved(
        self, num_nodes, options, loss, crash, mu, seed
    ):
        protocol = VectorizedProtocol(
            num_nodes,
            options,
            adoption_rule=SymmetricAdoptionRule(0.65),
            exploration_rate=mu,
            loss_rate=loss,
            failure_model=_failure_model(crash, 2, 0.4, seed + 1),
            max_query_attempts=3,
            rng=seed,
        )
        rewards_rng = np.random.default_rng(seed + 2)
        previous_alive = protocol.alive()
        for _ in range(4):
            protocol.run_round(rewards_rng.integers(0, 2, size=options))
            alive = protocol.alive()
            choices = protocol.choices()
            # Crash-stop: nobody comes back.
            assert np.all(alive <= previous_alive)
            previous_alive = alive
            assert np.all(choices >= -1) and np.all(choices < options)
            committed = int((alive & (choices >= 0)).sum())
            assert committed <= protocol.num_alive() <= num_nodes
            popularity = protocol.popularity()
            assert np.all(popularity >= 0)
            assert popularity.sum() == pytest.approx(1.0)
        stats = protocol.transport_stats()
        assert stats["sent"] == stats["delivered"] + stats["dropped"]
        assert stats["delayed"] == 0

    @given(
        num_nodes=st.integers(min_value=2, max_value=40),
        loss=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_expected_regret_non_negative(self, num_nodes, loss, seed):
        env = BernoulliEnvironment(QUALITIES, rng=seed)
        protocol = VectorizedProtocol(
            num_nodes, 2, exploration_rate=0.05, loss_rate=loss, rng=seed + 1
        )
        result = protocol.run(env, 10)
        assert expected_regret(result.popularity_matrix, QUALITIES) >= 0

    def test_full_loss_forces_fallback_everywhere(self):
        """With loss_rate=1 no reply ever arrives: every querier falls back."""
        protocol = VectorizedProtocol(
            50, 2, exploration_rate=0.0, loss_rate=1.0, max_query_attempts=3, rng=0
        )
        protocol.run_round(np.array([1, 0]))
        assert protocol.fallback_explorations == 50
        stats = protocol.transport_stats()
        # Queries are sent (and all dropped); replies are never sent.
        assert stats["sent"] == 50 * 3
        assert stats["dropped"] == stats["sent"]
        assert stats["delivered"] == 0


class TestBatchedInvariants:
    @given(
        num_nodes=st.integers(min_value=1, max_value=40),
        options=st.integers(min_value=1, max_value=4),
        replicates=st.integers(min_value=1, max_value=5),
        loss=st.floats(min_value=0.0, max_value=1.0),
        crash=st.floats(min_value=0.0, max_value=0.3),
        mu=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_alive_monotone_counts_bounded_messages_conserved(
        self, num_nodes, options, replicates, loss, crash, mu, seed
    ):
        protocol = BatchedProtocol(
            num_nodes,
            options,
            num_replicates=replicates,
            adoption_rule=SymmetricAdoptionRule(0.65),
            exploration_rate=mu,
            loss_rate=loss,
            per_round_crash_probability=crash,
            mass_failure_round=2,
            mass_failure_fraction=0.4,
            max_query_attempts=3,
            rng=seed,
        )
        rewards_rng = np.random.default_rng(seed + 2)
        previous_alive = protocol.alive()
        for _ in range(4):
            protocol.run_round(
                rewards_rng.integers(0, 2, size=(replicates, options))
            )
            alive = protocol.alive()
            choices = protocol.choices()
            assert np.all(alive <= previous_alive)
            previous_alive = alive
            assert np.all(choices >= -1) and np.all(choices < options)
            state = protocol.state()
            assert state.counts.shape == (replicates, options)
            assert np.all(state.counts >= 0)
            assert np.all(state.committed <= protocol.alive_counts())
            popularity = state.popularity()
            assert np.all(popularity >= 0)
            np.testing.assert_allclose(popularity.sum(axis=1), 1.0)
        stats = protocol.transport_stats()
        assert stats["sent"] == stats["delivered"] + stats["dropped"]
        assert stats["delayed"] == 0

    @given(
        num_nodes=st.integers(min_value=2, max_value=30),
        replicates=st.integers(min_value=1, max_value=4),
        loss=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_expected_regret_non_negative_per_replicate(
        self, num_nodes, replicates, loss, seed
    ):
        env = BernoulliEnvironment(QUALITIES, rng=seed)
        protocol = BatchedProtocol(
            num_nodes,
            2,
            num_replicates=replicates,
            exploration_rate=0.05,
            loss_rate=loss,
            rng=seed + 1,
        )
        result = protocol.run(env, 8)
        regrets = result.trajectory.expected_regret(np.asarray(QUALITIES))
        assert np.all(regrets >= 0)

    def test_mass_failure_kills_the_scheduled_fraction_per_replicate(self):
        protocol = BatchedProtocol(
            100, 2, num_replicates=6, mass_failure_round=1, mass_failure_fraction=0.3, rng=3
        )
        rewards = np.ones((6, 2), dtype=np.int64)
        protocol.run_round(rewards)  # round 0: nothing scheduled
        assert np.all(protocol.alive_counts() == 100)
        protocol.run_round(rewards)  # round 1: the mass failure
        assert np.all(protocol.alive_counts() == 70)
        protocol.run_round(rewards)  # round 2: one-off, no further crashes
        assert np.all(protocol.alive_counts() == 70)


class TestLoopEngineConservation:
    def test_messages_conserved_with_delay(self):
        """The loop engine may queue delayed messages, never lose track of them."""
        env = BernoulliEnvironment(QUALITIES, rng=0)
        transport = LossyTransport(loss_rate=0.3, delay_rate=0.2, rng=1)
        protocol = DistributedLearningProtocol(
            60, 2, exploration_rate=0.05, transport=transport, rng=2
        )
        protocol.run(env, 20)
        stats = transport.stats.as_dict()
        assert stats["sent"] == stats["delivered"] + stats["dropped"] + transport.pending()


class TestSeededDeterminism:
    @pytest.mark.parametrize("engine", PROTOCOL_ENGINES)
    def test_run_replications_deterministic(self, engine):
        parameters = {
            "qualities": QUALITIES,
            "N": 40,
            "T": 10,
            "beta": 0.65,
            "loss": 0.2,
            "crash": 0.01,
        }
        results = []
        for _ in range(2):
            config = ExperimentConfig(
                name=f"det-{engine}", parameters=dict(parameters), replications=3, seed=5
            )
            results.append(run_replications(config, PROTOCOL_REPLICATIONS[engine]))
        assert results[0].metrics == results[1].metrics
        assert results[0].seeds == results[1].seeds

    def test_different_seeds_change_metrics(self):
        parameters = {"qualities": QUALITIES, "N": 40, "T": 10, "loss": 0.2}
        outputs = []
        for seed in (0, 1):
            config = ExperimentConfig(
                name="seeded", parameters=dict(parameters), replications=3, seed=seed
            )
            outputs.append(
                run_replications(config, PROTOCOL_REPLICATIONS["batched"]).metrics
            )
        assert outputs[0] != outputs[1]
