"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.analysis.concentration import multiplicative_deviation
from repro.core.adoption import GeneralAdoptionRule, SymmetricAdoptionRule
from repro.core.dynamics import FinitePopulationDynamics
from repro.core.infinite import InfinitePopulationDynamics
from repro.core.regret import empirical_regret, expected_regret
from repro.core.sampling import MixtureSampling
from repro.core.state import PopulationState
from repro.core.theory import beta_from_delta, delta_from_beta
from repro.utils.ascii_plot import format_table


# ----------------------------------------------------------------- strategies
probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
betas = st.floats(min_value=0.5, max_value=0.99, allow_nan=False)
strict_betas = st.floats(min_value=0.501, max_value=0.99, allow_nan=False)
small_ints = st.integers(min_value=1, max_value=8)


def popularity_vectors(max_options=6):
    return (
        st.integers(min_value=2, max_value=max_options)
        .flatmap(
            lambda m: npst.arrays(
                dtype=float,
                shape=m,
                elements=st.floats(min_value=0.01, max_value=1.0),
            )
        )
        .map(lambda array: array / array.sum())
    )


def reward_vectors(num_options):
    return npst.arrays(dtype=np.int8, shape=num_options, elements=st.integers(0, 1))


# ------------------------------------------------------------------ adoption
class TestAdoptionProperties:
    @given(beta=betas)
    def test_symmetric_rule_alpha_complements_beta(self, beta):
        rule = SymmetricAdoptionRule(beta)
        assert abs(rule.alpha + rule.beta - 1.0) < 1e-12

    @given(alpha=probabilities, beta=probabilities)
    def test_general_rule_probabilities_bounded(self, alpha, beta):
        low, high = sorted((alpha, beta))
        rule = GeneralAdoptionRule(alpha=low, beta=high)
        for signal in (0, 1):
            assert 0.0 <= rule.adopt_probability(signal) <= 1.0

    @given(beta=strict_betas)
    def test_delta_round_trip(self, beta):
        assert abs(beta_from_delta(delta_from_beta(beta)) - beta) < 1e-9


# ------------------------------------------------------------------ sampling
class TestSamplingProperties:
    @given(mu=probabilities, popularity=popularity_vectors())
    def test_consideration_probabilities_form_distribution(self, mu, popularity):
        rule = MixtureSampling(mu)
        probabilities_out = rule.consideration_probabilities(popularity)
        assert abs(probabilities_out.sum() - 1.0) < 1e-9
        assert np.all(probabilities_out >= 0.0)

    @given(mu=st.floats(min_value=0.01, max_value=1.0), popularity=popularity_vectors())
    def test_exploration_floor_holds(self, mu, popularity):
        rule = MixtureSampling(mu)
        probabilities_out = rule.consideration_probabilities(popularity)
        floor = mu / popularity.size
        assert np.all(probabilities_out >= floor * (1.0 - 1e-9))


# --------------------------------------------------------------------- state
class TestStateProperties:
    @given(
        population=st.integers(min_value=1, max_value=10_000),
        options=st.integers(min_value=1, max_value=20),
    )
    def test_uniform_state_counts_sum_to_population(self, population, options):
        state = PopulationState.uniform(population, options)
        assert state.counts.sum() == population
        assert state.counts.max() - state.counts.min() <= 1

    @given(
        counts=npst.arrays(
            dtype=np.int64, shape=st.integers(1, 10), elements=st.integers(0, 1000)
        )
    )
    def test_popularity_is_distribution(self, counts):
        state = PopulationState.from_counts(counts, population_size=int(counts.sum()) + 1)
        popularity = state.popularity()
        assert abs(popularity.sum() - 1.0) < 1e-9
        assert np.all(popularity >= 0.0)


# ------------------------------------------------------------------ dynamics
class TestDynamicsProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        population=st.integers(min_value=1, max_value=500),
        options=st.integers(min_value=1, max_value=6),
        beta=betas,
        mu=probabilities,
        seed=st.integers(min_value=0, max_value=10_000),
        steps=st.integers(min_value=1, max_value=10),
    )
    def test_counts_never_exceed_population(self, population, options, beta, mu, seed, steps):
        dynamics = FinitePopulationDynamics(
            population,
            options,
            adoption_rule=SymmetricAdoptionRule(beta),
            sampling_rule=MixtureSampling(mu),
            rng=seed,
        )
        rng = np.random.default_rng(seed + 1)
        for _ in range(steps):
            state = dynamics.step(rng.integers(0, 2, size=options))
            assert 0 <= state.counts.sum() <= population
            assert np.all(state.counts >= 0)
            assert abs(state.popularity().sum() - 1.0) < 1e-9

    @settings(max_examples=25, deadline=None)
    @given(
        options=st.integers(min_value=1, max_value=6),
        beta=strict_betas,
        mu=probabilities,
        seed=st.integers(min_value=0, max_value=10_000),
        steps=st.integers(min_value=1, max_value=30),
    )
    def test_infinite_distribution_stays_normalised(self, options, beta, mu, seed, steps):
        dynamics = InfinitePopulationDynamics(
            options,
            adoption_rule=SymmetricAdoptionRule(beta),
            sampling_rule=MixtureSampling(mu),
        )
        rng = np.random.default_rng(seed)
        for _ in range(steps):
            distribution = dynamics.step(rng.integers(0, 2, size=options))
            assert abs(distribution.sum() - 1.0) < 1e-9
            assert np.all(distribution >= 0.0)
            assert np.all(np.isfinite(distribution))


# -------------------------------------------------------------------- regret
class TestRegretProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        data=st.data(),
        steps=st.integers(min_value=1, max_value=20),
        options=st.integers(min_value=2, max_value=5),
    )
    def test_empirical_regret_bounded_by_one(self, data, steps, options):
        # Build matrices explicitly: each row a popularity vector over `options`.
        rows = []
        for _ in range(steps):
            raw = data.draw(
                npst.arrays(
                    dtype=float,
                    shape=options,
                    elements=st.floats(min_value=0.01, max_value=1.0),
                )
            )
            rows.append(raw / raw.sum())
        popularities = np.stack(rows)
        rewards = data.draw(
            npst.arrays(dtype=np.int8, shape=(steps, options), elements=st.integers(0, 1))
        )
        best_quality = data.draw(probabilities)
        regret = empirical_regret(popularities, rewards, best_quality)
        assert -1.0 <= regret <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(data=st.data(), steps=st.integers(min_value=1, max_value=20), options=st.integers(2, 5))
    def test_expected_regret_non_negative(self, data, steps, options):
        rows = []
        for _ in range(steps):
            raw = data.draw(
                npst.arrays(
                    dtype=float,
                    shape=options,
                    elements=st.floats(min_value=0.01, max_value=1.0),
                )
            )
            rows.append(raw / raw.sum())
        popularities = np.stack(rows)
        qualities = data.draw(
            npst.arrays(dtype=float, shape=options, elements=probabilities)
        )
        regret = expected_regret(popularities, qualities)
        assert regret >= -1e-9


# --------------------------------------------------------------- concentration
class TestClosenessProperties:
    @given(
        a=st.floats(min_value=1e-6, max_value=1.0),
        b=st.floats(min_value=1e-6, max_value=1.0),
    )
    def test_deviation_symmetric_and_at_least_one(self, a, b):
        deviation = multiplicative_deviation(a, b)
        assert deviation >= 1.0
        assert abs(deviation - multiplicative_deviation(b, a)) < 1e-9

    @given(
        a=st.floats(min_value=1e-6, max_value=1.0),
        b=st.floats(min_value=1e-6, max_value=1.0),
        c=st.floats(min_value=1e-6, max_value=1.0),
    )
    def test_deviation_multiplicative_triangle_inequality(self, a, b, c):
        """dev(a, c) <= dev(a, b) * dev(b, c) — closeness composes multiplicatively."""
        assert multiplicative_deviation(a, c) <= (
            multiplicative_deviation(a, b) * multiplicative_deviation(b, c) + 1e-9
        )


# ------------------------------------------------------------------ formatting
class TestFormattingProperties:
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=10
        )
    )
    def test_format_table_always_renders_all_rows(self, values):
        rows = [{"index": index, "value": value} for index, value in enumerate(values)]
        text = format_table(rows)
        assert len(text.splitlines()) == len(values) + 2
