"""Property tests for the seed-sharding contract the parallel runtime relies on.

The runtime (:mod:`repro.runtime`) splits a sweep's replicate seed lists into
arbitrary shards and rebuilds one generator per seed inside worker processes.
That is only sound because of the contract documented in
:mod:`repro.utils.rng`: ``seeds_for_replications`` materialises exactly the
integer seeds behind ``spawn_rngs``'s independent streams, and each stream
depends on nothing but its own seed — so *any* partition of the seed list
reproduces the unsharded streams bit for bit.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import seeds_for_replications, spawn_rngs

master_seeds = st.integers(min_value=0, max_value=2**31 - 1)


@st.composite
def seed_list_partitions(draw):
    """A master seed, a replication count, and a random partition of the list."""
    master = draw(master_seeds)
    replications = draw(st.integers(min_value=1, max_value=24))
    boundaries = draw(
        st.lists(
            st.integers(min_value=0, max_value=replications),
            max_size=6,
        )
    )
    cuts = sorted(set(boundaries) | {0, replications})
    chunks = [
        (cuts[index], cuts[index + 1]) for index in range(len(cuts) - 1)
    ]
    return master, replications, chunks


@given(seed_list_partitions())
@settings(max_examples=50, deadline=None)
def test_any_partition_reproduces_the_unsharded_streams(case):
    """Rebuilding generators chunk by chunk matches building them all at once."""
    master, replications, chunks = case
    seeds = seeds_for_replications(master, replications)
    unsharded = [np.random.default_rng(seed).random(8) for seed in seeds]

    sharded = []
    for start, stop in chunks:
        # Each shard sees only its own slice of the seed list, exactly as a
        # worker process does.
        sharded.extend(
            np.random.default_rng(seed).random(8) for seed in seeds[start:stop]
        )

    assert len(sharded) == len(unsharded)
    for mine, reference in zip(sharded, unsharded):
        np.testing.assert_array_equal(mine, reference)


@given(master_seeds, st.integers(min_value=1, max_value=16))
@settings(max_examples=50, deadline=None)
def test_seeds_for_replications_materialises_spawn_rngs_streams(master, count):
    """The stored integer seeds rebuild exactly spawn_rngs's child generators."""
    from_seeds = [
        np.random.default_rng(seed).random(4)
        for seed in seeds_for_replications(master, count)
    ]
    spawned = [child.random(4) for child in spawn_rngs(master, count)]
    for rebuilt, spawned_draws in zip(from_seeds, spawned):
        np.testing.assert_array_equal(rebuilt, spawned_draws)


@given(master_seeds, st.integers(min_value=1, max_value=16))
@settings(max_examples=50, deadline=None)
def test_seed_lists_have_the_prefix_property(master, count):
    """Growing the replication count only extends the seed list.

    This is what lets a warm :class:`~repro.runtime.store.ResultStore` serve
    the first ``R`` replicates of a re-run that asks for ``R' > R``.
    """
    shorter = seeds_for_replications(master, count)
    longer = seeds_for_replications(master, count + 5)
    assert longer[: len(shorter)] == shorter
