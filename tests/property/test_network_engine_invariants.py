"""Property tests shared by the three network engines.

Every network engine — the per-agent loop :class:`NetworkDynamics`, the
sparse :class:`VectorizedNetworkDynamics`, and the replicate-axis
:class:`BatchedNetworkDynamics` — simulates the same neighbourhood-restricted
two-stage process, so the same invariants must hold for each:

* per-step choices lie in ``{-1, 0, .., m-1}`` and committed counts are
  non-negative and sum to at most ``N``;
* the popularity distribution always lies on the probability simplex;
* the committed-neighbour matvec equals the dense ``A @ onehot`` product on
  arbitrary graphs and choice vectors;
* :func:`run_replications` outputs are a pure function of the config seed on
  every engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adoption import SymmetricAdoptionRule
from repro.experiments import (
    NETWORK_ENGINES,
    NETWORK_REPLICATIONS,
    ExperimentConfig,
    run_replications,
)
from repro.network import (
    BatchedNetworkDynamics,
    NetworkDynamics,
    SocialNetwork,
    VectorizedNetworkDynamics,
    committed_neighbor_counts,
)

ENGINE_CLASSES = {
    "loop": NetworkDynamics,
    "vectorized": VectorizedNetworkDynamics,
}


def _random_network(size: int, edge_probability: float, seed: int) -> SocialNetwork:
    return SocialNetwork.erdos_renyi(size, edge_probability, rng=seed)


class TestStepInvariants:
    @pytest.mark.parametrize("engine", sorted(ENGINE_CLASSES))
    @given(
        size=st.integers(min_value=2, max_value=40),
        options=st.integers(min_value=1, max_value=4),
        edge_probability=st.floats(min_value=0.0, max_value=1.0),
        beta=st.floats(min_value=0.5, max_value=1.0),
        mu=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_counts_bounded_and_popularity_on_simplex(
        self, engine, size, options, edge_probability, beta, mu, seed
    ):
        network = _random_network(size, edge_probability, seed)
        dynamics = ENGINE_CLASSES[engine](
            network,
            options,
            adoption_rule=SymmetricAdoptionRule(beta),
            exploration_rate=mu,
            rng=seed,
        )
        rewards_rng = np.random.default_rng(seed + 1)
        for _ in range(3):
            state = dynamics.step(rewards_rng.integers(0, 2, size=options))
            assert np.all(state.counts >= 0)
            assert state.counts.sum() <= size
            choices = dynamics.choices()
            assert np.all(choices >= -1) and np.all(choices < options)
            popularity = state.popularity()
            assert np.all(popularity >= 0)
            assert popularity.sum() == pytest.approx(1.0)

    @given(
        size=st.integers(min_value=2, max_value=30),
        options=st.integers(min_value=1, max_value=4),
        replicates=st.integers(min_value=1, max_value=5),
        edge_probability=st.floats(min_value=0.0, max_value=1.0),
        mu=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_batched_counts_bounded_per_replicate(
        self, size, options, replicates, edge_probability, mu, seed
    ):
        network = _random_network(size, edge_probability, seed)
        dynamics = BatchedNetworkDynamics(
            network, options, replicates, exploration_rate=mu, rng=seed
        )
        rewards_rng = np.random.default_rng(seed + 1)
        for _ in range(3):
            state = dynamics.step(rewards_rng.integers(0, 2, size=(replicates, options)))
            assert state.counts.shape == (replicates, options)
            assert np.all(state.counts >= 0)
            assert np.all(state.committed <= size)
            popularity = state.popularity()
            assert np.all(popularity >= 0)
            np.testing.assert_allclose(popularity.sum(axis=1), 1.0)


class TestMatvecAgainstDense:
    @given(
        size=st.integers(min_value=1, max_value=25),
        options=st.integers(min_value=1, max_value=4),
        edge_probability=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_sparse_matvec_equals_dense_product(
        self, size, options, edge_probability, seed
    ):
        import networkx as nx

        network = _random_network(size, edge_probability, seed)
        choices = np.random.default_rng(seed).integers(-1, options, size=size)
        adjacency = nx.to_numpy_array(network.graph)
        onehot = np.zeros((size, options))
        for agent, choice in enumerate(choices):
            if choice >= 0:
                onehot[agent, choice] = 1.0
        np.testing.assert_array_equal(
            committed_neighbor_counts(network, choices, options),
            (adjacency @ onehot).astype(np.int64),
        )


class TestSeededDeterminism:
    @pytest.mark.parametrize("engine", NETWORK_ENGINES)
    def test_run_replications_deterministic(self, engine):
        parameters = {
            "qualities": (0.8, 0.5),
            "topology": "watts_strogatz",
            "N": 40,
            "T": 10,
            "beta": 0.65,
            "graph_seed": 1,
        }
        results = []
        for _ in range(2):
            config = ExperimentConfig(
                name=f"det-{engine}", parameters=dict(parameters), replications=3, seed=5
            )
            results.append(run_replications(config, NETWORK_REPLICATIONS[engine]))
        assert results[0].metrics == results[1].metrics
        assert results[0].seeds == results[1].seeds

    def test_different_seeds_change_metrics(self):
        parameters = {
            "qualities": (0.8, 0.5),
            "topology": "ring",
            "N": 40,
            "T": 10,
        }
        outputs = []
        for seed in (0, 1):
            config = ExperimentConfig(
                name="seeded", parameters=dict(parameters), replications=3, seed=seed
            )
            outputs.append(
                run_replications(config, NETWORK_REPLICATIONS["batched"]).metrics
            )
        assert outputs[0] != outputs[1]
