"""Tests for Population construction and aggregate views."""

import numpy as np
import pytest

from repro.agents import Agent, Population
from repro.core.adoption import GeneralAdoptionRule, SymmetricAdoptionRule


class TestConstruction:
    def test_homogeneous_size_and_options(self):
        population = Population.homogeneous(20, 3, beta=0.6, rng=0)
        assert population.size == 20
        assert population.num_options == 3
        assert len(population) == 20

    def test_homogeneous_seeds_options(self):
        population = Population.homogeneous(50, 4, rng=0)
        assert population.committed_count() == 50

    def test_homogeneous_without_seeding(self):
        population = Population.homogeneous(10, 2, seed_options=False)
        assert population.committed_count() == 0

    def test_homogeneous_with_explicit_alpha(self):
        population = Population.homogeneous(5, 2, beta=0.8, alpha=0.1)
        rule = population[0].adoption_rule
        assert rule.alpha == pytest.approx(0.1)
        assert rule.beta == pytest.approx(0.8)

    def test_heterogeneous_rules_assigned_in_order(self):
        rules = [SymmetricAdoptionRule(0.55), SymmetricAdoptionRule(0.7)]
        population = Population.heterogeneous(rules, 2, rng=0)
        assert population[0].adoption_rule.beta == pytest.approx(0.55)
        assert population[1].adoption_rule.beta == pytest.approx(0.7)

    def test_heterogeneous_rejects_empty(self):
        with pytest.raises(ValueError):
            Population.heterogeneous([], 2)

    def test_beta_distribution_in_range(self):
        population = Population.with_beta_distribution(
            30, 2, beta_low=0.55, beta_high=0.7, rng=0
        )
        betas = [agent.adoption_rule.beta for agent in population]
        assert all(0.55 <= beta <= 0.7 for beta in betas)

    def test_beta_distribution_rejects_bad_range(self):
        with pytest.raises(ValueError):
            Population.with_beta_distribution(10, 2, beta_low=0.8, beta_high=0.6)

    def test_rejects_out_of_order_ids(self):
        agents = [Agent(1, SymmetricAdoptionRule(0.6)), Agent(0, SymmetricAdoptionRule(0.6))]
        with pytest.raises(ValueError):
            Population(agents, 2)

    def test_rejects_option_out_of_range(self):
        agents = [Agent(0, SymmetricAdoptionRule(0.6), initial_option=5)]
        with pytest.raises(ValueError):
            Population(agents, 2)

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            Population([], 2)

    def test_rejects_non_agent_members(self):
        with pytest.raises(TypeError):
            Population(["agent"], 2)


class TestAggregates:
    def test_option_counts_sum_to_committed(self):
        population = Population.homogeneous(40, 3, rng=0)
        assert population.option_counts().sum() == population.committed_count()

    def test_popularity_sums_to_one(self):
        population = Population.homogeneous(40, 3, rng=0)
        assert population.popularity().sum() == pytest.approx(1.0)

    def test_popularity_uniform_when_nobody_committed(self):
        population = Population.homogeneous(10, 4, seed_options=False)
        np.testing.assert_allclose(population.popularity(), 0.25)

    def test_counts_reflect_agent_choices(self):
        rule = GeneralAdoptionRule(0.0, 1.0)
        agents = [Agent(i, rule, initial_option=0) for i in range(3)]
        agents.append(Agent(3, rule, initial_option=1))
        population = Population(agents, 2)
        np.testing.assert_array_equal(population.option_counts(), [3, 1])

    def test_indexing_and_iteration(self):
        population = Population.homogeneous(5, 2, rng=0)
        assert population[2].agent_id == 2
        assert [agent.agent_id for agent in population] == list(range(5))
