"""Tests for the Agent class."""

import numpy as np
import pytest

from repro.agents import Agent
from repro.core.adoption import AlwaysAdoptRule, GeneralAdoptionRule, SymmetricAdoptionRule


class TestConstruction:
    def test_initial_state(self):
        agent = Agent(0, SymmetricAdoptionRule(0.6))
        assert agent.agent_id == 0
        assert agent.current_option is None
        assert not agent.is_committed()

    def test_initial_option(self):
        agent = Agent(1, SymmetricAdoptionRule(0.6), initial_option=2)
        assert agent.current_option == 2
        assert agent.is_committed()

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            Agent(-1, SymmetricAdoptionRule(0.6))

    def test_rejects_non_rule(self):
        with pytest.raises(TypeError):
            Agent(0, "not a rule")

    def test_rejects_negative_initial_option(self):
        with pytest.raises(ValueError):
            Agent(0, SymmetricAdoptionRule(0.6), initial_option=-3)


class TestDecide:
    def test_always_adopt_on_good_signal_with_beta_one(self):
        agent = Agent(0, GeneralAdoptionRule(alpha=0.0, beta=1.0))
        rng = np.random.default_rng(0)
        assert agent.decide(1, 1, rng) == 1
        assert agent.is_committed()

    def test_never_adopt_on_bad_signal_with_alpha_zero(self):
        agent = Agent(0, GeneralAdoptionRule(alpha=0.0, beta=1.0), initial_option=0)
        rng = np.random.default_rng(0)
        assert agent.decide(2, 0, rng) is None
        assert not agent.is_committed()

    def test_always_adopt_rule_ignores_signal(self):
        agent = Agent(0, AlwaysAdoptRule())
        rng = np.random.default_rng(0)
        assert agent.decide(3, 0, rng) == 3

    def test_adoption_rate_matches_beta(self):
        rng = np.random.default_rng(1)
        adoptions = 0
        trials = 3000
        for _ in range(trials):
            agent = Agent(0, SymmetricAdoptionRule(0.7))
            if agent.decide(0, 1, rng) is not None:
                adoptions += 1
        assert adoptions / trials == pytest.approx(0.7, abs=0.03)

    def test_adoption_rate_on_bad_signal_matches_alpha(self):
        rng = np.random.default_rng(2)
        adoptions = 0
        trials = 3000
        for _ in range(trials):
            agent = Agent(0, SymmetricAdoptionRule(0.7))
            if agent.decide(0, 0, rng) is not None:
                adoptions += 1
        assert adoptions / trials == pytest.approx(0.3, abs=0.03)

    def test_rejects_invalid_signal(self):
        agent = Agent(0, SymmetricAdoptionRule(0.6))
        with pytest.raises(ValueError):
            agent.decide(0, 2, np.random.default_rng(0))

    def test_rejects_negative_option(self):
        agent = Agent(0, SymmetricAdoptionRule(0.6))
        with pytest.raises(ValueError):
            agent.decide(-1, 1, np.random.default_rng(0))
