"""Tests for the asynchronous job queue (repro.service.jobs)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.jobs import DONE, ERROR, QUEUED, Job, JobQueue, QueueFull
from repro.service.requests import sweep_request

ROWS = [{"value": 1.0}]


def _request(seed: int = 0):
    return sweep_request(
        options=[0.8, 0.5], populations=[60], horizon=8,
        replications=2, seed=seed, engine="loop",
    )


def _instant(request):
    return ROWS, "desc", 2, 3


class GatedExecute:
    """Execute callable that blocks until released — makes timing deterministic."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = 0

    def __call__(self, request):
        self.calls += 1
        self.started.set()
        assert self.release.wait(timeout=10.0), "test never released the job"
        return ROWS, "gated", 0, 0


class TestExecution:
    def test_job_runs_and_records_the_result(self):
        with JobQueue(_instant, workers=1) as jobs:
            job, attached = jobs.submit(_request())
            assert not attached
            assert job.wait(timeout=10.0)
            assert job.status == DONE
            assert job.rows == ROWS
            assert job.description == "desc"
            assert (job.cache_hits, job.cache_misses) == (2, 3)
            assert jobs.get(job.id) is job
            assert jobs.get("job-999") is None

    def test_failure_is_captured_not_raised(self):
        def explode(request):
            raise RuntimeError("engine blew up")

        with JobQueue(explode, workers=1) as jobs:
            job, _ = jobs.submit(_request())
            assert job.wait(timeout=10.0)
            assert job.status == ERROR
            assert "RuntimeError: engine blew up" in job.error
            assert jobs.failed == 1

    def test_closed_queue_rejects_submissions(self):
        jobs = JobQueue(_instant, workers=1)
        jobs.close()
        with pytest.raises(RuntimeError, match="closed"):
            jobs.submit(_request())


class TestInFlightDedup:
    def test_identical_submissions_attach_to_one_job(self):
        gate = GatedExecute()
        with JobQueue(gate, workers=1) as jobs:
            first, attached_first = jobs.submit(_request())
            assert gate.started.wait(timeout=10.0)
            second, attached_second = jobs.submit(_request())
            third, attached_third = jobs.submit(_request())
            assert not attached_first
            assert attached_second and attached_third
            assert first.id == second.id == third.id
            assert first.subscribers == 3
            assert jobs.deduplicated == 2
            gate.release.set()
            assert first.wait(timeout=10.0)
        assert gate.calls == 1

    def test_different_requests_do_not_dedup(self):
        with JobQueue(_instant, workers=1) as jobs:
            first, _ = jobs.submit(_request(seed=0))
            second, attached = jobs.submit(_request(seed=1))
            assert not attached
            assert first.id != second.id
            assert first.wait(timeout=10.0) and second.wait(timeout=10.0)

    def test_finished_jobs_are_not_deduplicated(self):
        with JobQueue(_instant, workers=1) as jobs:
            first, _ = jobs.submit(_request())
            assert first.wait(timeout=10.0)
            second, attached = jobs.submit(_request())
            assert not attached
            assert second.id != first.id
            assert second.wait(timeout=10.0)
            assert jobs.completed == 2


class TestBackPressure:
    def test_full_queue_raises_queue_full(self):
        gate = GatedExecute()
        with JobQueue(gate, workers=1, capacity=1) as jobs:
            blocker, _ = jobs.submit(_request(seed=0))
            assert gate.started.wait(timeout=10.0)
            queued, _ = jobs.submit(_request(seed=1))  # fills the pending slot
            with pytest.raises(QueueFull, match="capacity"):
                jobs.submit(_request(seed=2))
            # ... but an identical in-flight request still attaches.
            attached_job, attached = jobs.submit(_request(seed=1))
            assert attached and attached_job.id == queued.id
            gate.release.set()
            assert blocker.wait(timeout=10.0) and queued.wait(timeout=10.0)

    def test_stats_report_depth_and_counters(self):
        gate = GatedExecute()
        with JobQueue(gate, workers=1, capacity=4) as jobs:
            running, _ = jobs.submit(_request(seed=0))
            assert gate.started.wait(timeout=10.0)
            jobs.submit(_request(seed=1))
            stats = jobs.stats()
            assert stats["capacity"] == 4
            assert stats["queue_depth"] == 1
            assert stats["jobs"]["running"] == 1
            assert stats["jobs"]["queued"] == 1
            gate.release.set()  # stays set: releases the queued job too
            assert running.wait(timeout=10.0)


class TestHistoryEviction:
    def test_oldest_finished_jobs_are_evicted(self):
        with JobQueue(_instant, workers=1, capacity=4, history_limit=1) as jobs:
            # history_limit is floored at capacity + workers = 5
            submitted = []
            for seed in range(8):
                job, _ = jobs.submit(_request(seed=seed))
                assert job.wait(timeout=10.0)
                submitted.append(job)
            assert jobs.get(submitted[-1].id) is submitted[-1]
            assert jobs.get(submitted[0].id) is None

    def test_all_unfinished_history_is_never_evicted(self):
        # Regression: _evict_history loops "while over the cap, evict the
        # oldest *finished* job"; with every job unfinished it must return
        # (the for/else break) instead of spinning or evicting live jobs.
        jobs = JobQueue(_instant, workers=1, capacity=1, history_limit=1)
        try:
            live = [
                Job(id=f"live-{index}", key=f"key-{index}", request=_request(index))
                for index in range(5)
            ]
            with jobs._lock:
                for job in live:
                    jobs._jobs[job.id] = job
                jobs._evict_history()
                assert len(jobs._jobs) == 5  # all unfinished: nothing evicted
                live[0].status = DONE
                live[2].status = ERROR
                jobs._evict_history()
                # Only the finished jobs go; the live ones stay even though
                # the history is still over its limit.
                assert set(jobs._jobs) == {"live-1", "live-3", "live-4"}
        finally:
            jobs.close()


class TestCloseWithFullQueue:
    """Regression: close() deadlocked when the pending queue was at capacity.

    The old shutdown put one *blocking* sentinel per worker; with the queue
    full and the lone worker stuck in a long job, ``put`` waited on a slot
    that could never free — close() hung forever.  Now pending jobs are
    cancelled and a single non-blocking sentinel is recycled through the
    workers.
    """

    def test_close_returns_promptly_and_cancels_pending(self):
        gate = GatedExecute()
        jobs = JobQueue(gate, workers=1, capacity=2)
        running, _ = jobs.submit(_request(seed=0))
        assert gate.started.wait(timeout=10.0)
        pending = [jobs.submit(_request(seed=seed))[0] for seed in (1, 2)]
        with pytest.raises(QueueFull):
            jobs.submit(_request(seed=3))  # the queue really is full

        closed = threading.Event()

        def closer():
            jobs.close(timeout=10.0)
            closed.set()

        thread = threading.Thread(target=closer)
        start = time.monotonic()
        thread.start()
        # The pending jobs must be cancelled immediately — close() does not
        # wait for the stuck worker before releasing their waiters.
        for job in pending:
            assert job.wait(timeout=5.0), "close() left a pending job hanging"
            assert job.status == ERROR
            assert "closed before execution" in job.error
        gate.release.set()
        thread.join(timeout=10.0)
        assert closed.is_set(), "close() deadlocked"
        assert time.monotonic() - start < 30.0
        assert running.wait(timeout=1.0)
        assert running.status == DONE
        assert jobs.failed == len(pending)

    def test_close_with_idle_full_history_is_clean(self):
        jobs = JobQueue(_instant, workers=2, capacity=1)
        job, _ = jobs.submit(_request())
        assert job.wait(timeout=10.0)
        jobs.close()  # both workers must stop via the single recycled sentinel
        for thread in jobs._threads:
            thread.join(timeout=5.0)
            assert not thread.is_alive()


class TestSnapshotConsistency:
    """Regression: snapshot()/stats() read worker-mutated fields unlocked.

    A reader could observe ``status == "done"`` with ``finished_at`` (or the
    cache counters) still unset — a torn view.  Both now serialise on the
    queue lock against the worker's single locked transition.
    """

    JOBS = 30

    def test_hammered_snapshots_are_never_torn(self):
        torn = []
        done_ids = set()
        stop = threading.Event()
        queue_holder = []

        def reader():
            while not stop.is_set():
                jobs = queue_holder[0] if queue_holder else None
                if jobs is None:
                    continue
                for job_id in list(done_ids):
                    job = jobs.get(job_id)
                    if job is None:
                        continue
                    view = job.snapshot()
                    if view["status"] in (DONE, ERROR):
                        if view["finished_at"] is None or view["started_at"] is None:
                            torn.append(view)
                        if view["status"] == DONE and view["cache_hits"] != 2:
                            torn.append(view)
                    stats = jobs.stats()
                    if stats["jobs"][DONE] > stats["completed"]:
                        torn.append(stats)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            with JobQueue(_instant, workers=2, capacity=8, history_limit=256) as jobs:
                queue_holder.append(jobs)
                for seed in range(self.JOBS):
                    job, _ = jobs.submit(_request(seed=seed))
                    done_ids.add(job.id)
                    assert job.wait(timeout=10.0)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
        assert not torn, torn[:3]

    def test_standalone_job_snapshot_works_without_owner(self):
        job = Job(id="solo", key="k", request=_request())
        view = job.snapshot()
        assert view["status"] == QUEUED
        assert view["id"] == "solo"
