"""Tests for the asynchronous job queue (repro.service.jobs)."""

from __future__ import annotations

import threading

import pytest

from repro.service.jobs import DONE, ERROR, JobQueue, QueueFull
from repro.service.requests import sweep_request

ROWS = [{"value": 1.0}]


def _request(seed: int = 0):
    return sweep_request(
        options=[0.8, 0.5], populations=[60], horizon=8,
        replications=2, seed=seed, engine="loop",
    )


def _instant(request):
    return ROWS, "desc", 2, 3


class GatedExecute:
    """Execute callable that blocks until released — makes timing deterministic."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = 0

    def __call__(self, request):
        self.calls += 1
        self.started.set()
        assert self.release.wait(timeout=10.0), "test never released the job"
        return ROWS, "gated", 0, 0


class TestExecution:
    def test_job_runs_and_records_the_result(self):
        with JobQueue(_instant, workers=1) as jobs:
            job, attached = jobs.submit(_request())
            assert not attached
            assert job.wait(timeout=10.0)
            assert job.status == DONE
            assert job.rows == ROWS
            assert job.description == "desc"
            assert (job.cache_hits, job.cache_misses) == (2, 3)
            assert jobs.get(job.id) is job
            assert jobs.get("job-999") is None

    def test_failure_is_captured_not_raised(self):
        def explode(request):
            raise RuntimeError("engine blew up")

        with JobQueue(explode, workers=1) as jobs:
            job, _ = jobs.submit(_request())
            assert job.wait(timeout=10.0)
            assert job.status == ERROR
            assert "RuntimeError: engine blew up" in job.error
            assert jobs.failed == 1

    def test_closed_queue_rejects_submissions(self):
        jobs = JobQueue(_instant, workers=1)
        jobs.close()
        with pytest.raises(RuntimeError, match="closed"):
            jobs.submit(_request())


class TestInFlightDedup:
    def test_identical_submissions_attach_to_one_job(self):
        gate = GatedExecute()
        with JobQueue(gate, workers=1) as jobs:
            first, attached_first = jobs.submit(_request())
            assert gate.started.wait(timeout=10.0)
            second, attached_second = jobs.submit(_request())
            third, attached_third = jobs.submit(_request())
            assert not attached_first
            assert attached_second and attached_third
            assert first.id == second.id == third.id
            assert first.subscribers == 3
            assert jobs.deduplicated == 2
            gate.release.set()
            assert first.wait(timeout=10.0)
        assert gate.calls == 1

    def test_different_requests_do_not_dedup(self):
        with JobQueue(_instant, workers=1) as jobs:
            first, _ = jobs.submit(_request(seed=0))
            second, attached = jobs.submit(_request(seed=1))
            assert not attached
            assert first.id != second.id
            assert first.wait(timeout=10.0) and second.wait(timeout=10.0)

    def test_finished_jobs_are_not_deduplicated(self):
        with JobQueue(_instant, workers=1) as jobs:
            first, _ = jobs.submit(_request())
            assert first.wait(timeout=10.0)
            second, attached = jobs.submit(_request())
            assert not attached
            assert second.id != first.id
            assert second.wait(timeout=10.0)
            assert jobs.completed == 2


class TestBackPressure:
    def test_full_queue_raises_queue_full(self):
        gate = GatedExecute()
        with JobQueue(gate, workers=1, capacity=1) as jobs:
            blocker, _ = jobs.submit(_request(seed=0))
            assert gate.started.wait(timeout=10.0)
            queued, _ = jobs.submit(_request(seed=1))  # fills the pending slot
            with pytest.raises(QueueFull, match="capacity"):
                jobs.submit(_request(seed=2))
            # ... but an identical in-flight request still attaches.
            attached_job, attached = jobs.submit(_request(seed=1))
            assert attached and attached_job.id == queued.id
            gate.release.set()
            assert blocker.wait(timeout=10.0) and queued.wait(timeout=10.0)

    def test_stats_report_depth_and_counters(self):
        gate = GatedExecute()
        with JobQueue(gate, workers=1, capacity=4) as jobs:
            running, _ = jobs.submit(_request(seed=0))
            assert gate.started.wait(timeout=10.0)
            jobs.submit(_request(seed=1))
            stats = jobs.stats()
            assert stats["capacity"] == 4
            assert stats["queue_depth"] == 1
            assert stats["jobs"]["running"] == 1
            assert stats["jobs"]["queued"] == 1
            gate.release.set()  # stays set: releases the queued job too
            assert running.wait(timeout=10.0)


class TestHistoryEviction:
    def test_oldest_finished_jobs_are_evicted(self):
        with JobQueue(_instant, workers=1, capacity=4, history_limit=1) as jobs:
            # history_limit is floored at capacity + workers = 5
            submitted = []
            for seed in range(8):
                job, _ = jobs.submit(_request(seed=seed))
                assert job.wait(timeout=10.0)
                submitted.append(job)
            assert jobs.get(submitted[-1].id) is submitted[-1]
            assert jobs.get(submitted[0].id) is None
