"""API v1 surface: error envelopes, version routing, legacy aliases, campaigns.

Complements ``test_daemon.py`` (which exercises the happy paths through the
client) with raw-HTTP assertions about the v1 contract: the one error
envelope, ``Deprecation: true`` on unversioned aliases with byte-identical
bodies, 404s for unknown version prefixes, and campaign submissions riding
the same job lifecycle.
"""

from __future__ import annotations

import json
import time
from urllib import error as urllib_error
from urllib import request as urllib_request

import pytest

from repro.runtime import ResultStore
from repro.service import ServiceClient, ServiceError, start_daemon

SWEEP_PAYLOAD = {
    "kind": "sweep",
    "options": [0.8, 0.5],
    "populations": [60],
    "horizon": 8,
    "replications": 2,
    "engine": "loop",
}

CAMPAIGN_SPEC = {
    "name": "api-demo",
    "nodes": [
        {"id": "sim", "kind": "simulate", "request": dict(SWEEP_PAYLOAD)},
        {"id": "stats", "kind": "analyse", "inputs": ["sim"]},
        {"id": "summary", "kind": "report", "inputs": ["stats"]},
    ],
}


@pytest.fixture()
def daemon(tmp_path):
    store = ResultStore(tmp_path / "api.sqlite")
    with start_daemon(store=store) as handle:
        yield handle
    store.close()


@pytest.fixture()
def client(daemon):
    return ServiceClient(daemon.url)


def raw(daemon, path, body=None):
    """One raw HTTP call; returns (status, headers, decoded JSON body)."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib_request.Request(
        f"{daemon.url}{path}",
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib_request.urlopen(request, timeout=30.0) as response:
            return response.status, dict(response.headers), json.loads(
                response.read().decode("utf-8")
            )
    except urllib_error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(
            error.read().decode("utf-8")
        )


class TestErrorEnvelope:
    def test_malformed_job_is_a_400_invalid_request(self, daemon):
        status, _, body = raw(daemon, "/v1/jobs", {"kind": "nope"})
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
        assert "unknown request kind" in body["error"]["message"]

    def test_job_missing_required_fields_is_a_400_not_a_500(self, daemon):
        status, _, body = raw(daemon, "/v1/jobs", {"kind": "sweep"})
        assert status == 400
        assert body["error"]["code"] == "invalid_request"

    def test_malformed_campaign_is_a_400_invalid_campaign(self, daemon):
        status, _, body = raw(
            daemon, "/v1/campaigns", {"name": "x", "nodes": [{"id": "a"}]}
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_campaign"
        assert "kind" in body["error"]["message"]

    def test_campaign_with_unknown_input_is_rejected(self, daemon):
        spec = {
            "name": "x",
            "nodes": [
                {"id": "a", "kind": "analyse", "inputs": ["ghost"]},
            ],
        }
        status, _, body = raw(daemon, "/v1/campaigns", spec)
        assert status == 400
        assert body["error"]["code"] == "invalid_campaign"
        assert "ghost" in body["error"]["message"]

    def test_unknown_job_is_a_404_envelope(self, daemon):
        status, _, body = raw(daemon, "/v1/jobs/job-999")
        assert status == 404
        assert body["error"] == {
            "code": "unknown_job",
            "message": "unknown job 'job-999'",
        }

    def test_unknown_path_is_a_404_envelope(self, daemon):
        status, _, body = raw(daemon, "/v1/nonsense")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_failed_job_result_carries_envelope_and_snapshot(self, daemon, client):
        # A campaign whose analyse node names a missing metric fails at
        # execution time (validation passes: the spec itself is legal).
        spec = json.loads(json.dumps(CAMPAIGN_SPEC))
        spec["nodes"][1]["metrics"] = ["no_such_metric"]
        status, _, body = raw(daemon, "/v1/campaigns", spec)
        assert status == 202
        job_id = body["job_id"]
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if client.status(job_id)["status"] == "error":
                break
            time.sleep(0.05)
        status, _, body = raw(daemon, f"/v1/jobs/{job_id}/result")
        assert status == 500
        assert body["error"]["code"] == "job_failed"
        assert "no_such_metric" in body["error"]["message"]
        assert body["job"]["status"] == "error"

    def test_client_surfaces_the_envelope_message(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "nope"})
        assert excinfo.value.status == 400
        assert "unknown request kind" in str(excinfo.value)


class TestVersionRouting:
    def test_unknown_version_prefix_is_a_404(self, daemon):
        status, _, body = raw(daemon, "/v2/healthz")
        assert status == 404
        assert body["error"]["code"] == "unknown_version"
        assert "/v1" in body["error"]["message"]

    def test_unknown_version_on_post_too(self, daemon):
        status, _, body = raw(daemon, "/v9/jobs", SWEEP_PAYLOAD)
        assert status == 404
        assert body["error"]["code"] == "unknown_version"

    def test_client_targets_v1(self, client, daemon):
        # The client helper must reach the canonical surface, not an alias.
        gated = daemon  # client fixtures share the daemon
        assert client.healthz()["status"] == "ok"
        status, headers, _ = raw(gated, "/v1/healthz")
        assert status == 200
        assert "Deprecation" not in headers


class TestLegacyAliases:
    @pytest.mark.parametrize("path", ["/healthz", "/stats"])
    def test_get_aliases_answer_identically_plus_deprecation(self, daemon, path):
        legacy_status, legacy_headers, legacy_body = raw(daemon, path)
        v1_status, v1_headers, v1_body = raw(daemon, f"/v1{path}")
        assert legacy_status == v1_status == 200
        assert legacy_body == v1_body
        assert legacy_headers.get("Deprecation") == "true"
        assert "Deprecation" not in v1_headers

    def test_submit_alias_works_and_is_marked_deprecated(self, daemon, client):
        status, headers, body = raw(daemon, "/jobs", SWEEP_PAYLOAD)
        assert status == 202
        assert headers.get("Deprecation") == "true"
        rows_legacy = client.wait(body["job_id"])["rows"]
        # Same workload through /v1 (served from the shared store): the
        # alias and the canonical route produce bit-identical rows.
        submitted = client.submit(SWEEP_PAYLOAD)
        rows_v1 = client.wait(submitted["job_id"])["rows"]
        assert rows_legacy == rows_v1

    def test_error_envelope_on_alias_carries_deprecation(self, daemon):
        status, headers, body = raw(daemon, "/jobs", {"kind": "nope"})
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
        assert headers.get("Deprecation") == "true"


class TestCampaignJobs:
    def test_campaign_runs_through_the_job_queue(self, daemon, client):
        submitted = client.submit_campaign(CAMPAIGN_SPEC)
        assert submitted["status"] in ("queued", "running", "done")
        result = client.wait(submitted["job_id"], timeout=120.0)
        assert result["kind"] == "campaign"
        nodes = result["rows"]
        assert [node["id"] for node in nodes] == ["sim", "stats", "summary"]
        assert [node["kind"] for node in nodes] == [
            "simulate",
            "analyse",
            "report",
        ]
        assert nodes[2]["text"].startswith("Report summary")

    def test_identical_inflight_campaigns_deduplicate(self, daemon, client):
        first = client.submit_campaign(CAMPAIGN_SPEC)
        second = client.submit_campaign(CAMPAIGN_SPEC)
        if second["attached"]:  # raced completion is legal, attach is typical
            assert second["job_id"] == first["job_id"]
        client.wait(first["job_id"], timeout=120.0)

    def test_campaign_and_direct_job_share_the_store(self, daemon, client):
        # The campaign's simulate node and a direct /v1/jobs submission of
        # the same request hit the same content addresses.
        campaign_job = client.submit_campaign(CAMPAIGN_SPEC)
        client.wait(campaign_job["job_id"], timeout=120.0)
        direct = client.submit(SWEEP_PAYLOAD)
        result = client.wait(direct["job_id"], timeout=120.0)
        status = client.status(direct["job_id"])
        assert status["cache_misses"] == 0  # fully warm
        campaign_rows = client.result(campaign_job["job_id"])["rows"][0]["rows"]
        assert result["rows"] == campaign_rows


class TestWaitBackoff:
    def test_backoff_doubles_to_the_cap(self, monkeypatch):
        client = ServiceClient("http://example.invalid")
        states = iter(["queued"] * 6 + ["done"])
        monkeypatch.setattr(
            client, "status", lambda job_id: {"status": next(states)}
        )
        monkeypatch.setattr(client, "result", lambda job_id: {"rows": []})
        sleeps = []
        clock = {"now": 0.0}

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock["now"] += seconds

        monkeypatch.setattr("repro.service.client.time.sleep", fake_sleep)
        monkeypatch.setattr(
            "repro.service.client.time.monotonic", lambda: clock["now"]
        )
        assert client.wait("job-1", timeout=120.0) == {"rows": []}
        assert sleeps == [0.05, 0.1, 0.2, 0.4, 0.8, 1.0]

    def test_last_sleep_is_clamped_to_the_deadline(self, monkeypatch):
        client = ServiceClient("http://example.invalid")
        monkeypatch.setattr(client, "status", lambda job_id: {"status": "queued"})
        sleeps = []
        clock = {"now": 0.0}

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock["now"] += seconds

        monkeypatch.setattr("repro.service.client.time.sleep", fake_sleep)
        monkeypatch.setattr(
            "repro.service.client.time.monotonic", lambda: clock["now"]
        )
        with pytest.raises(ServiceError, match="still queued"):
            client.wait("job-1", timeout=1.0)
        assert sum(sleeps) <= 1.0 + 1e-9
        assert sleeps[-1] < 1.0  # clamped, not a full max interval

    def test_zero_poll_interval_does_not_busy_loop(self, monkeypatch):
        client = ServiceClient("http://example.invalid")
        states = iter(["queued"] * 3 + ["done"])
        monkeypatch.setattr(
            client, "status", lambda job_id: {"status": next(states)}
        )
        monkeypatch.setattr(client, "result", lambda job_id: {"rows": []})
        sleeps = []
        clock = {"now": 0.0}

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock["now"] += max(seconds, 1e-6)

        monkeypatch.setattr("repro.service.client.time.sleep", fake_sleep)
        monkeypatch.setattr(
            "repro.service.client.time.monotonic", lambda: clock["now"]
        )
        client.wait("job-1", timeout=10.0, poll_interval=0.0)
        # After the first zero sleep the interval grows from the 1 ms floor.
        assert sleeps[0] == 0.0
        assert all(s > 0 for s in sleeps[1:])

    def test_a_slow_job_costs_few_polls(self, daemon, client):
        # Timed regression: a ~0.6 s job must cost a handful of status
        # polls, not the ~12 a fixed 50 ms interval would issue.
        service = daemon.service
        inner = service.queue._execute
        release = time.monotonic() + 0.6

        def slow_execute(request):
            while time.monotonic() < release:
                time.sleep(0.01)
            return inner(request)

        service.queue._execute = slow_execute
        polls = {"count": 0}
        real_status = client.status

        def counting_status(job_id):
            polls["count"] += 1
            return real_status(job_id)

        client.status = counting_status
        submitted = client.submit(SWEEP_PAYLOAD)
        client.wait(submitted["job_id"], timeout=60.0)
        # Exponential backoff: 0.05+0.1+0.2+0.4 > 0.6s in 5 polls; allow
        # slack for scheduling jitter but far below the fixed-interval count.
        assert polls["count"] <= 8
