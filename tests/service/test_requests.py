"""Tests for the shared request layer (repro.service.requests)."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, run_replications, run_sweep
from repro.service.requests import (
    PROTOCOL,
    SWEEP,
    RequestError,
    execute_request,
    network_request,
    prepare_request,
    protocol_request,
    request_from_dict,
    sweep_request,
)

SWEEP_KWARGS = dict(
    options=[0.8, 0.5],
    populations=[60],
    horizon=8,
    replications=2,
    engine="loop",
)


class TestBuilderValidation:
    def test_sweep_request_normalises_numbers(self):
        request = sweep_request(
            options=(0.8, 0.5), populations=(60,), horizon=8, replications=2
        )
        assert request.kind == SWEEP
        assert request.spec["options"] == [0.8, 0.5]
        assert request.spec["populations"] == [60]
        assert request.engine == "batched"

    @pytest.mark.parametrize("bad", [[], "0.8", None])
    def test_sweep_rejects_bad_options(self, bad):
        with pytest.raises(RequestError, match="'options'"):
            sweep_request(options=bad, populations=[60])

    def test_sweep_rejects_unknown_engine(self):
        with pytest.raises(RequestError, match="unknown engine"):
            sweep_request(options=[0.8, 0.5], populations=[60], engine="gpu")

    @pytest.mark.parametrize(
        "field, value",
        [("horizon", 0), ("replications", -1), ("seed", -1), ("size", 0)],
    )
    def test_network_rejects_nonpositive_fields(self, field, value):
        kwargs = dict(
            options=[0.8, 0.5], topology="ring", size=60, replications=2
        )
        kwargs[field] = value
        with pytest.raises(RequestError, match=f"'{field}'"):
            network_request(**kwargs)

    def test_protocol_delay_requires_loop_engine(self):
        with pytest.raises(RequestError, match="loop engine"):
            protocol_request(options=[0.8, 0.5], nodes=40, delay=0.1, engine="batched")
        request = protocol_request(
            options=[0.8, 0.5], nodes=40, delay=0.1, engine="loop"
        )
        assert request.kind == PROTOCOL
        assert request.spec["delay"] == 0.1

    def test_protocol_mass_crash_round_defaults_to_half(self):
        request = protocol_request(
            options=[0.8, 0.5], nodes=40, rounds=30, mass_crash_fraction=0.4
        )
        assert request.spec["mass_crash_round"] == 15
        explicit = protocol_request(
            options=[0.8, 0.5],
            nodes=40,
            rounds=30,
            mass_crash_fraction=0.4,
            mass_crash_round=7,
        )
        assert explicit.spec["mass_crash_round"] == 7


class TestNonFiniteValidation:
    """Non-finite numbers are rejected at the request boundary (HTTP 400).

    ``json.loads`` accepts the non-standard ``Infinity``/``NaN`` tokens, so
    without this check a client typo would surface as a 500 deep inside
    cache-key derivation instead of a clear validation error here.
    """

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_sweep_rejects_non_finite_beta(self, bad):
        with pytest.raises(RequestError, match="'beta' must be finite"):
            sweep_request(options=[0.8, 0.5], populations=[60], beta=bad)

    def test_sweep_rejects_non_finite_options(self):
        with pytest.raises(RequestError, match="finite"):
            sweep_request(options=[0.8, float("nan")], populations=[60])

    def test_network_rejects_non_finite_mu(self):
        with pytest.raises(RequestError, match="'mu' must be finite"):
            network_request(
                options=[0.8, 0.5], topology="ring", size=60, mu=float("inf")
            )

    @pytest.mark.parametrize(
        "field", ["loss", "delay", "crash", "mass_crash_fraction"]
    )
    def test_protocol_rejects_non_finite_rates(self, field):
        kwargs = dict(options=[0.8, 0.5], nodes=30, engine="loop")
        kwargs[field] = float("nan")
        with pytest.raises(RequestError, match=f"'{field}' must be finite"):
            protocol_request(**kwargs)

    def test_request_from_dict_rejects_non_finite_payload(self):
        # What json.loads('{"beta": Infinity}') hands the daemon.
        payload = {
            "kind": SWEEP,
            "options": [0.8, 0.5],
            "populations": [60],
            "beta": float("inf"),
        }
        with pytest.raises(RequestError, match="finite"):
            request_from_dict(payload)


class TestContentAddress:
    def test_key_is_stable_across_equivalent_spellings(self):
        via_list = sweep_request(**SWEEP_KWARGS)
        via_tuple = sweep_request(
            options=(0.8, 0.5), populations=(60,), horizon=8,
            replications=2, engine="loop",
        )
        assert via_list.key() == via_tuple.key()

    def test_key_distinguishes_different_workloads(self):
        base = sweep_request(**SWEEP_KWARGS)
        reseeded = sweep_request(**{**SWEEP_KWARGS, "seed": 1})
        assert base.key() != reseeded.key()

    def test_round_trip_through_dict_preserves_the_key(self):
        request = protocol_request(
            options=[0.9, 0.6], nodes=40, rounds=10, loss=0.2, replications=2
        )
        rebuilt = request_from_dict(request.to_dict())
        assert rebuilt == request
        assert rebuilt.key() == request.key()


class TestRequestFromDict:
    def test_rejects_unknown_kind(self):
        with pytest.raises(RequestError, match="unknown request kind"):
            request_from_dict({"kind": "montecarlo"})

    def test_rejects_unknown_fields(self):
        payload = sweep_request(**SWEEP_KWARGS).to_dict()
        payload["replciations"] = 100
        with pytest.raises(RequestError, match="replciations"):
            request_from_dict(payload)

    def test_rejects_non_object_payload(self):
        with pytest.raises(RequestError):
            request_from_dict(["sweep"])


class TestExecuteRequest:
    def test_sweep_matches_direct_run_sweep(self):
        request = sweep_request(**SWEEP_KWARGS)
        result = execute_request(request)
        prepared = prepare_request(request)
        _, table = run_sweep(
            prepared.name,
            prepared.grid,
            prepared.replication,
            replications=prepared.replications,
            seed=prepared.seed,
            base_parameters=prepared.base_parameters,
        )
        assert result.rows == [dict(row) for row in table.rows]
        assert "engine=loop" in result.description
        assert result.notes == ()

    def test_network_matches_direct_run_replications(self):
        request = network_request(
            options=[0.8, 0.5], topology="ring", size=60,
            horizon=8, replications=2, engine="loop",
        )
        result = execute_request(request)
        prepared = prepare_request(request)
        direct = run_replications(prepared.config, prepared.replication)
        summaries = {
            name: direct.summarize(name).as_dict()
            for name in direct.metric_names()
        }
        assert len(result.rows) == len(summaries)
        for row in result.rows:
            metric = row.pop("metric")
            assert row == summaries[metric]

    def test_prepared_request_names_the_engine(self):
        prepared = prepare_request(
            protocol_request(options=[0.8, 0.5], nodes=40, rounds=10, replications=2)
        )
        assert prepared.name == "protocol-batched"
        assert isinstance(prepared.config, ExperimentConfig)
        assert prepared.config.parameters["N"] == 40


class TestEngineOptionFields:
    """backend/dtype participate in the spec — and hence the content address."""

    def _sweep(self, **overrides):
        kwargs = dict(
            options=[0.8, 0.5], populations=[60], horizon=8, replications=2
        )
        kwargs.update(overrides)
        return sweep_request(**kwargs)

    def test_explicit_defaults_normalise_out_of_the_spec(self):
        implicit = self._sweep()
        explicit = self._sweep(backend="numpy", dtype="float64")
        assert "backend" not in explicit.spec
        assert "dtype" not in explicit.spec
        assert explicit.key() == implicit.key()

    def test_float32_gets_its_own_content_address(self):
        default = self._sweep()
        narrow = self._sweep(dtype="float32")
        assert narrow.spec["dtype"] == "float32"
        assert narrow.key() != default.key()

    def test_unknown_backend_and_dtype_rejected(self):
        with pytest.raises(RequestError, match="unknown backend"):
            self._sweep(backend="metal")
        with pytest.raises(RequestError, match="unknown dtype"):
            self._sweep(dtype="float16")

    def test_overrides_require_the_batched_engine(self):
        with pytest.raises(RequestError, match="batched engine"):
            self._sweep(engine="loop", dtype="float32")
        with pytest.raises(RequestError, match="batched engine"):
            protocol_request(
                options=[0.8, 0.5], nodes=40, engine="vectorized", dtype="float32"
            )

    def test_round_trip_preserves_the_options_and_key(self):
        request = network_request(
            options=[0.8, 0.5], topology="ring", size=60,
            horizon=8, replications=2, dtype="float32",
        )
        rebuilt = request_from_dict(request.to_dict())
        assert rebuilt == request
        assert rebuilt.spec["dtype"] == "float32"
        assert rebuilt.key() == request.key()

    def test_prepare_threads_dtype_into_the_parameters(self):
        sweep = prepare_request(self._sweep(dtype="float32"))
        assert sweep.base_parameters["dtype"] == "float32"
        network = prepare_request(
            network_request(
                options=[0.8, 0.5], topology="ring", size=60,
                replications=2, dtype="float32",
            )
        )
        assert network.config.parameters["dtype"] == "float32"
        protocol = prepare_request(
            protocol_request(
                options=[0.8, 0.5], nodes=40, rounds=8,
                replications=2, dtype="float32",
            )
        )
        assert protocol.config.parameters["dtype"] == "float32"

    def test_float32_sweep_executes_and_matches_direct_run(self):
        request = self._sweep(dtype="float32")
        result = execute_request(request)
        prepared = prepare_request(request)
        _, table = run_sweep(
            prepared.name,
            prepared.grid,
            prepared.replication,
            replications=prepared.replications,
            seed=prepared.seed,
            base_parameters=prepared.base_parameters,
        )
        assert result.rows == [dict(row) for row in table.rows]
