"""Daemon observability endpoints: /v1/metrics and /v1/jobs/<id>/trace.

The acceptance contract: the store counters in ``/v1/metrics`` are bridged
from the very same ``store.counters()`` snapshot ``/v1/stats`` serves, so
the two endpoints can never disagree about cache behaviour; every job's
spans are queryable by job id and join the snapshot's ``trace_id``.
"""

from __future__ import annotations

import json
from urllib import request as urllib_request

import pytest

from repro.obs import validate_record
from repro.runtime import ResultStore
from repro.service import ServiceClient, ServiceError, start_daemon, sweep_request

SWEEP_KWARGS = dict(
    options=[0.8, 0.5],
    populations=[60],
    horizon=8,
    replications=2,
    engine="loop",
)

STORE_COUNTERS = (
    "hits",
    "misses",
    "hot_hits",
    "cold_hits",
    "spills",
    "evictions",
    "compactions",
)
STORE_GAUGES = ("rows", "hot_entries", "hot_bytes", "segments")


@pytest.fixture()
def daemon(tmp_path):
    store = ResultStore(tmp_path / "service.sqlite")
    with start_daemon(store=store) as handle:
        yield handle
    store.close()


@pytest.fixture()
def client(daemon):
    return ServiceClient(daemon.url)


def parse_samples(text):
    """Prometheus text -> {sample name: value} for unlabelled samples."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if "{" not in name:
            samples[name] = float(value)
    return samples


class TestMetricsEndpoint:
    def test_metrics_store_counters_exactly_match_stats(self, client):
        # Warm the store through one cold and one cached job first so the
        # counters are non-trivial.
        client.run(sweep_request(**SWEEP_KWARGS))
        client.run(sweep_request(**SWEEP_KWARGS))
        stats = client.stats()["store"]
        samples = parse_samples(client.metrics())
        assert stats["hits"] > 0  # the second run was served from cache
        for counter in STORE_COUNTERS:
            assert samples[f"repro_store_{counter}_total"] == stats[counter], counter
        for gauge in STORE_GAUGES:
            assert samples[f"repro_store_{gauge}"] == stats[gauge], gauge

    def test_metrics_content_type_is_prometheus_text(self, daemon, client):
        client.run(sweep_request(**SWEEP_KWARGS))
        with urllib_request.urlopen(f"{daemon.url}/v1/metrics", timeout=10) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            body = resp.read().decode("utf-8")
        assert "# TYPE repro_job_queue_wait_seconds histogram" in body
        assert body.endswith("\n")

    def test_queue_wait_histogram_counts_every_job(self, client):
        client.run(sweep_request(**SWEEP_KWARGS))
        samples = parse_samples(client.metrics())
        assert samples["repro_job_queue_wait_seconds_count"] >= 1
        queue = client.stats()["queue"]
        assert queue["queue_wait_p50_ms"] is not None
        assert queue["queue_wait_p99_ms"] >= queue["queue_wait_p50_ms"]

    def test_queue_wait_quantiles_none_before_any_job(self, client):
        queue = client.stats()["queue"]
        assert queue["queue_wait_p50_ms"] is None
        assert queue["queue_wait_p99_ms"] is None


class TestJobTraceEndpoint:
    def test_job_spans_are_queryable_by_job_id(self, client):
        submitted = client.submit(sweep_request(**SWEEP_KWARGS))
        client.wait(submitted["job_id"])
        status = client.status(submitted["job_id"])
        trace = client.trace(submitted["job_id"])
        assert trace["job_id"] == submitted["job_id"]
        assert trace["trace_id"] == status["trace_id"]
        assert trace["truncated"] is False
        names = {record["name"] for record in trace["records"]}
        assert {"job", "run_plan", "shard"} <= names
        for record in trace["records"]:
            assert validate_record(record) == []
            assert record["trace"] == trace["trace_id"]

    def test_job_snapshot_reports_monotonic_durations(self, client):
        submitted = client.submit(sweep_request(**SWEEP_KWARGS))
        client.wait(submitted["job_id"])
        status = client.status(submitted["job_id"])
        assert status["queue_wait_s"] >= 0.0
        assert status["run_s"] > 0.0
        assert status["total_s"] >= status["run_s"]
        assert len(status["trace_id"]) == 32

    def test_identical_jobs_share_one_trace_id(self, client):
        first = client.submit(sweep_request(**SWEEP_KWARGS))
        client.wait(first["job_id"])
        second = client.submit(sweep_request(**SWEEP_KWARGS))
        client.wait(second["job_id"])
        assert (
            client.status(first["job_id"])["trace_id"]
            == client.status(second["job_id"])["trace_id"]
        )

    def test_campaign_jobs_record_node_spans(self, client):
        spec = {
            "name": "traced-api",
            "nodes": [
                {
                    "id": "sim",
                    "kind": "simulate",
                    "request": {"kind": "sweep", **SWEEP_KWARGS},
                },
                {"id": "stats", "kind": "analyse", "inputs": ["sim"]},
            ],
        }
        submitted = client.submit_campaign(spec)
        client.wait(submitted["job_id"])
        trace = client.trace(submitted["job_id"])
        names = {record["name"] for record in trace["records"]}
        assert {"job", "campaign", "campaign_node", "shard"} <= names

    def test_unknown_job_trace_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.trace("not-a-job")
        assert excinfo.value.status == 404


class TestTraceOut:
    def test_trace_out_tees_spans_to_jsonl(self, tmp_path):
        path = tmp_path / "daemon-trace.jsonl"
        with start_daemon(trace_out=str(path)) as handle:
            client = ServiceClient(handle.url)
            submitted = client.submit(sweep_request(**SWEEP_KWARGS))
            client.wait(submitted["job_id"])
            buffered = client.trace(submitted["job_id"])["records"]
        records = [
            json.loads(line) for line in path.read_text().splitlines() if line
        ]
        assert records  # the file saw the same spans the memory sink did
        for record in records:
            assert validate_record(record) == []
        assert {r["span"] for r in records} == {r["span"] for r in buffered}
