"""End-to-end HTTP tests: daemon + client against a live ephemeral-port server.

The acceptance contract from the service issue:

* rows fetched over HTTP are bit-identical to the same sweep run through
  the ``repro sweep`` CLI,
* re-submitting an identical job is served entirely from the result store
  (0 cache misses), and
* two concurrent identical submissions deduplicate onto one computation,
  while a full queue answers 429.
"""

from __future__ import annotations

import threading

import pytest

from repro import __version__
from repro.cli import main as cli_main
from repro.experiments import read_csv
from repro.runtime import ResultStore
from repro.service import (
    JobFailed,
    ServiceClient,
    ServiceError,
    start_daemon,
    sweep_request,
)

SWEEP_KWARGS = dict(
    options=[0.8, 0.5],
    populations=[60],
    horizon=8,
    replications=2,
    engine="loop",
)

SWEEP_CLI = [
    "sweep",
    "--options", "0.8", "0.5",
    "--populations", "60",
    "--horizon", "8",
    "--replications", "2",
    "--engine", "loop",
]


@pytest.fixture()
def daemon(tmp_path):
    store = ResultStore(tmp_path / "service.sqlite")
    with start_daemon(store=store) as handle:
        yield handle
    store.close()


@pytest.fixture()
def client(daemon):
    return ServiceClient(daemon.url)


class GatedExecute:
    """Wraps the service execute so tests control when a job finishes."""

    def __init__(self, inner):
        self.inner = inner
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = 0

    def __call__(self, request):
        self.calls += 1
        self.started.set()
        assert self.release.wait(timeout=30.0), "test never released the job"
        return self.inner(request)


def _gate(handle):
    gate = GatedExecute(handle.service.queue._execute)
    handle.service.queue._execute = gate
    return gate


class TestHealthAndStats:
    def test_healthz(self, client):
        assert client.healthz() == {"status": "ok", "version": __version__}

    def test_stats_expose_store_and_queue(self, client):
        stats = client.stats()
        assert stats["version"] == __version__
        assert stats["store"]["attached"]
        assert stats["store"]["rows"] == 0
        assert stats["queue"]["capacity"] == 16
        assert stats["queue"]["completed"] == 0

    def test_stats_expose_tier_counters(self, client):
        store_stats = client.stats()["store"]
        for counter in (
            "hits",
            "misses",
            "hot_hits",
            "cold_hits",
            "spills",
            "evictions",
            "compactions",
            "hot_entries",
            "hot_bytes",
            "segments",
        ):
            assert counter in store_stats, counter
            assert store_stats[counter] == 0

    def test_warm_job_shows_up_in_tier_counters(self, client):
        request = sweep_request(**SWEEP_KWARGS)
        client.wait(client.submit(request)["job_id"])
        client.wait(client.submit(request)["job_id"])
        store_stats = client.stats()["store"]
        # The cold job spilled its tasks; the warm one replayed them from
        # the hot tier (they were admitted on put).
        assert store_stats["spills"] == 2
        assert store_stats["hits"] == 2
        assert store_stats["hot_hits"] == 2
        assert store_stats["hot_entries"] == 2
        assert store_stats["segments"] >= 1


class TestEndToEnd:
    def test_http_rows_bit_identical_to_the_cli(self, client, tmp_path):
        target = tmp_path / "cli.csv"
        assert cli_main(SWEEP_CLI + ["--output", str(target)]) == 0
        cli_rows = [dict(row) for row in read_csv(target).rows]

        http_rows = client.run(sweep_request(**SWEEP_KWARGS))

        assert len(http_rows) == len(cli_rows) == 1
        for http_row, cli_row in zip(http_rows, cli_rows):
            assert set(http_row) == set(cli_row)
            for column, cli_value in cli_row.items():
                if column == "qualities":
                    # the CSV keeps the tuple's repr; JSON carries the list
                    assert cli_value == str(tuple(http_row[column]))
                else:
                    assert http_row[column] == cli_value
                    assert type(http_row[column]) is type(cli_value)

    def test_warm_resubmission_is_served_from_cache(self, client):
        request = sweep_request(**SWEEP_KWARGS)
        cold = client.wait(client.submit(request)["job_id"])
        assert cold["cache_misses"] == 2  # one task per (point, seed)
        assert cold["cache_hits"] == 0

        warm = client.wait(client.submit(request)["job_id"])
        assert warm["cache_misses"] == 0
        assert warm["cache_hits"] == 2
        assert warm["rows"] == cold["rows"]
        assert warm["id"] != cold["id"]  # a new job, served by the store

        stats = client.stats()
        assert stats["store"]["rows"] == 2
        assert stats["queue"]["completed"] == 2

    def test_concurrent_identical_submissions_share_one_computation(
        self, daemon, client
    ):
        gate = _gate(daemon)
        request = sweep_request(**SWEEP_KWARGS)

        first = client.submit(request)
        assert gate.started.wait(timeout=30.0)
        second = client.submit(request)

        assert first["attached"] is False
        assert second["attached"] is True
        assert second["job_id"] == first["job_id"]

        gate.release.set()
        result = client.wait(first["job_id"])
        assert gate.calls == 1
        assert result["subscribers"] == 2
        assert client.stats()["queue"]["deduplicated"] == 1


class TestBackPressure:
    def test_full_queue_returns_429(self, tmp_path):
        with start_daemon(job_workers=1, queue_capacity=1) as handle:
            gate = _gate(handle)
            client = ServiceClient(handle.url)

            blocker = client.submit(sweep_request(**{**SWEEP_KWARGS, "seed": 1}))
            assert gate.started.wait(timeout=30.0)
            queued = client.submit(sweep_request(**{**SWEEP_KWARGS, "seed": 2}))

            with pytest.raises(ServiceError) as excinfo:
                client.submit(sweep_request(**{**SWEEP_KWARGS, "seed": 3}))
            assert excinfo.value.status == 429
            assert "capacity" in str(excinfo.value)

            gate.release.set()
            client.wait(blocker["job_id"])
            client.wait(queued["job_id"])


class TestErrorSurface:
    def test_malformed_request_is_a_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"kind": "montecarlo"})
        assert excinfo.value.status == 400
        assert "unknown request kind" in str(excinfo.value)

    def test_unknown_field_is_a_400(self, client):
        payload = sweep_request(**SWEEP_KWARGS).to_dict()
        payload["replciations"] = 100
        with pytest.raises(ServiceError) as excinfo:
            client.submit(payload)
        assert excinfo.value.status == 400
        assert "replciations" in str(excinfo.value)

    def test_unknown_job_and_path_are_404(self, client):
        for call in (
            lambda: client.status("job-999"),
            lambda: client.result("job-999"),
            lambda: client._call("/nope"),
        ):
            with pytest.raises(ServiceError) as excinfo:
                call()
            assert excinfo.value.status == 404

    def test_pending_result_is_a_202(self, daemon, client):
        gate = _gate(daemon)
        submitted = client.submit(sweep_request(**SWEEP_KWARGS))
        assert gate.started.wait(timeout=30.0)
        with pytest.raises(ServiceError) as excinfo:
            client.result(submitted["job_id"])
        assert excinfo.value.status == 202
        gate.release.set()
        client.wait(submitted["job_id"])

    def test_failed_job_reports_500(self, daemon, client):
        def explode(request):
            raise RuntimeError("engine blew up")

        daemon.service.queue._execute = explode
        submitted = client.submit(sweep_request(**SWEEP_KWARGS))
        with pytest.raises(JobFailed, match="engine blew up"):
            client.wait(submitted["job_id"])
        with pytest.raises(ServiceError) as excinfo:
            client.result(submitted["job_id"])
        assert excinfo.value.status == 500
