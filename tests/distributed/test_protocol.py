"""Tests for the distributed learning protocol."""

import numpy as np
import pytest

from repro.distributed import (
    CrashFailureModel,
    DistributedLearningProtocol,
    LossyTransport,
)
from repro.environments import BernoulliEnvironment


class TestProtocolBasics:
    def test_initialisation(self):
        protocol = DistributedLearningProtocol(50, 3, rng=0)
        assert len(protocol.nodes) == 50
        assert len(protocol.alive_nodes()) == 50
        assert protocol.popularity().sum() == pytest.approx(1.0)

    def test_round_counter_advances(self):
        protocol = DistributedLearningProtocol(20, 2, rng=0)
        protocol.run_round(np.array([1, 0]))
        protocol.run_round(np.array([0, 1]))
        assert protocol.round_number == 2

    def test_rewards_validated(self):
        protocol = DistributedLearningProtocol(20, 2, rng=0)
        with pytest.raises(ValueError):
            protocol.run_round(np.array([1, 0, 1]))

    def test_run_result_shapes(self):
        env = BernoulliEnvironment([0.8, 0.4], rng=1)
        protocol = DistributedLearningProtocol(100, 2, rng=2)
        result = protocol.run(env, 40)
        assert result.rounds == 40
        assert result.popularity_matrix.shape == (40, 2)
        assert result.reward_matrix.shape == (40, 2)
        assert result.alive_series.shape == (40,)

    def test_run_rejects_mismatched_environment(self):
        env = BernoulliEnvironment([0.8, 0.4, 0.2], rng=1)
        protocol = DistributedLearningProtocol(50, 2, rng=2)
        with pytest.raises(ValueError):
            protocol.run(env, 5)

    def test_messages_are_exchanged(self):
        env = BernoulliEnvironment([0.8, 0.4], rng=3)
        protocol = DistributedLearningProtocol(100, 2, exploration_rate=0.05, rng=4)
        result = protocol.run(env, 20)
        assert result.transport_stats["sent"] > 0
        assert result.transport_stats["delivered"] > 0

    def test_protocol_learns_best_option(self):
        env = BernoulliEnvironment([0.9, 0.2], rng=5)
        protocol = DistributedLearningProtocol(400, 2, exploration_rate=0.03, rng=6)
        result = protocol.run(env, 300)
        assert result.best_option_share > 0.6
        assert result.regret < 0.35


class TestUnreliableCommunication:
    def test_message_loss_triggers_fallback_exploration(self):
        env = BernoulliEnvironment([0.8, 0.4], rng=0)
        protocol = DistributedLearningProtocol(
            100, 2, transport=LossyTransport(loss_rate=0.5, rng=1), rng=2
        )
        result = protocol.run(env, 30)
        assert result.fallback_explorations > 0
        assert result.transport_stats["dropped"] > 0

    def test_protocol_still_learns_with_moderate_loss(self):
        env = BernoulliEnvironment([0.9, 0.2], rng=3)
        protocol = DistributedLearningProtocol(
            300, 2, exploration_rate=0.03,
            transport=LossyTransport(loss_rate=0.2, rng=4), rng=5,
        )
        result = protocol.run(env, 300)
        assert result.best_option_share > 0.5

    def test_full_loss_degrades_to_signal_only_learning(self):
        env = BernoulliEnvironment([0.9, 0.2], rng=6)
        protocol = DistributedLearningProtocol(
            200, 2, transport=LossyTransport(loss_rate=1.0, rng=7), rng=8
        )
        result = protocol.run(env, 100)
        # No imitation possible, but local signals still give better-than-random play.
        assert result.best_option_share > 0.5


class TestCrashes:
    def test_mass_failure_reduces_alive_count(self):
        env = BernoulliEnvironment([0.8, 0.4], rng=0)
        protocol = DistributedLearningProtocol(
            100, 2,
            failure_model=CrashFailureModel(mass_failure_round=10, mass_failure_fraction=0.4, rng=1),
            rng=2,
        )
        result = protocol.run(env, 30)
        assert result.alive_series[0] == 100
        assert result.alive_series[-1] == pytest.approx(60, abs=1)

    def test_survivors_keep_learning_after_mass_failure(self):
        env = BernoulliEnvironment([0.9, 0.2], rng=3)
        protocol = DistributedLearningProtocol(
            400, 2, exploration_rate=0.03,
            failure_model=CrashFailureModel(mass_failure_round=50, mass_failure_fraction=0.5, rng=4),
            rng=5,
        )
        result = protocol.run(env, 300)
        assert result.popularity_matrix[-30:, 0].mean() > 0.6

    def test_all_nodes_crashed_is_handled(self):
        env = BernoulliEnvironment([0.8, 0.4], rng=6)
        protocol = DistributedLearningProtocol(
            20, 2,
            failure_model=CrashFailureModel(per_round_crash_probability=1.0, rng=7),
            rng=8,
        )
        result = protocol.run(env, 5)
        assert len(protocol.alive_nodes()) == 0
        assert result.rounds == 5
