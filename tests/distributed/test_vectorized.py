"""Unit tests for the vectorised protocol engines."""

import numpy as np
import pytest

from repro.core.adoption import SymmetricAdoptionRule
from repro.distributed import (
    BatchedProtocol,
    CrashFailureModel,
    VectorizedProtocol,
)
from repro.environments import BernoulliEnvironment


class TestVectorizedProtocolBasics:
    def test_initialisation(self):
        protocol = VectorizedProtocol(50, 3, rng=0)
        assert protocol.num_nodes == 50
        assert protocol.num_options == 3
        assert protocol.num_alive() == 50
        assert protocol.popularity().sum() == pytest.approx(1.0)
        # Every node starts committed, like the loop engine's nodes.
        assert np.all(protocol.choices() >= 0)
        assert np.all(protocol.alive())

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            VectorizedProtocol(0, 2)
        with pytest.raises(ValueError):
            VectorizedProtocol(10, 2, loss_rate=1.5)
        with pytest.raises(ValueError):
            VectorizedProtocol(10, 2, exploration_rate=-0.1)
        with pytest.raises(ValueError):
            VectorizedProtocol(10, 2, max_query_attempts=0)

    def test_round_counter_advances(self):
        protocol = VectorizedProtocol(20, 2, rng=0)
        protocol.run_round(np.array([1, 0]))
        protocol.run_round(np.array([0, 1]))
        assert protocol.round_number == 2

    def test_rewards_validated(self):
        protocol = VectorizedProtocol(20, 2, rng=0)
        with pytest.raises(ValueError):
            protocol.run_round(np.array([1, 0, 1]))
        with pytest.raises(ValueError):
            protocol.run_round(np.array([1, 0.5]))

    def test_run_result_shapes(self):
        env = BernoulliEnvironment([0.8, 0.4], rng=1)
        protocol = VectorizedProtocol(100, 2, rng=2)
        result = protocol.run(env, 40)
        assert result.rounds == 40
        assert result.popularity_matrix.shape == (40, 2)
        assert result.reward_matrix.shape == (40, 2)
        assert result.alive_series.shape == (40,)

    def test_run_rejects_mismatched_environment(self):
        env = BernoulliEnvironment([0.8, 0.4, 0.2], rng=1)
        protocol = VectorizedProtocol(50, 2, rng=2)
        with pytest.raises(ValueError):
            protocol.run(env, 5)

    def test_protocol_learns_best_option(self):
        env = BernoulliEnvironment([0.9, 0.2], rng=5)
        protocol = VectorizedProtocol(400, 2, exploration_rate=0.03, rng=6)
        result = protocol.run(env, 300)
        assert result.best_option_share > 0.6
        assert result.regret < 0.35

    def test_single_node_always_explores(self):
        protocol = VectorizedProtocol(1, 3, exploration_rate=0.0, rng=0)
        for _ in range(5):
            protocol.run_round(np.array([1, 1, 1]))
        # A lone node has no peer; it must explore rather than deadlock,
        # without counting as a communication fallback.
        assert protocol.fallback_explorations == 0
        assert protocol.transport_stats()["sent"] == 0

    def test_all_nodes_crashed_is_handled(self):
        env = BernoulliEnvironment([0.8, 0.4], rng=6)
        protocol = VectorizedProtocol(
            20,
            2,
            failure_model=CrashFailureModel(per_round_crash_probability=1.0, rng=7),
            rng=8,
        )
        result = protocol.run(env, 5)
        assert protocol.num_alive() == 0
        assert result.rounds == 5
        # Popularity is uniform once nobody is alive.
        np.testing.assert_allclose(result.popularity_matrix[-1], [0.5, 0.5])

    def test_loss_triggers_fallback_exploration(self):
        env = BernoulliEnvironment([0.8, 0.4], rng=0)
        protocol = VectorizedProtocol(100, 2, loss_rate=0.5, rng=2)
        result = protocol.run(env, 30)
        assert result.fallback_explorations > 0
        assert result.transport_stats["dropped"] > 0


class TestBatchedProtocolBasics:
    def test_initialisation(self):
        protocol = BatchedProtocol(40, 3, num_replicates=5, rng=0)
        assert protocol.num_nodes == 40
        assert protocol.num_options == 3
        assert protocol.num_replicates == 5
        assert protocol.choices().shape == (5, 40)
        assert np.all(protocol.alive_counts() == 40)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BatchedProtocol(10, 2, num_replicates=0)
        with pytest.raises(ValueError):
            BatchedProtocol(10, 2, num_replicates=2, loss_rate=-0.2)
        with pytest.raises(ValueError):
            BatchedProtocol(10, 2, num_replicates=2, mass_failure_round=-1)
        with pytest.raises(ValueError):
            BatchedProtocol(10, 2, num_replicates=2, mass_failure_fraction=1.2)

    def test_rewards_shapes_and_broadcast(self):
        protocol = BatchedProtocol(20, 2, num_replicates=3, rng=0)
        protocol.run_round(np.array([1, 0]))  # shared (m,) vector broadcasts
        protocol.run_round(np.ones((3, 2), dtype=np.int64))
        assert protocol.round_number == 2
        with pytest.raises(ValueError):
            protocol.run_round(np.ones((2, 2), dtype=np.int64))
        with pytest.raises(ValueError):
            protocol.run_round(np.full((3, 2), 0.5))

    def test_run_result_shapes_and_metrics(self):
        env = BernoulliEnvironment([0.85, 0.45], rng=1)
        protocol = BatchedProtocol(60, 2, num_replicates=4, loss_rate=0.1, rng=2)
        result = protocol.run(env, 25)
        assert result.rounds == 25
        assert result.num_replicates == 4
        assert result.trajectory.popularity_tensor().shape == (25, 4, 2)
        assert result.alive_matrix.shape == (25, 4)
        assert result.regret().shape == (4,)
        assert result.best_option_share().shape == (4,)
        assert np.all(result.best_option_share() >= 0)
        assert np.all(result.best_option_share() <= 1)

    def test_run_rejects_mismatched_environment(self):
        env = BernoulliEnvironment([0.8, 0.4, 0.2], rng=1)
        protocol = BatchedProtocol(30, 2, num_replicates=2, rng=2)
        with pytest.raises(ValueError):
            protocol.run(env, 5)

    def test_replicates_evolve_independently(self):
        protocol = BatchedProtocol(50, 2, num_replicates=8, rng=0)
        env = BernoulliEnvironment([0.9, 0.2], rng=1)
        result = protocol.run(env, 40)
        terminal = result.trajectory.popularity_tensor()[-1, :, 0]
        # Independent replicates should not all land on the same popularity.
        assert len(np.unique(terminal)) > 1

    def test_batched_fleet_learns_best_option(self):
        env = BernoulliEnvironment([0.9, 0.2], rng=3)
        protocol = BatchedProtocol(
            300,
            2,
            num_replicates=6,
            adoption_rule=SymmetricAdoptionRule(0.62),
            exploration_rate=0.03,
            loss_rate=0.1,
            rng=4,
        )
        result = protocol.run(env, 250)
        assert result.best_option_share().mean() > 0.6

    def test_per_round_crashes_thin_every_replicate(self):
        protocol = BatchedProtocol(
            200, 2, num_replicates=4, per_round_crash_probability=0.1, rng=5
        )
        env = BernoulliEnvironment([0.8, 0.4], rng=6)
        result = protocol.run(env, 20)
        assert np.all(result.alive_matrix[-1] < 200)
        assert np.all(np.diff(result.alive_matrix.astype(int), axis=0) <= 0)

    def test_survivors_keep_learning_after_mass_failure(self):
        env = BernoulliEnvironment([0.9, 0.2], rng=3)
        protocol = BatchedProtocol(
            400,
            2,
            num_replicates=4,
            exploration_rate=0.03,
            mass_failure_round=50,
            mass_failure_fraction=0.5,
            rng=5,
        )
        result = protocol.run(env, 300)
        late_share = result.trajectory.popularity_tensor()[-30:, :, 0].mean()
        assert late_share > 0.6
