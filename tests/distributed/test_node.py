"""Tests for protocol nodes."""

import numpy as np
import pytest

from repro.core.adoption import GeneralAdoptionRule, SymmetricAdoptionRule
from repro.distributed import ChoiceQuery, ProtocolNode


def make_node(node_id=0, beta=0.6, initial_option=1):
    return ProtocolNode(
        node_id=node_id,
        num_options=3,
        adoption_rule=SymmetricAdoptionRule(beta),
        initial_option=initial_option,
    )


class TestConstruction:
    def test_initial_state(self):
        node = make_node()
        assert node.current_option == 1
        assert node.considered_option is None
        assert not node.crashed

    def test_rejects_option_out_of_range(self):
        with pytest.raises(ValueError):
            ProtocolNode(0, 2, SymmetricAdoptionRule(0.6), initial_option=5)

    def test_rejects_non_rule(self):
        with pytest.raises(TypeError):
            ProtocolNode(0, 2, "rule")


class TestMessaging:
    def test_query_round_trip(self):
        alice, bob = make_node(0, initial_option=2), make_node(1, initial_option=0)
        query = alice.make_query(peer=1, round_number=7)
        reply = bob.handle_query(query)
        assert reply is not None
        assert reply.recipient == 0 and reply.option == 0 and reply.round_number == 7

    def test_crashed_node_does_not_reply(self):
        node = make_node()
        node.crash()
        assert node.handle_query(ChoiceQuery(1, 0, 0)) is None

    def test_handle_reply_sets_considered_option(self):
        node = make_node()
        reply = make_node(1, initial_option=2).handle_query(node.make_query(1, 0))
        assert node.handle_reply(reply, np.random.default_rng(0)) is True
        assert node.considered_option == 2

    def test_reply_from_sitting_out_peer_leaves_node_unsatisfied(self):
        node = make_node()
        peer = make_node(1, initial_option=None)
        reply = peer.handle_query(node.make_query(1, 0))
        assert node.handle_reply(reply, np.random.default_rng(0)) is False
        assert node.considered_option is None

    def test_crashed_node_ignores_reply(self):
        node = make_node()
        reply = make_node(1, initial_option=2).handle_query(node.make_query(1, 0))
        node.crash()
        assert node.handle_reply(reply, np.random.default_rng(0)) is False

    def test_explore_sets_considered_option(self):
        node = make_node()
        node.explore(np.random.default_rng(0))
        assert node.considered_option in (0, 1, 2)


class TestAdoptStep:
    def test_adopt_with_certainty(self):
        node = ProtocolNode(0, 2, GeneralAdoptionRule(alpha=0.0, beta=1.0))
        node.considered_option = 1
        node.adopt_step(1, np.random.default_rng(0))
        assert node.current_option == 1
        assert node.considered_option is None

    def test_reject_with_certainty(self):
        node = ProtocolNode(0, 2, GeneralAdoptionRule(alpha=0.0, beta=1.0), initial_option=0)
        node.considered_option = 1
        node.adopt_step(0, np.random.default_rng(0))
        assert node.current_option is None

    def test_adopt_rate_matches_beta(self):
        rng = np.random.default_rng(1)
        adoptions = 0
        for _ in range(2000):
            node = make_node(beta=0.7)
            node.considered_option = 0
            node.adopt_step(1, rng)
            adoptions += node.current_option is not None
        assert adoptions / 2000 == pytest.approx(0.7, abs=0.03)

    def test_no_considered_option_is_noop(self):
        node = make_node()
        node.adopt_step(1, np.random.default_rng(0))
        assert node.current_option == 1

    def test_crashed_node_ignores_adopt(self):
        node = make_node()
        node.considered_option = 0
        node.crash()
        node.adopt_step(1, np.random.default_rng(0))
        assert node.considered_option is None
        assert node.crashed

    def test_invalid_signal_rejected(self):
        node = make_node()
        node.considered_option = 0
        with pytest.raises(ValueError):
            node.adopt_step(2, np.random.default_rng(0))
