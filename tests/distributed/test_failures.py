"""Tests for failure models."""

import pytest

from repro.distributed import CrashFailureModel, NoFailures


class TestNoFailures:
    def test_never_crashes(self):
        model = NoFailures()
        assert model.crashes_for_round(0, list(range(10))) == []
        assert model.crashes_for_round(100, list(range(10))) == []


class TestCrashFailureModel:
    def test_zero_probability_never_crashes(self):
        model = CrashFailureModel(per_round_crash_probability=0.0, rng=0)
        assert model.crashes_for_round(0, list(range(50))) == []

    def test_certain_probability_crashes_everyone(self):
        model = CrashFailureModel(per_round_crash_probability=1.0, rng=0)
        assert model.crashes_for_round(0, list(range(10))) == list(range(10))

    def test_mass_failure_only_at_scheduled_round(self):
        model = CrashFailureModel(
            mass_failure_round=5, mass_failure_fraction=0.5, rng=0
        )
        assert model.crashes_for_round(4, list(range(100))) == []
        crashed = model.crashes_for_round(5, list(range(100)))
        assert len(crashed) == 50
        assert model.crashes_for_round(6, list(range(100))) == []

    def test_mass_failure_fraction_respected(self):
        model = CrashFailureModel(mass_failure_round=0, mass_failure_fraction=0.3, rng=1)
        crashed = model.crashes_for_round(0, list(range(200)))
        assert len(crashed) == 60

    def test_crashed_nodes_are_subset_of_alive(self):
        model = CrashFailureModel(per_round_crash_probability=0.5, rng=2)
        alive = [3, 7, 11, 19]
        crashed = model.crashes_for_round(0, alive)
        assert set(crashed) <= set(alive)

    def test_empty_alive_list(self):
        model = CrashFailureModel(per_round_crash_probability=1.0, rng=0)
        assert model.crashes_for_round(0, []) == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CrashFailureModel(per_round_crash_probability=1.5)
        with pytest.raises(ValueError):
            CrashFailureModel(mass_failure_round=-1)
        with pytest.raises(ValueError):
            CrashFailureModel(mass_failure_fraction=2.0)


class TestMassCrashRoundBoundary:
    def test_boundary_rounds_do_not_trigger_the_mass_failure(self):
        """The scheduled round matches exactly — not off by one either way."""
        for scheduled in (0, 1, 7):
            model = CrashFailureModel(
                mass_failure_round=scheduled, mass_failure_fraction=0.5, rng=0
            )
            for round_number in range(10):
                crashed = model.crashes_for_round(round_number, list(range(40)))
                if round_number == scheduled:
                    assert len(crashed) == 20
                else:
                    assert crashed == []

    def test_mass_failure_applies_to_the_currently_alive_set(self):
        """The fraction is of *survivors* at the scheduled round, not of N."""
        model = CrashFailureModel(mass_failure_round=4, mass_failure_fraction=0.5, rng=1)
        survivors = list(range(0, 100, 3))  # 34 nodes left out of 100
        crashed = model.crashes_for_round(4, survivors)
        assert len(crashed) == 17
        assert set(crashed) <= set(survivors)

    def test_fraction_rounds_to_nearest_count(self):
        model = CrashFailureModel(mass_failure_round=0, mass_failure_fraction=0.25, rng=2)
        # 0.25 * 10 = 2.5 -> round() -> 2 (banker's rounding on the half).
        assert len(model.crashes_for_round(0, list(range(10)))) == 2
        model = CrashFailureModel(mass_failure_round=0, mass_failure_fraction=0.26, rng=3)
        assert len(model.crashes_for_round(0, list(range(10)))) == 3

    def test_full_fraction_kills_every_survivor_once(self):
        model = CrashFailureModel(mass_failure_round=2, mass_failure_fraction=1.0, rng=4)
        alive = [5, 9, 13]
        assert model.crashes_for_round(2, alive) == sorted(alive)
        # The mass failure is one-off: nothing further crashes afterwards.
        assert model.crashes_for_round(3, []) == []

    def test_mass_and_per_round_crashes_combine_without_duplicates(self):
        model = CrashFailureModel(
            per_round_crash_probability=0.5,
            mass_failure_round=0,
            mass_failure_fraction=0.5,
            rng=5,
        )
        alive = list(range(30))
        crashed = model.crashes_for_round(0, alive)
        assert len(crashed) == len(set(crashed))
        assert len(crashed) >= 15  # at least the mass-failure victims
        assert set(crashed) <= set(alive)
