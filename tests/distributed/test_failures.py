"""Tests for failure models."""

import pytest

from repro.distributed import CrashFailureModel, NoFailures


class TestNoFailures:
    def test_never_crashes(self):
        model = NoFailures()
        assert model.crashes_for_round(0, list(range(10))) == []
        assert model.crashes_for_round(100, list(range(10))) == []


class TestCrashFailureModel:
    def test_zero_probability_never_crashes(self):
        model = CrashFailureModel(per_round_crash_probability=0.0, rng=0)
        assert model.crashes_for_round(0, list(range(50))) == []

    def test_certain_probability_crashes_everyone(self):
        model = CrashFailureModel(per_round_crash_probability=1.0, rng=0)
        assert model.crashes_for_round(0, list(range(10))) == list(range(10))

    def test_mass_failure_only_at_scheduled_round(self):
        model = CrashFailureModel(
            mass_failure_round=5, mass_failure_fraction=0.5, rng=0
        )
        assert model.crashes_for_round(4, list(range(100))) == []
        crashed = model.crashes_for_round(5, list(range(100)))
        assert len(crashed) == 50
        assert model.crashes_for_round(6, list(range(100))) == []

    def test_mass_failure_fraction_respected(self):
        model = CrashFailureModel(mass_failure_round=0, mass_failure_fraction=0.3, rng=1)
        crashed = model.crashes_for_round(0, list(range(200)))
        assert len(crashed) == 60

    def test_crashed_nodes_are_subset_of_alive(self):
        model = CrashFailureModel(per_round_crash_probability=0.5, rng=2)
        alive = [3, 7, 11, 19]
        crashed = model.crashes_for_round(0, alive)
        assert set(crashed) <= set(alive)

    def test_empty_alive_list(self):
        model = CrashFailureModel(per_round_crash_probability=1.0, rng=0)
        assert model.crashes_for_round(0, []) == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CrashFailureModel(per_round_crash_probability=1.5)
        with pytest.raises(ValueError):
            CrashFailureModel(mass_failure_round=-1)
        with pytest.raises(ValueError):
            CrashFailureModel(mass_failure_fraction=2.0)
