"""Tests for the lossy transport layer."""

import pytest

from repro.distributed import ChoiceQuery, LossyTransport


def make_message(round_number=0):
    return ChoiceQuery(sender=0, recipient=1, round_number=round_number)


class TestPerfectTransport:
    def test_delivers_in_same_round(self):
        transport = LossyTransport(rng=0)
        transport.send(make_message(round_number=5))
        delivered = transport.deliver(5)
        assert len(delivered) == 1
        assert transport.stats.delivered == 1

    def test_nothing_for_other_rounds(self):
        transport = LossyTransport(rng=0)
        transport.send(make_message(round_number=5))
        assert transport.deliver(4) == []
        assert transport.pending() == 1

    def test_deliver_clears_mailbox(self):
        transport = LossyTransport(rng=0)
        transport.send(make_message(round_number=2))
        transport.deliver(2)
        assert transport.deliver(2) == []


class TestLossAndDelay:
    def test_full_loss_drops_everything(self):
        transport = LossyTransport(loss_rate=1.0, rng=0)
        for _ in range(20):
            transport.send(make_message())
        assert transport.deliver(0) == []
        assert transport.stats.dropped == 20

    def test_full_delay_shifts_by_one_round(self):
        transport = LossyTransport(delay_rate=1.0, rng=0)
        transport.send(make_message(round_number=3))
        assert transport.deliver(3) == []
        assert len(transport.deliver(4)) == 1
        assert transport.stats.delayed == 1

    def test_loss_rate_statistics(self):
        transport = LossyTransport(loss_rate=0.3, rng=1)
        for _ in range(3000):
            transport.send(make_message())
        assert transport.stats.dropped / transport.stats.sent == pytest.approx(0.3, abs=0.03)

    def test_stats_as_dict(self):
        transport = LossyTransport(rng=0)
        transport.send(make_message())
        transport.deliver(0)
        stats = transport.stats.as_dict()
        assert stats["sent"] == 1 and stats["delivered"] == 1

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            LossyTransport(loss_rate=1.5)
        with pytest.raises(ValueError):
            LossyTransport(delay_rate=-0.1)

    def test_deliver_rejects_negative_round(self):
        with pytest.raises(ValueError):
            LossyTransport().deliver(-1)


class TestDeliveryOrdering:
    def test_same_round_messages_delivered_in_send_order(self):
        transport = LossyTransport(rng=0)
        messages = [
            ChoiceQuery(sender=sender, recipient=9, round_number=1)
            for sender in range(5)
        ]
        for message in messages:
            transport.send(message)
        assert transport.deliver(1) == messages

    def test_delayed_message_arrives_before_next_rounds_sends(self):
        """A message delayed out of round r is queued into mailbox r+1 at
        *send* time, so it precedes everything sent during round r+1.

        Seed 3 draws (loss, delay) pairs that delay the first message and
        leave the second on time at ``delay_rate=0.5``.
        """
        transport = LossyTransport(delay_rate=0.5, rng=3)
        late = make_message(round_number=3)
        fresh = ChoiceQuery(sender=7, recipient=8, round_number=4)
        transport.send(late)
        assert transport.deliver(3) == []  # the late message skipped round 3
        transport.send(fresh)
        assert transport.deliver(4) == [late, fresh]
        assert transport.stats.delayed == 1

    def test_undelivered_rounds_accumulate_as_pending(self):
        transport = LossyTransport(delay_rate=1.0, rng=0)
        for round_number in (0, 1, 2):
            transport.send(make_message(round_number=round_number))
        assert transport.pending() == 3
        transport.deliver(1)  # the round-0 message, delayed into round 1
        assert transport.pending() == 2


class TestStatsAccounting:
    def test_sent_equals_delivered_plus_dropped_plus_pending(self):
        transport = LossyTransport(loss_rate=0.3, delay_rate=0.4, rng=5)
        for round_number in range(50):
            for _ in range(20):
                transport.send(make_message(round_number=round_number))
            transport.deliver(round_number)
        stats = transport.stats
        assert stats.sent == 1000
        assert stats.sent == stats.delivered + stats.dropped + transport.pending()

    def test_delayed_messages_still_count_as_delivered_once(self):
        transport = LossyTransport(delay_rate=1.0, rng=0)
        transport.send(make_message(round_number=0))
        transport.deliver(0)
        transport.deliver(1)
        stats = transport.stats.as_dict()
        assert stats == {"sent": 1, "delivered": 1, "dropped": 0, "delayed": 1}

    def test_dropped_messages_are_never_delivered_nor_delayed(self):
        transport = LossyTransport(loss_rate=1.0, delay_rate=1.0, rng=0)
        for _ in range(10):
            transport.send(make_message())
        assert transport.deliver(0) == [] and transport.deliver(1) == []
        stats = transport.stats.as_dict()
        assert stats == {"sent": 10, "delivered": 0, "dropped": 10, "delayed": 0}
        assert transport.pending() == 0
