"""Tests for the lossy transport layer."""

import numpy as np
import pytest

from repro.distributed import ChoiceQuery, LossyTransport


def make_message(round_number=0):
    return ChoiceQuery(sender=0, recipient=1, round_number=round_number)


class TestPerfectTransport:
    def test_delivers_in_same_round(self):
        transport = LossyTransport(rng=0)
        transport.send(make_message(round_number=5))
        delivered = transport.deliver(5)
        assert len(delivered) == 1
        assert transport.stats.delivered == 1

    def test_nothing_for_other_rounds(self):
        transport = LossyTransport(rng=0)
        transport.send(make_message(round_number=5))
        assert transport.deliver(4) == []
        assert transport.pending() == 1

    def test_deliver_clears_mailbox(self):
        transport = LossyTransport(rng=0)
        transport.send(make_message(round_number=2))
        transport.deliver(2)
        assert transport.deliver(2) == []


class TestLossAndDelay:
    def test_full_loss_drops_everything(self):
        transport = LossyTransport(loss_rate=1.0, rng=0)
        for _ in range(20):
            transport.send(make_message())
        assert transport.deliver(0) == []
        assert transport.stats.dropped == 20

    def test_full_delay_shifts_by_one_round(self):
        transport = LossyTransport(delay_rate=1.0, rng=0)
        transport.send(make_message(round_number=3))
        assert transport.deliver(3) == []
        assert len(transport.deliver(4)) == 1
        assert transport.stats.delayed == 1

    def test_loss_rate_statistics(self):
        transport = LossyTransport(loss_rate=0.3, rng=1)
        for _ in range(3000):
            transport.send(make_message())
        assert transport.stats.dropped / transport.stats.sent == pytest.approx(0.3, abs=0.03)

    def test_stats_as_dict(self):
        transport = LossyTransport(rng=0)
        transport.send(make_message())
        transport.deliver(0)
        stats = transport.stats.as_dict()
        assert stats["sent"] == 1 and stats["delivered"] == 1

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            LossyTransport(loss_rate=1.5)
        with pytest.raises(ValueError):
            LossyTransport(delay_rate=-0.1)

    def test_deliver_rejects_negative_round(self):
        with pytest.raises(ValueError):
            LossyTransport().deliver(-1)
