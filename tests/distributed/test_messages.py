"""Tests for protocol message types."""

import pytest

from repro.distributed import ChoiceQuery, ChoiceReply


class TestChoiceQuery:
    def test_fields(self):
        query = ChoiceQuery(sender=1, recipient=2, round_number=3)
        assert query.sender == 1
        assert query.recipient == 2
        assert query.round_number == 3

    def test_immutable(self):
        query = ChoiceQuery(sender=1, recipient=2, round_number=3)
        with pytest.raises(AttributeError):
            query.sender = 5

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError):
            ChoiceQuery(sender=-1, recipient=0, round_number=0)
        with pytest.raises(ValueError):
            ChoiceQuery(sender=0, recipient=-1, round_number=0)
        with pytest.raises(ValueError):
            ChoiceQuery(sender=0, recipient=0, round_number=-1)


class TestChoiceReply:
    def test_with_option(self):
        reply = ChoiceReply(sender=0, recipient=1, round_number=2, option=3)
        assert reply.option == 3

    def test_sitting_out_reply(self):
        reply = ChoiceReply(sender=0, recipient=1, round_number=2, option=None)
        assert reply.option is None

    def test_rejects_negative_option(self):
        with pytest.raises(ValueError):
            ChoiceReply(sender=0, recipient=1, round_number=2, option=-1)

    def test_equality(self):
        a = ChoiceReply(sender=0, recipient=1, round_number=2, option=1)
        b = ChoiceReply(sender=0, recipient=1, round_number=2, option=1)
        assert a == b
