"""Tests for the vectorised sparse network engines.

Covers the CSR matvec helper, the single-replicate vectorised engine and the
replicate-batched engine: API validation, the stage-1 fallback branches, the
complete-graph reduction, and consistency between the batched engine and its
per-replicate views.  Distributional equivalence with the per-agent loop is
gated separately in ``tests/integration/test_cross_validation.py``.
"""

import networkx as nx
import numpy as np
import pytest

from repro.core.adoption import AlwaysAdoptRule, GeneralAdoptionRule, SymmetricAdoptionRule
from repro.core.batched import BatchedPopulationState, BatchedTrajectory
from repro.core.dynamics import FinitePopulationDynamics
from repro.core.sampling import MixtureSampling, default_exploration_rate
from repro.environments import BernoulliEnvironment
from repro.network import (
    BatchedNetworkDynamics,
    SocialNetwork,
    VectorizedNetworkDynamics,
    committed_neighbor_counts,
    simulate_batched_network_dynamics,
    simulate_network_dynamics,
)


class TestCommittedNeighborCounts:
    """The CSR sparse matvec ``S = A @ onehot(choices)``."""

    def test_matches_dense_matvec(self):
        network = SocialNetwork.watts_strogatz(40, 4, 0.3, rng=0)
        choices = np.random.default_rng(1).integers(-1, 3, size=40)
        adjacency = nx.to_numpy_array(network.graph)
        onehot = np.zeros((40, 3))
        for agent, choice in enumerate(choices):
            if choice >= 0:
                onehot[agent, choice] = 1.0
        expected = (adjacency @ onehot).astype(np.int64)
        np.testing.assert_array_equal(
            committed_neighbor_counts(network, choices, 3), expected
        )

    def test_batched_rows_match_single_calls(self):
        network = SocialNetwork.barabasi_albert(30, 2, rng=0)
        choices = np.random.default_rng(2).integers(-1, 4, size=(5, 30))
        batched = committed_neighbor_counts(network, choices, 4)
        assert batched.shape == (5, 30, 4)
        for replicate in range(5):
            np.testing.assert_array_equal(
                batched[replicate],
                committed_neighbor_counts(network, choices[replicate], 4),
            )

    def test_sitting_out_neighbours_do_not_count(self):
        network = SocialNetwork.ring(6, neighbors_each_side=1)
        choices = np.full(6, -1, dtype=np.int64)
        np.testing.assert_array_equal(
            committed_neighbor_counts(network, choices, 2), np.zeros((6, 2))
        )

    def test_isolated_graph_gives_zero_counts(self):
        network = SocialNetwork(nx.empty_graph(4), name="isolated")
        choices = np.array([0, 1, 1, 0])
        np.testing.assert_array_equal(
            committed_neighbor_counts(network, choices, 2), np.zeros((4, 2))
        )


class TestVectorizedNetworkDynamics:
    def test_state_counts_bounded_by_population(self):
        dynamics = VectorizedNetworkDynamics(SocialNetwork.ring(50), 3, rng=0)
        state = dynamics.step(np.array([1, 0, 1]))
        assert state.counts.sum() <= 50
        assert state.population_size == 50

    def test_time_advances_and_choices_reflect_state(self):
        dynamics = VectorizedNetworkDynamics(SocialNetwork.complete(30), 2, rng=0)
        dynamics.step(np.array([1, 1]))
        dynamics.step(np.array([0, 1]))
        assert dynamics.time == 2
        choices = dynamics.choices()
        assert (choices >= 0).sum() == dynamics.state().committed

    def test_rejects_bad_rewards(self):
        dynamics = VectorizedNetworkDynamics(SocialNetwork.complete(10), 2, rng=0)
        with pytest.raises(ValueError):
            dynamics.step(np.array([2, 0]))
        with pytest.raises(ValueError):
            dynamics.step(np.array([1]))

    def test_rejects_non_network(self):
        with pytest.raises(TypeError):
            VectorizedNetworkDynamics("graph", 2)

    def test_no_neighbour_fallback_considers_uniformly(self):
        """Isolated agents fall back to uniform consideration, never imitation."""
        size = 400
        network = SocialNetwork(nx.empty_graph(size), name="isolated")
        dynamics = VectorizedNetworkDynamics(
            network, 2, adoption_rule=AlwaysAdoptRule(), exploration_rate=0.0, rng=7
        )
        dynamics.set_choices(np.zeros(size, dtype=np.int64))
        state = dynamics.step(np.array([1, 1]))
        assert state.committed == size
        assert state.counts[0] > size // 4
        assert state.counts[1] > size // 4

    def test_all_neighbours_sitting_out_falls_back_to_uniform(self):
        size = 400
        dynamics = VectorizedNetworkDynamics(
            SocialNetwork.ring(size, neighbors_each_side=2),
            2,
            adoption_rule=AlwaysAdoptRule(),
            exploration_rate=0.0,
            rng=8,
        )
        dynamics.set_choices(np.full(size, -1, dtype=np.int64))
        state = dynamics.step(np.array([1, 1]))
        assert state.committed == size
        assert state.counts[0] > size // 4
        assert state.counts[1] > size // 4

    def test_pure_imitation_copies_unanimous_neighbourhood(self):
        """With mu=0 and a unanimous committed group, imitation is deterministic."""
        size = 60
        dynamics = VectorizedNetworkDynamics(
            SocialNetwork.ring(size, neighbors_each_side=3),
            3,
            adoption_rule=AlwaysAdoptRule(),
            exploration_rate=0.0,
            rng=9,
        )
        dynamics.set_choices(np.full(size, 2, dtype=np.int64))
        state = dynamics.step(np.array([1, 1, 1]))
        np.testing.assert_array_equal(state.counts, [0, 0, size])

    def test_never_adopting_group_stays_sitting_out(self):
        dynamics = VectorizedNetworkDynamics(
            SocialNetwork.ring(20), 2,
            adoption_rule=GeneralAdoptionRule(0.0, 0.0), exploration_rate=0.0, rng=9,
        )
        env = BernoulliEnvironment([0.9, 0.1], rng=10)
        trajectory = dynamics.run(env, 5)
        for state in trajectory.states:
            assert state.committed == 0
        assert np.allclose(dynamics.popularity(), [0.5, 0.5])

    def test_seeded_runs_are_reproducible(self):
        network = SocialNetwork.watts_strogatz(80, 4, 0.2, rng=0)
        results = []
        for _ in range(2):
            env = BernoulliEnvironment([0.8, 0.4], rng=3)
            trajectory = simulate_network_dynamics(
                env, network, 30, beta=0.65, rng=4, engine="vectorized"
            )
            results.append(trajectory.popularity_matrix())
        np.testing.assert_array_equal(results[0], results[1])

    def test_complete_graph_one_step_matches_core_dynamics(self):
        """On the complete graph the per-step transition law matches the
        original exchangeable dynamics (mean counts over many seeds)."""
        size, replicates = 300, 200
        rewards = np.array([1, 0])
        rule = SymmetricAdoptionRule(0.7)
        network = SocialNetwork.complete(size)

        vectorized_counts = np.zeros(2)
        core_counts = np.zeros(2)
        for seed in range(replicates):
            vectorized = VectorizedNetworkDynamics(
                network, 2, adoption_rule=rule, exploration_rate=0.1, rng=seed
            )
            vectorized_counts += vectorized.step(rewards).counts
            core = FinitePopulationDynamics(
                size, 2, adoption_rule=rule,
                sampling_rule=MixtureSampling(0.1), rng=seed + 100_000,
            )
            core_counts += core.step(rewards).counts
        # Monte Carlo SE of each mean count is ~0.6; tolerance 3 is ~5 sigma.
        assert np.all(
            np.abs(vectorized_counts / replicates - core_counts / replicates) < 3.0
        )

    def test_helper_engine_argument_validated(self):
        env = BernoulliEnvironment([0.8, 0.4], rng=0)
        with pytest.raises(ValueError):
            simulate_network_dynamics(
                env, SocialNetwork.ring(10), 5, engine="warp-drive"
            )

    def test_helper_default_mu_is_shared_theorem_default(self):
        env = BernoulliEnvironment([0.8, 0.4], rng=0)
        network = SocialNetwork.ring(10)
        trajectory = simulate_network_dynamics(env, network, 3, beta=0.6, rng=1)
        assert trajectory.horizon == 3
        # The loop and vectorised helpers share default_exploration_rate.
        rule = SymmetricAdoptionRule(0.6)
        dynamics = VectorizedNetworkDynamics(network, 2, rule, rng=1)
        assert default_exploration_rate(rule) == pytest.approx(
            min(1.0, rule.delta**2 / 6.0)
        )
        assert dynamics.exploration_rate == pytest.approx(0.05)


class TestBatchedNetworkDynamics:
    def test_state_is_batched_population_state(self):
        dynamics = BatchedNetworkDynamics(SocialNetwork.ring(40), 3, 5, rng=0)
        state = dynamics.state()
        assert isinstance(state, BatchedPopulationState)
        assert state.counts.shape == (5, 3)
        assert state.population_size == 40
        assert np.all(state.committed <= 40)

    def test_step_advances_all_replicates(self):
        dynamics = BatchedNetworkDynamics(SocialNetwork.ring(30), 2, 4, rng=0)
        state = dynamics.step(np.ones((4, 2), dtype=np.int64))
        assert state.time == 1
        assert dynamics.time == 1
        assert dynamics.choices().shape == (4, 30)

    def test_shared_reward_vector_broadcasts(self):
        dynamics = BatchedNetworkDynamics(SocialNetwork.ring(30), 2, 4, rng=0)
        state = dynamics.step(np.array([1, 0]))
        assert state.counts.shape == (4, 2)

    def test_rejects_bad_rewards(self):
        dynamics = BatchedNetworkDynamics(SocialNetwork.ring(10), 2, 3, rng=0)
        with pytest.raises(ValueError):
            dynamics.step(np.ones((2, 2)))
        with pytest.raises(ValueError):
            dynamics.step(np.full((3, 2), 2))

    def test_rejects_non_network(self):
        with pytest.raises(TypeError):
            BatchedNetworkDynamics("graph", 2, 3)

    def test_set_choices_validates_shape_and_range(self):
        dynamics = BatchedNetworkDynamics(SocialNetwork.ring(6), 3, 2, rng=0)
        with pytest.raises(ValueError):
            dynamics.set_choices(np.zeros(6, dtype=np.int64))
        with pytest.raises(ValueError):
            dynamics.set_choices(np.full((2, 6), 3, dtype=np.int64))
        with pytest.raises(ValueError):
            dynamics.set_choices(np.full((2, 6), -2, dtype=np.int64))
        dynamics.set_choices(np.full((2, 6), 1, dtype=np.int64))
        np.testing.assert_array_equal(dynamics.state().counts, [[0, 6, 0], [0, 6, 0]])

    def test_replicates_evolve_independently(self):
        """Different replicates on the same graph follow different paths."""
        dynamics = BatchedNetworkDynamics(SocialNetwork.ring(100), 2, 6, rng=0)
        for _ in range(5):
            dynamics.step(np.array([1, 0]))
        counts = dynamics.state().counts
        assert len({tuple(row) for row in counts.tolist()}) > 1

    def test_run_returns_batched_trajectory_with_replicate_views(self):
        network = SocialNetwork.watts_strogatz(60, 4, 0.2, rng=0)
        env = BernoulliEnvironment([0.8, 0.4], rng=1)
        trajectory = simulate_batched_network_dynamics(
            env, network, 20, 5, beta=0.65, mu=0.05, rng=2
        )
        assert isinstance(trajectory, BatchedTrajectory)
        assert trajectory.num_replicates == 5
        assert trajectory.horizon == 20
        view = trajectory.replicate(3)
        assert view.horizon == 20
        np.testing.assert_array_equal(
            view.final_state().counts, trajectory.final_state().counts[3]
        )

    def test_run_rejects_mismatched_environment(self):
        env = BernoulliEnvironment([0.9, 0.3, 0.1], rng=0)
        dynamics = BatchedNetworkDynamics(SocialNetwork.ring(10), 2, 3, rng=0)
        with pytest.raises(ValueError):
            dynamics.run(env, 5)

    def test_all_sitting_out_uniform_fallback(self):
        size, replicates = 300, 3
        dynamics = BatchedNetworkDynamics(
            SocialNetwork.ring(size, neighbors_each_side=2),
            2,
            replicates,
            adoption_rule=AlwaysAdoptRule(),
            exploration_rate=0.0,
            rng=5,
        )
        dynamics.set_choices(np.full((replicates, size), -1, dtype=np.int64))
        state = dynamics.step(np.ones((replicates, 2), dtype=np.int64))
        assert np.all(state.committed == size)
        assert np.all(state.counts > size // 4)

    def test_seeded_runs_are_reproducible(self):
        network = SocialNetwork.barabasi_albert(50, 3, rng=0)
        results = []
        for _ in range(2):
            generator = np.random.default_rng(11)
            env = BernoulliEnvironment([0.8, 0.4], rng=generator)
            trajectory = simulate_batched_network_dynamics(
                env, network, 15, 4, beta=0.65, rng=generator
            )
            results.append(trajectory.final_state().counts)
        np.testing.assert_array_equal(results[0], results[1])

    def test_exposes_configuration(self):
        network = SocialNetwork.ring(12)
        rule = SymmetricAdoptionRule(0.7)
        dynamics = BatchedNetworkDynamics(
            network, 2, 3, adoption_rule=rule, exploration_rate=0.2, rng=0
        )
        assert dynamics.network is network
        assert dynamics.num_options == 2
        assert dynamics.num_replicates == 3
        assert dynamics.adoption_rule is rule
        assert dynamics.exploration_rate == pytest.approx(0.2)
