"""Tests for the network-restricted dynamics."""

import numpy as np
import pytest

from repro.core.adoption import SymmetricAdoptionRule
from repro.core.regret import expected_regret
from repro.environments import BernoulliEnvironment
from repro.network import NetworkDynamics, SocialNetwork, simulate_network_dynamics


class TestNetworkDynamics:
    def test_state_counts_bounded_by_population(self):
        network = SocialNetwork.ring(50)
        dynamics = NetworkDynamics(network, 3, rng=0)
        state = dynamics.step(np.array([1, 0, 1]))
        assert state.counts.sum() <= 50
        assert state.population_size == 50

    def test_time_advances(self):
        network = SocialNetwork.complete(20)
        dynamics = NetworkDynamics(network, 2, rng=0)
        dynamics.step(np.array([1, 0]))
        dynamics.step(np.array([0, 1]))
        assert dynamics.time == 2

    def test_choices_reflect_state(self):
        network = SocialNetwork.complete(30)
        dynamics = NetworkDynamics(network, 2, rng=0)
        dynamics.step(np.array([1, 1]))
        choices = dynamics.choices()
        committed = (choices >= 0).sum()
        assert committed == dynamics.state().committed

    def test_rejects_bad_rewards(self):
        dynamics = NetworkDynamics(SocialNetwork.complete(10), 2, rng=0)
        with pytest.raises(ValueError):
            dynamics.step(np.array([2, 0]))
        with pytest.raises(ValueError):
            dynamics.step(np.array([1]))

    def test_rejects_non_network(self):
        with pytest.raises(TypeError):
            NetworkDynamics("graph", 2)

    def test_isolated_nodes_learn_through_exploration(self):
        import networkx as nx

        graph = nx.empty_graph(40)
        network = SocialNetwork(graph, name="isolated")
        env = BernoulliEnvironment([0.9, 0.1], rng=1)
        dynamics = NetworkDynamics(network, 2, exploration_rate=0.2, rng=2)
        trajectory = dynamics.run(env, 150)
        # Individuals cannot imitate, but signals still bias them to option 0.
        assert trajectory.popularity_matrix()[-30:, 0].mean() > 0.55

    def test_complete_graph_behaves_like_core_dynamics(self):
        """On the complete graph the restricted dynamics achieves comparable regret."""
        env_a = BernoulliEnvironment([0.85, 0.45], rng=3)
        env_b = BernoulliEnvironment([0.85, 0.45], rng=3)
        network = SocialNetwork.complete(400)
        network_traj = simulate_network_dynamics(env_a, network, 250, beta=0.65, rng=4)
        from repro import simulate_finite_population

        core_traj = simulate_finite_population(env_b, 400, 250, beta=0.65, rng=4)
        network_regret = expected_regret(network_traj.popularity_matrix(), [0.85, 0.45])
        core_regret = expected_regret(core_traj.popularity_matrix(), [0.85, 0.45])
        assert abs(network_regret - core_regret) < 0.08

    def test_well_connected_beats_poorly_connected(self):
        """Denser topologies should spread the best option at least as well."""
        results = {}
        for name, network in {
            "complete": SocialNetwork.complete(200),
            "ring": SocialNetwork.ring(200, neighbors_each_side=1),
        }.items():
            env = BernoulliEnvironment([0.9, 0.3], rng=5)
            trajectory = simulate_network_dynamics(env, network, 300, beta=0.65, rng=6)
            results[name] = trajectory.popularity_matrix()[-50:, 0].mean()
        assert results["complete"] >= results["ring"] - 0.05

    def test_run_rejects_mismatched_environment(self):
        env = BernoulliEnvironment([0.9, 0.3, 0.1], rng=0)
        dynamics = NetworkDynamics(SocialNetwork.complete(10), 2, rng=0)
        with pytest.raises(ValueError):
            dynamics.run(env, 5)

    def test_adoption_rule_exposed(self):
        rule = SymmetricAdoptionRule(0.7)
        dynamics = NetworkDynamics(SocialNetwork.complete(10), 2, adoption_rule=rule, rng=0)
        assert dynamics.adoption_rule.beta == pytest.approx(0.7)
        assert dynamics.exploration_rate == pytest.approx(0.05)
