"""Tests for the network-restricted dynamics."""

import numpy as np
import pytest

from repro.core.adoption import AlwaysAdoptRule, GeneralAdoptionRule, SymmetricAdoptionRule
from repro.core.dynamics import FinitePopulationDynamics
from repro.core.regret import expected_regret
from repro.core.sampling import MixtureSampling
from repro.environments import BernoulliEnvironment
from repro.network import NetworkDynamics, SocialNetwork, simulate_network_dynamics


class TestNetworkDynamics:
    def test_state_counts_bounded_by_population(self):
        network = SocialNetwork.ring(50)
        dynamics = NetworkDynamics(network, 3, rng=0)
        state = dynamics.step(np.array([1, 0, 1]))
        assert state.counts.sum() <= 50
        assert state.population_size == 50

    def test_time_advances(self):
        network = SocialNetwork.complete(20)
        dynamics = NetworkDynamics(network, 2, rng=0)
        dynamics.step(np.array([1, 0]))
        dynamics.step(np.array([0, 1]))
        assert dynamics.time == 2

    def test_choices_reflect_state(self):
        network = SocialNetwork.complete(30)
        dynamics = NetworkDynamics(network, 2, rng=0)
        dynamics.step(np.array([1, 1]))
        choices = dynamics.choices()
        committed = (choices >= 0).sum()
        assert committed == dynamics.state().committed

    def test_rejects_bad_rewards(self):
        dynamics = NetworkDynamics(SocialNetwork.complete(10), 2, rng=0)
        with pytest.raises(ValueError):
            dynamics.step(np.array([2, 0]))
        with pytest.raises(ValueError):
            dynamics.step(np.array([1]))

    def test_rejects_non_network(self):
        with pytest.raises(TypeError):
            NetworkDynamics("graph", 2)

    def test_isolated_nodes_learn_through_exploration(self):
        import networkx as nx

        graph = nx.empty_graph(40)
        network = SocialNetwork(graph, name="isolated")
        env = BernoulliEnvironment([0.9, 0.1], rng=1)
        dynamics = NetworkDynamics(network, 2, exploration_rate=0.2, rng=2)
        trajectory = dynamics.run(env, 150)
        # Individuals cannot imitate, but signals still bias them to option 0.
        assert trajectory.popularity_matrix()[-30:, 0].mean() > 0.55

    def test_complete_graph_behaves_like_core_dynamics(self):
        """On the complete graph the restricted dynamics achieves comparable regret."""
        env_a = BernoulliEnvironment([0.85, 0.45], rng=3)
        env_b = BernoulliEnvironment([0.85, 0.45], rng=3)
        network = SocialNetwork.complete(400)
        network_traj = simulate_network_dynamics(env_a, network, 250, beta=0.65, rng=4)
        from repro import simulate_finite_population

        core_traj = simulate_finite_population(env_b, 400, 250, beta=0.65, rng=4)
        network_regret = expected_regret(network_traj.popularity_matrix(), [0.85, 0.45])
        core_regret = expected_regret(core_traj.popularity_matrix(), [0.85, 0.45])
        assert abs(network_regret - core_regret) < 0.08

    def test_well_connected_beats_poorly_connected(self):
        """Denser topologies should spread the best option at least as well."""
        results = {}
        for name, network in {
            "complete": SocialNetwork.complete(200),
            "ring": SocialNetwork.ring(200, neighbors_each_side=1),
        }.items():
            env = BernoulliEnvironment([0.9, 0.3], rng=5)
            trajectory = simulate_network_dynamics(env, network, 300, beta=0.65, rng=6)
            results[name] = trajectory.popularity_matrix()[-50:, 0].mean()
        assert results["complete"] >= results["ring"] - 0.05

    def test_run_rejects_mismatched_environment(self):
        env = BernoulliEnvironment([0.9, 0.3, 0.1], rng=0)
        dynamics = NetworkDynamics(SocialNetwork.complete(10), 2, rng=0)
        with pytest.raises(ValueError):
            dynamics.run(env, 5)

    def test_adoption_rule_exposed(self):
        rule = SymmetricAdoptionRule(0.7)
        dynamics = NetworkDynamics(SocialNetwork.complete(10), 2, adoption_rule=rule, rng=0)
        assert dynamics.adoption_rule.beta == pytest.approx(0.7)
        assert dynamics.exploration_rate == pytest.approx(0.05)


class TestSetChoices:
    def test_overwrites_state(self):
        dynamics = NetworkDynamics(SocialNetwork.complete(5), 3, rng=0)
        dynamics.set_choices(np.array([0, 1, 2, -1, -1]))
        assert np.array_equal(dynamics.choices(), [0, 1, 2, -1, -1])
        state = dynamics.state()
        assert np.array_equal(state.counts, [1, 1, 1])
        assert state.sitting_out == 2

    def test_rejects_bad_shapes_and_values(self):
        dynamics = NetworkDynamics(SocialNetwork.complete(5), 3, rng=0)
        with pytest.raises(ValueError):
            dynamics.set_choices(np.array([0, 1]))
        with pytest.raises(ValueError):
            dynamics.set_choices(np.array([0, 1, 3, 0, 0]))
        with pytest.raises(ValueError):
            dynamics.set_choices(np.array([0, 1, -2, 0, 0]))


class TestStageOneFallbacks:
    """Direct coverage of the two uniform-fallback branches of stage (1)."""

    def test_no_neighbour_fallback_considers_uniformly(self):
        """Isolated agents fall back to uniform consideration, never imitation.

        With ``mu = 0`` (no exploration) and an always-adopt rule, any
        consideration an isolated agent makes *must* come from the
        no-neighbour fallback — and because that fallback is uniform, every
        option receives a substantial share even though the initial choices
        were concentrated by hand on option 0.
        """
        import networkx as nx

        size = 400
        network = SocialNetwork(nx.empty_graph(size), name="isolated")
        dynamics = NetworkDynamics(
            network, 2, adoption_rule=AlwaysAdoptRule(), exploration_rate=0.0, rng=7
        )
        dynamics.set_choices(np.zeros(size, dtype=np.int64))  # all on option 0
        state = dynamics.step(np.array([1, 1]))
        # Everyone adopted something (always-adopt), and the uniform fallback
        # split the group roughly evenly despite the all-on-0 start.
        assert state.committed == size
        assert state.counts[1] > size // 4
        assert state.counts[0] > size // 4

    def test_all_neighbours_sitting_out_falls_back_to_uniform(self):
        """A committed-free neighbourhood triggers the uniform fallback."""
        size = 400
        network = SocialNetwork.ring(size, neighbors_each_side=2)
        dynamics = NetworkDynamics(
            network, 2, adoption_rule=AlwaysAdoptRule(), exploration_rate=0.0, rng=8
        )
        dynamics.set_choices(np.full(size, -1, dtype=np.int64))  # everyone sits out
        state = dynamics.step(np.array([1, 1]))
        assert state.committed == size
        assert state.counts[1] > size // 4
        assert state.counts[0] > size // 4

    def test_never_adopting_group_stays_sitting_out(self):
        """With f == 0 everyone sits out forever and the fallback keeps firing."""
        network = SocialNetwork.ring(20, neighbors_each_side=1)
        dynamics = NetworkDynamics(
            network, 2, adoption_rule=GeneralAdoptionRule(0.0, 0.0),
            exploration_rate=0.0, rng=9,
        )
        env = BernoulliEnvironment([0.9, 0.1], rng=10)
        trajectory = dynamics.run(env, 5)
        for state in trajectory.states:
            assert state.committed == 0
        # An all-sitting-out group reports the uniform popularity.
        assert np.allclose(dynamics.popularity(), [0.5, 0.5])


class TestCompleteGraphReduction:
    def test_one_step_transition_matches_core_dynamics(self):
        """On the complete graph the per-step transition law matches the
        original exchangeable dynamics.

        Both engines are run for one step from a (near-)uniform start across
        many independent seeds and the per-option mean counts are compared;
        the network restriction only changes *who* an agent can observe, and
        on the complete graph that set is the whole group, so the means must
        agree up to Monte Carlo error.
        """
        size, replicates = 300, 200
        rewards = np.array([1, 0])
        rule = SymmetricAdoptionRule(0.7)
        network = SocialNetwork.complete(size)

        network_counts = np.zeros(2)
        core_counts = np.zeros(2)
        for seed in range(replicates):
            network_dynamics = NetworkDynamics(
                network, 2, adoption_rule=rule, exploration_rate=0.1, rng=seed
            )
            network_counts += network_dynamics.step(rewards).counts
            core_dynamics = FinitePopulationDynamics(
                size, 2, adoption_rule=rule,
                sampling_rule=MixtureSampling(0.1), rng=seed + 100_000,
            )
            core_counts += core_dynamics.step(rewards).counts
        network_means = network_counts / replicates
        core_means = core_counts / replicates
        # Expected count of option j: N * ((1-mu) Q_j + mu/m) * f(R_j); with a
        # uniform start the two engines share it exactly.  Monte Carlo SE of
        # each mean is ~0.6, so a tolerance of 3 is ~5 sigma on the difference.
        assert np.all(np.abs(network_means - core_means) < 3.0)
