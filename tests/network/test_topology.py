"""Tests for SocialNetwork topologies and metrics."""

import networkx as nx
import numpy as np
import pytest

from repro.network import SocialNetwork


class TestConstructors:
    def test_complete_graph_degrees(self):
        network = SocialNetwork.complete(10)
        assert network.size == 10
        assert all(network.degree(node) == 9 for node in range(10))

    def test_ring_degrees(self):
        network = SocialNetwork.ring(12, neighbors_each_side=2)
        assert all(network.degree(node) == 4 for node in range(12))

    def test_grid_size(self):
        network = SocialNetwork.grid(4, 5)
        assert network.size == 20
        assert network.is_connected()

    def test_star_hub_degree(self):
        network = SocialNetwork.star(8)
        assert network.degree(0) == 7
        assert all(network.degree(node) == 1 for node in range(1, 8))

    def test_star_single_node(self):
        assert SocialNetwork.star(1).size == 1

    def test_erdos_renyi_reproducible(self):
        a = SocialNetwork.erdos_renyi(30, 0.2, rng=0)
        b = SocialNetwork.erdos_renyi(30, 0.2, rng=0)
        assert nx.utils.graphs_equal(a.graph, b.graph)

    def test_barabasi_albert_connected(self):
        network = SocialNetwork.barabasi_albert(50, attachments=2, rng=0)
        assert network.is_connected()

    def test_barabasi_albert_rejects_too_many_attachments(self):
        with pytest.raises(ValueError):
            SocialNetwork.barabasi_albert(5, attachments=5)

    def test_watts_strogatz_average_degree(self):
        network = SocialNetwork.watts_strogatz(40, nearest_neighbors=6, rewiring_probability=0.1, rng=0)
        assert network.average_degree() == pytest.approx(6.0)

    def test_standard_suite_same_size_except_grid(self):
        suite = SocialNetwork.standard_suite(25, rng=0)
        names = {network.name.split("(")[0] for network in suite}
        assert "complete" in names and "star" in names
        assert all(network.size >= 25 for network in suite)

    def test_rejects_non_consecutive_labels(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(ValueError):
            SocialNetwork(graph)

    def test_rejects_empty_graph(self):
        with pytest.raises(ValueError):
            SocialNetwork(nx.Graph())


class TestMetrics:
    def test_complete_graph_diameter_one(self):
        assert SocialNetwork.complete(6).diameter() == 1

    def test_disconnected_graph_diameter_none(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        network = SocialNetwork(graph)
        assert not network.is_connected()
        assert network.diameter() is None

    def test_clustering_of_complete_graph(self):
        assert SocialNetwork.complete(5).average_clustering() == pytest.approx(1.0)

    def test_spectral_gap_ordering(self):
        """Well-connected graphs mix faster than rings."""
        complete = SocialNetwork.complete(30).spectral_gap()
        ring = SocialNetwork.ring(30).spectral_gap()
        assert complete > ring

    def test_spectral_gap_single_node(self):
        assert SocialNetwork.star(1).spectral_gap() == pytest.approx(1.0)

    def test_metrics_dict_keys(self):
        metrics = SocialNetwork.ring(10).metrics()
        assert {"name", "size", "average_degree", "connected", "diameter", "clustering", "spectral_gap"} <= set(metrics)

    def test_neighbors_unknown_node(self):
        with pytest.raises(KeyError):
            SocialNetwork.complete(3).neighbors(10)

    def test_neighbors_contents(self):
        network = SocialNetwork.ring(5)
        assert set(network.neighbors(0).tolist()) == {1, 4}


class TestCSRView:
    """The cached CSR adjacency the vectorised engines consume."""

    def test_indptr_and_indices_match_neighbor_lists(self):
        network = SocialNetwork.watts_strogatz(40, 4, 0.2, rng=0)
        indptr, indices = network.csr_indptr, network.csr_indices
        assert indptr.shape == (network.size + 1,)
        assert indptr[0] == 0 and indptr[-1] == indices.size
        for node in range(network.size):
            row = indices[indptr[node] : indptr[node + 1]]
            assert sorted(row.tolist()) == sorted(network.neighbors(node).tolist())

    def test_degrees_match_graph(self):
        network = SocialNetwork.barabasi_albert(30, 2, rng=0)
        expected = [network.degree(node) for node in range(network.size)]
        assert network.degrees.tolist() == expected
        assert network.average_degree() == pytest.approx(float(np.mean(expected)))

    def test_edge_rows_expand_indptr(self):
        network = SocialNetwork.ring(9, neighbors_each_side=2)
        rows = network.csr_edge_rows
        assert rows.shape == network.csr_indices.shape
        np.testing.assert_array_equal(
            rows, np.repeat(np.arange(network.size), network.degrees)
        )

    def test_each_undirected_edge_has_two_slots(self):
        network = SocialNetwork.erdos_renyi(25, 0.3, rng=1)
        assert network.csr_indices.size == 2 * network.graph.number_of_edges()

    def test_isolated_nodes_have_empty_rows(self):
        network = SocialNetwork(nx.empty_graph(5), name="isolated")
        assert network.csr_indices.size == 0
        assert network.csr_edge_rows.size == 0
        np.testing.assert_array_equal(network.csr_indptr, np.zeros(6, dtype=np.int64))
        np.testing.assert_array_equal(network.degrees, np.zeros(5, dtype=np.int64))

    def test_arrays_are_cached_and_frozen(self):
        network = SocialNetwork.ring(10)
        assert network.csr_indices is network.csr_indices  # cached, not rebuilt
        with pytest.raises(ValueError):
            network.csr_indices[0] = 99
        with pytest.raises(ValueError):
            network.degrees[0] = 99
