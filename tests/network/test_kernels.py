"""Tests for the fused CSR kernel and the sampling/overflow guards.

Covers the three perf-sensitive correctness fixes that ride with the
multi-backend engine:

* the fused gather+pick kernel is bit-identical to the NumPy two-pass path
  (exercised through the un-jitted loop source, so no numba is needed);
* the inverse-CDF boundary clamp (``u == 1.0`` must never index out of the
  option range);
* the int64 key-space guard on the flattened ``(replicate, agent, option)``
  bincount keys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.environments import BernoulliEnvironment
from repro.network.kernels import (
    HAS_NUMBA,
    _gather_pick_loop,
    fused_neighbor_pick,
)
from repro.network.topology import SocialNetwork
from repro.network.vectorized import (
    BatchedNetworkDynamics,
    VectorizedNetworkDynamics,
    _check_key_space,
    _inverse_cdf_rows,
    batched_key_base,
    committed_neighbor_counts,
    resolve_use_numba,
)


@pytest.fixture(scope="module")
def network() -> SocialNetwork:
    return SocialNetwork.watts_strogatz(
        60, nearest_neighbors=4, rewiring_probability=0.2, rng=0
    )


def _two_pass(network, choices, uniforms, num_options):
    counts = committed_neighbor_counts(network, choices, num_options)
    return _inverse_cdf_rows(counts, uniforms)


class TestFusedKernelEquivalence:
    """The un-jitted kernel source must match the NumPy two-pass bit for bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batched_picks_and_totals_match_two_pass(self, network, seed):
        rng = np.random.default_rng(seed)
        num_options = 4
        # Include -1 (sitting out) entries so zero-total rows are exercised.
        choices = rng.integers(-1, num_options, size=(5, network.size))
        uniforms = rng.random((5, network.size))
        fused_picks, fused_totals = fused_neighbor_pick(
            network, choices, uniforms, num_options, impl=_gather_pick_loop
        )
        picks, totals = _two_pass(network, choices, uniforms, num_options)
        np.testing.assert_array_equal(fused_totals, totals)
        np.testing.assert_array_equal(fused_picks, picks)

    def test_single_replicate_squeeze_round_trip(self, network):
        rng = np.random.default_rng(7)
        num_options = 3
        choices = rng.integers(-1, num_options, size=network.size)
        uniforms = rng.random(network.size)
        fused_picks, fused_totals = fused_neighbor_pick(
            network, choices, uniforms, num_options, impl=_gather_pick_loop
        )
        assert fused_picks.shape == (network.size,)
        picks, totals = _two_pass(network, choices, uniforms, num_options)
        np.testing.assert_array_equal(fused_totals, totals)
        np.testing.assert_array_equal(fused_picks, picks)

    def test_all_sitting_out_reports_zero_totals_and_clamped_picks(self, network):
        choices = np.full((2, network.size), -1)
        uniforms = np.zeros((2, network.size))
        picks, totals = fused_neighbor_pick(
            network, choices, uniforms, 3, impl=_gather_pick_loop
        )
        assert not totals.any()
        assert (picks == 2).all()

    @pytest.mark.skipif(HAS_NUMBA, reason="numba is installed")
    def test_default_impl_requires_numba(self, network):
        choices = np.zeros((1, network.size), dtype=np.int64)
        uniforms = np.zeros((1, network.size))
        with pytest.raises(RuntimeError, match="numba"):
            fused_neighbor_pick(network, choices, uniforms, 2)


class TestResolveUseNumba:
    def test_none_auto_selects_on_availability(self):
        assert resolve_use_numba(None) is HAS_NUMBA

    def test_false_forces_the_numpy_path(self):
        assert resolve_use_numba(False) is False

    @pytest.mark.skipif(HAS_NUMBA, reason="numba is installed")
    def test_true_without_numba_is_an_error(self):
        with pytest.raises(RuntimeError, match="use_numba=True requires"):
            resolve_use_numba(True)

    @pytest.mark.skipif(HAS_NUMBA, reason="numba is installed")
    def test_engines_surface_the_error_at_construction(self, network):
        with pytest.raises(RuntimeError, match="numba"):
            VectorizedNetworkDynamics(network, 3, use_numba=True)
        with pytest.raises(RuntimeError, match="numba"):
            BatchedNetworkDynamics(network, 3, num_replicates=2, use_numba=True)

    def test_engines_expose_the_resolved_knob(self, network):
        assert (
            VectorizedNetworkDynamics(network, 3, use_numba=False).use_numba
            is False
        )
        batched = BatchedNetworkDynamics(
            network, 3, num_replicates=2, use_numba=False
        )
        assert batched.use_numba is False

    @pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
    def test_fused_engine_is_bit_identical_to_two_pass(self, network):
        def run(use_numba):
            environment = BernoulliEnvironment([0.8, 0.5, 0.5], rng=3)
            dynamics = VectorizedNetworkDynamics(
                network, 3, rng=5, use_numba=use_numba
            )
            return dynamics.run(environment, 15)

        fused = run(True)
        two_pass = run(False)
        np.testing.assert_array_equal(
            fused.popularity_matrix(), two_pass.popularity_matrix()
        )


class TestInverseCdfBoundaryClamp:
    """Regression: ``u == 1.0`` used to produce the out-of-range pick ``m``."""

    @pytest.mark.parametrize("dtype", [np.int64, np.int32])
    def test_boundary_uniform_clamps_to_the_last_option(self, dtype):
        counts = np.array([[2, 1, 0]], dtype=dtype)
        picks, totals = _inverse_cdf_rows(counts, np.array([1.0]))
        assert totals[0] == 3
        assert picks[0] == 2  # clamped into range, never m == 3

    def test_boundary_lands_in_the_last_nonzero_bucket_support(self):
        counts = np.array([[0, 5, 0, 0]])
        picks, _ = _inverse_cdf_rows(counts, np.array([1.0]))
        # Clamped pick may exceed the support; interior uniforms never do.
        assert picks[0] <= 3
        interior, _ = _inverse_cdf_rows(counts, np.array([0.999999]))
        assert interior[0] == 1

    def test_interior_uniforms_hit_exact_proportions(self):
        counts = np.array([[2, 1, 1]])
        uniforms = np.array([0.0, 0.49, 0.5, 0.74, 0.75, 0.99])
        picks, _ = _inverse_cdf_rows(
            np.repeat(counts, uniforms.size, axis=0), uniforms
        )
        np.testing.assert_array_equal(picks, [0, 0, 1, 1, 2, 2])

    def test_zero_total_rows_report_the_clamp_and_zero_total(self):
        picks, totals = _inverse_cdf_rows(
            np.zeros((3, 4), dtype=np.int64), np.array([0.0, 0.5, 1.0])
        )
        assert not totals.any()
        assert (picks == 3).all()


@dataclass
class _FakeHugeNetwork:
    """Duck-typed network whose advertised size overflows the key space.

    The CSR arrays are tiny — the guard must fire on the *declared*
    ``R * N * m`` product before any array arithmetic touches them.
    """

    size: int

    @property
    def csr_indptr(self):  # pragma: no cover - guard fires first
        raise AssertionError("guard must fire before CSR access")

    @property
    def csr_indices(self):
        return np.zeros(1, dtype=np.int64)

    @property
    def csr_edge_rows(self):
        return np.zeros(1, dtype=np.int64)


class TestKeySpaceOverflowGuard:
    def test_check_key_space_accepts_the_int64_limit(self):
        _check_key_space(1, 2**31, 2**31)  # exactly 2**62 — fine

    def test_check_key_space_rejects_past_the_limit(self):
        with pytest.raises(OverflowError, match="overflows int64"):
            _check_key_space(2, 2**40, 2**25)  # 2**66

    def test_single_replicate_gather_guards_n_times_m(self):
        fake = _FakeHugeNetwork(size=2**40)
        choices = np.zeros(4, dtype=np.int64)
        with pytest.raises(OverflowError, match="shard the"):
            committed_neighbor_counts(fake, choices, 2**25)

    def test_batched_key_base_guards_the_full_product(self):
        fake = _FakeHugeNetwork(size=2**40)
        with pytest.raises(OverflowError, match="overflows int64"):
            batched_key_base(fake, 2, 2**25)

    def test_gather_promotes_narrow_choice_dtypes(self, network):
        """int32 choices must not wrap the ``row * m + choice`` keys."""
        rng = np.random.default_rng(11)
        wide = rng.integers(-1, 3, size=network.size, dtype=np.int64)
        narrow = wide.astype(np.int32)
        np.testing.assert_array_equal(
            committed_neighbor_counts(network, narrow, 3),
            committed_neighbor_counts(network, wide, 3),
        )
