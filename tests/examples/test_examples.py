"""Smoke tests for the runnable examples.

CI runs some examples at full scale; these tests import the example modules
and run their ``main()`` at drastically reduced scale inside the regular test
suite, so example drift (renamed APIs, changed signatures, broken imports) is
caught by a plain ``pytest`` run before CI's example step — and locally,
where the example step does not exist.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).parent.parent.parent / "examples"


def _load_example(name: str):
    """Import ``examples/<name>.py`` as a throwaway module."""
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    # Register so dataclasses/typing introspection inside the module works.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


class TestNetworkTopologiesExample:
    def test_main_runs_at_reduced_scale(self, capsys, monkeypatch):
        module = _load_example("network_topologies")
        monkeypatch.setattr(module, "POPULATION", 64)
        monkeypatch.setattr(module, "HORIZON", 40)
        monkeypatch.setattr(module, "REPLICATIONS", 1)
        module.main()
        output = capsys.readouterr().out
        assert "Network-restricted social learning" in output
        assert "complete" in output
        assert "spectral gap" in output

    def test_evaluate_reports_all_metrics(self):
        module = _load_example("network_topologies")
        # evaluate() at full module scale is slow; shrink via module constants.
        module.POPULATION, module.HORIZON, module.REPLICATIONS = 40, 20, 1
        metrics = module.evaluate(module.SocialNetwork.ring(40))
        assert {
            "topology",
            "avg degree",
            "diameter",
            "spectral gap",
            "regret",
            "best-option share",
            "steps to 60% dominance",
        } <= set(metrics)
        assert 0.0 <= metrics["best-option share"] <= 1.0


class TestSensorNetworkExample:
    def test_main_runs_at_reduced_scale(self, capsys, monkeypatch):
        module = _load_example("sensor_network")
        monkeypatch.setattr(module, "NUM_SENSORS", 30)
        monkeypatch.setattr(module, "ROUNDS", 20)
        module.main()
        output = capsys.readouterr().out
        assert "sensors agreeing" in output
        assert "perfect network" in output
        assert "best channel" in output

    def test_run_fleet_reports_transport_stats(self, monkeypatch):
        module = _load_example("sensor_network")
        monkeypatch.setattr(module, "NUM_SENSORS", 25)
        monkeypatch.setattr(module, "ROUNDS", 12)
        result = module.run_fleet(loss_rate=0.2, crash_fraction=0.2, seed=0)
        assert result.transport_stats["sent"] > 0
        assert result.transport_stats["dropped"] > 0
        assert 0.0 <= result.best_option_share <= 1.0
        assert result.alive_series[-1] <= 25


class TestServiceDemoExample:
    def test_main_runs_at_reduced_scale(self, capsys, monkeypatch):
        module = _load_example("service_demo")
        monkeypatch.setattr(module, "NODES", 60)
        monkeypatch.setattr(module, "ROUNDS", 10)
        monkeypatch.setattr(module, "REPLICATIONS", 2)
        module.main()
        output = capsys.readouterr().out
        assert "daemon up at http://" in output
        assert "0 misses" in output
        assert "rows identical: True" in output
        assert "attached: True" in output
        assert "/stats:" in output
