"""Socket coordinator/broker backend: framing, fault tolerance, bit-identity.

Brokers run as daemon threads inside the test process (:func:`run_broker` is
pure stdlib and thread-safe with ``workers=1``), so these tests exercise the
real wire protocol over loopback TCP without spawning subprocesses.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.campaign import (
    BrokerBackend,
    BrokerError,
    BrokerProtocolError,
    campaign_from_spec,
    parse_address,
    run_broker,
    run_campaign,
)
from repro.campaign.broker import (
    recv_frame,
    send_frame,
    task_from_wire,
    task_to_wire,
)
from repro.experiments.dynamics_sweep import dynamics_point_replication
from repro.runtime import ResultStore, SerialExecutor, execute_task
from repro.runtime.shard import Task

REPLICATION_REF = "repro.experiments.dynamics_sweep:dynamics_point_replication"

SWEEP_REQUEST = {
    "kind": "sweep",
    "options": [0.8, 0.5],
    "populations": [50],
    "horizon": 6,
    "replications": 3,
    "engine": "loop",
}


def campaign_spec():
    return {
        "name": "broker-demo",
        "nodes": [
            {"id": "sim", "kind": "simulate", "request": dict(SWEEP_REQUEST)},
            {"id": "stats", "kind": "analyse", "inputs": ["sim"]},
            {"id": "summary", "kind": "report", "inputs": ["stats"]},
        ],
    }


def sample_task(ordinal=0, seeds=(11, 12)):
    return Task(
        ordinal=ordinal,
        point_index=ordinal,
        name=f"wire-{ordinal}",
        function_ref=REPLICATION_REF,
        mode="loop",
        parameters={"qualities": [0.8, 0.5], "N": 40, "T": 6},
        seeds=tuple(seeds),
        replicate_offset=0,
    )


def start_broker(address, **kwargs):
    """Run one broker in a daemon thread; returns (thread, result holder)."""
    holder = {}

    def target():
        try:
            holder["executed"] = run_broker(address, connect_timeout=10.0, **kwargs)
        except BaseException as error:  # noqa: BLE001 - surfaced by the test
            holder["error"] = error

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, holder


class TestAddressParsing:
    def test_round_trip(self):
        assert parse_address("tcp://127.0.0.1:9000") == ("127.0.0.1", 9000)

    @pytest.mark.parametrize(
        "bad",
        ["127.0.0.1:9000", "tcp://:9000", "tcp://host:", "tcp://host:notaport"],
    )
    def test_malformed_addresses_rejected(self, bad):
        with pytest.raises(ValueError, match="broker address"):
            parse_address(bad)


class TestWireFormat:
    def test_task_round_trips_through_json(self):
        task = sample_task()
        restored = task_from_wire(task_to_wire(task))
        assert restored == task
        assert restored.seeds == (11, 12)  # tuple of ints, not list

    def test_malformed_task_frame_raises_protocol_error(self):
        with pytest.raises(BrokerProtocolError, match="malformed task frame"):
            task_from_wire({"ordinal": 0})

    def test_frame_round_trip_over_a_socketpair(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"type": "hello", "workers": 3})
            assert recv_frame(right) == {"type": "hello", "workers": 3}
        finally:
            left.close()
            right.close()

    def test_oversized_frame_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 2**31))
            with pytest.raises(BrokerProtocolError, match="exceeds the protocol cap"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_untyped_frame_rejected(self):
        left, right = socket.socketpair()
        try:
            payload = b'{"no_type": 1}'
            left.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(BrokerProtocolError, match="not a typed message"):
                recv_frame(right)
        finally:
            left.close()
            right.close()


class TestBrokerValidation:
    def test_invalid_num_shards(self):
        with pytest.raises(ValueError, match="num_shards"):
            BrokerBackend(num_shards=0)

    def test_invalid_min_brokers(self):
        with pytest.raises(ValueError, match="min_brokers"):
            BrokerBackend(min_brokers=0)

    def test_invalid_broker_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            run_broker("tcp://127.0.0.1:1", workers=0)

    def test_closed_backend_refuses_work(self):
        backend = BrokerBackend()
        backend.close()
        with pytest.raises(BrokerError, match="closed"):
            list(
                backend.run_shards([[sample_task()]], dynamics_point_replication)
            )

    def test_timeout_with_no_brokers(self):
        with BrokerBackend(timeout=0.3) as backend:
            with pytest.raises(BrokerError, match="no broker progress"):
                list(
                    backend.run_shards(
                        [[sample_task()]], dynamics_point_replication
                    )
                )

    def test_closure_replication_rejected_before_dispatch(self):
        def closure(seed, parameters):
            return {"x": 0.0}

        with BrokerBackend(timeout=0.3) as backend:
            with pytest.raises(ValueError, match="importable at module level"):
                list(backend.run_shards([[sample_task()]], closure))


class TestShardExecution:
    def test_results_stream_back_bit_identical_to_local_execution(self):
        tasks = [sample_task(0), sample_task(1)]
        with BrokerBackend(timeout=10.0) as backend:
            thread, holder = start_broker(backend.address)
            results = list(
                backend.run_shards(
                    [[tasks[0]], [tasks[1]]], dynamics_point_replication
                )
            )
        thread.join(timeout=10.0)
        assert "error" not in holder
        assert holder["executed"] == 2
        merged = {task.ordinal: rows for shard in results for task, rows in shard}
        expected = {
            task.ordinal: execute_task(task, dynamics_point_replication)
            for task in tasks
        }
        assert merged == expected

    def test_result_rows_pair_with_the_coordinators_own_tasks(self):
        task = sample_task()
        with BrokerBackend(timeout=10.0) as backend:
            thread, _ = start_broker(backend.address)
            stream = backend.run_shards([[task]], dynamics_point_replication)
            ((returned_task, rows),) = next(stream)
            list(stream)  # drain to completion
        thread.join(timeout=10.0)
        assert returned_task is task  # identity, not a wire round-trip copy
        assert len(rows) == len(task.seeds)

    def test_task_failure_aborts_the_run(self):
        broken = Task(
            ordinal=0,
            point_index=0,
            name="broken",
            function_ref="repro.experiments.dynamics_sweep:does_not_exist",
            mode="loop",
            parameters={},
            seeds=(1,),
            replicate_offset=0,
        )
        with BrokerBackend(timeout=10.0) as backend:
            thread, _ = start_broker(backend.address)
            with pytest.raises(BrokerError, match="failed shard"):
                list(backend.run_shards([[broken]], dynamics_point_replication))
        thread.join(timeout=10.0)


class TestCampaignOnBrokers:
    def test_two_brokers_bit_identical_to_serial(self):
        campaign = campaign_from_spec(campaign_spec())
        serial = run_campaign(campaign, backend=SerialExecutor())
        with BrokerBackend(min_brokers=2, timeout=15.0) as backend:
            threads = [start_broker(backend.address)[0] for _ in range(2)]
            brokered = run_campaign(campaign, backend=backend)
        for thread in threads:
            thread.join(timeout=10.0)
        assert [list(brokered[n].rows) for n in brokered.order] == [
            list(serial[n].rows) for n in serial.order
        ]

    def test_killing_a_broker_mid_campaign_loses_at_most_one_shard(self):
        # One broker vanishes after a single shard (the deterministic crash
        # stand-in); the survivor absorbs the requeued work and the campaign
        # still matches the serial run bit for bit.
        campaign = campaign_from_spec(campaign_spec())
        serial = run_campaign(campaign, backend=SerialExecutor())
        with BrokerBackend(min_brokers=2, timeout=15.0) as backend:
            crashy_thread, crashy = start_broker(backend.address, max_shards=1)
            survivor_thread, survivor = start_broker(backend.address)
            brokered = run_campaign(campaign, backend=backend)
        crashy_thread.join(timeout=10.0)
        survivor_thread.join(timeout=10.0)
        assert crashy.get("executed") == 1
        assert survivor.get("executed", 0) >= 1
        assert [list(brokered[n].rows) for n in brokered.order] == [
            list(serial[n].rows) for n in serial.order
        ]

    def test_resume_after_crash_replays_from_the_store(self, tmp_path):
        # Kill-and-resume acceptance: a campaign re-run against the same
        # store completes with zero new cache misses, even when the first
        # run rode through a broker crash.
        campaign = campaign_from_spec(campaign_spec())
        with ResultStore(tmp_path / "resume.sqlite") as store:
            with BrokerBackend(min_brokers=2, timeout=15.0) as backend:
                crashy_thread, _ = start_broker(backend.address, max_shards=1)
                survivor_thread, _ = start_broker(backend.address)
                cold = run_campaign(campaign, backend=backend, store=store)
            crashy_thread.join(timeout=10.0)
            survivor_thread.join(timeout=10.0)
            misses_after_cold = store.counters().misses
            assert misses_after_cold > 0
            with BrokerBackend(min_brokers=1, timeout=15.0) as backend:
                idle_thread, _ = start_broker(backend.address)
                warm = run_campaign(campaign, backend=backend, store=store)
            idle_thread.join(timeout=10.0)
            assert store.counters().misses == misses_after_cold  # 0 new misses
        assert [list(warm[n].rows) for n in warm.order] == [
            list(cold[n].rows) for n in cold.order
        ]


class TestLateAndPersistentBrokers:
    def test_broker_joining_mid_run_is_used(self):
        # The first broker dies after two of the four shards; a broker that
        # dials in mid-run must be accepted and serve the remainder.
        shards = [[sample_task(i)] for i in range(4)]
        with BrokerBackend(min_brokers=1, timeout=15.0) as backend:
            first_thread, first = start_broker(backend.address, max_shards=2)
            stream = backend.run_shards(shards, dynamics_point_replication)
            results = [next(stream), next(stream)]
            late_thread, late = start_broker(backend.address)
            results.extend(stream)
        first_thread.join(timeout=10.0)
        late_thread.join(timeout=10.0)
        assert len(results) == 4
        assert first["executed"] == 2
        assert late["executed"] == 2

    def test_one_fleet_serves_consecutive_runs(self):
        with BrokerBackend(timeout=15.0) as backend:
            thread, holder = start_broker(backend.address)
            first = list(
                backend.run_shards(
                    [[sample_task(0)]], dynamics_point_replication
                )
            )
            second = list(
                backend.run_shards(
                    [[sample_task(1)]], dynamics_point_replication
                )
            )
        thread.join(timeout=10.0)
        assert holder["executed"] == 2
        assert len(first) == len(second) == 1
