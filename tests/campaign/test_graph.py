"""Campaign spec validation, typed edges, topological order, content address."""

from __future__ import annotations

import pytest

from repro.campaign import (
    ALLOWED_INPUT_KINDS,
    Campaign,
    CampaignError,
    campaign_from_spec,
)

SWEEP_REQUEST = {
    "kind": "sweep",
    "options": [0.8, 0.5],
    "populations": [50],
    "horizon": 6,
    "replications": 2,
    "engine": "loop",
}


def three_node_spec():
    return {
        "name": "demo",
        "nodes": [
            {"id": "sim", "kind": "simulate", "request": dict(SWEEP_REQUEST)},
            {"id": "stats", "kind": "analyse", "inputs": ["sim"]},
            {"id": "summary", "kind": "report", "inputs": ["stats"]},
        ],
    }


class TestSpecParsing:
    def test_three_node_campaign_parses(self):
        campaign = campaign_from_spec(three_node_spec())
        assert campaign.name == "demo"
        assert [node.id for node in campaign.nodes] == ["sim", "stats", "summary"]
        assert [node.kind for node in campaign.nodes] == [
            "simulate",
            "analyse",
            "report",
        ]
        assert campaign.kind == "campaign"
        assert len(campaign) == 3

    def test_simulate_request_is_validated_through_the_request_layer(self):
        campaign = campaign_from_spec(three_node_spec())
        request = campaign.node("sim").request
        assert request is not None
        assert request.kind == "sweep"

    def test_spec_round_trips(self):
        campaign = campaign_from_spec(three_node_spec())
        assert campaign_from_spec(campaign.to_dict()) == campaign

    def test_nodes_are_stored_in_topological_order(self):
        spec = three_node_spec()
        spec["nodes"].reverse()  # report first, simulate last
        campaign = campaign_from_spec(spec)
        assert [node.id for node in campaign.nodes] == ["sim", "stats", "summary"]

    def test_dependents_map(self):
        campaign = campaign_from_spec(three_node_spec())
        assert campaign.dependents() == {
            "sim": ("stats",),
            "stats": ("summary",),
            "summary": (),
        }

    def test_simulate_nodes_listed_in_order(self):
        campaign = campaign_from_spec(three_node_spec())
        assert [node.id for node in campaign.simulate_nodes()] == ["sim"]

    def test_unknown_node_raises_key_error(self):
        campaign = campaign_from_spec(three_node_spec())
        with pytest.raises(KeyError):
            campaign.node("nope")


class TestSpecErrors:
    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda spec: spec.update(extra=1), "unknown campaign fields"),
            (lambda spec: spec.update(name=""), "'name' must be a non-empty string"),
            (lambda spec: spec.update(nodes=[]), "non-empty list"),
            (lambda spec: spec.update(nodes="sim"), "non-empty list"),
        ],
    )
    def test_top_level_problems(self, mutate, fragment):
        spec = three_node_spec()
        mutate(spec)
        with pytest.raises(CampaignError, match=fragment):
            campaign_from_spec(spec)

    def test_spec_must_be_a_mapping(self):
        with pytest.raises(CampaignError, match="JSON object"):
            campaign_from_spec([1, 2, 3])

    def test_unknown_kind_rejected(self):
        spec = three_node_spec()
        spec["nodes"][1]["kind"] = "aggregate"
        with pytest.raises(CampaignError, match="unknown kind 'aggregate'"):
            campaign_from_spec(spec)

    def test_unknown_node_fields_rejected(self):
        spec = three_node_spec()
        spec["nodes"][1]["metrix"] = ["regret"]  # typo must not be dropped
        with pytest.raises(CampaignError, match="unknown fields \\['metrix'\\]"):
            campaign_from_spec(spec)

    def test_duplicate_node_ids_rejected(self):
        spec = three_node_spec()
        spec["nodes"][2]["id"] = "sim"
        with pytest.raises(CampaignError, match="duplicate node id 'sim'"):
            campaign_from_spec(spec)

    def test_unknown_input_rejected(self):
        spec = three_node_spec()
        spec["nodes"][1]["inputs"] = ["ghost"]
        with pytest.raises(CampaignError, match="unknown node 'ghost'"):
            campaign_from_spec(spec)

    def test_self_dependency_rejected(self):
        spec = three_node_spec()
        spec["nodes"][1]["inputs"] = ["stats"]
        with pytest.raises(CampaignError, match="depend on itself"):
            campaign_from_spec(spec)

    def test_typed_edges_reject_analyse_over_analyse(self):
        spec = three_node_spec()
        spec["nodes"].append(
            {"id": "meta", "kind": "analyse", "inputs": ["stats"]}
        )
        with pytest.raises(CampaignError, match="cannot consume analyse node"):
            campaign_from_spec(spec)

    def test_nothing_may_consume_a_report(self):
        # Part of why well-typed campaigns are acyclic by construction.
        assert all(
            "report" not in allowed for allowed in ALLOWED_INPUT_KINDS.values()
        )
        spec = three_node_spec()
        spec["nodes"].append(
            {"id": "tap", "kind": "report", "inputs": ["summary"]}
        )
        with pytest.raises(CampaignError, match="cannot consume report node"):
            campaign_from_spec(spec)

    def test_invalid_simulate_request_names_the_node(self):
        spec = three_node_spec()
        spec["nodes"][0]["request"] = {"kind": "sweep"}  # missing fields
        with pytest.raises(CampaignError, match="simulate node 'sim'"):
            campaign_from_spec(spec)

    def test_simulate_node_rejects_inputs(self):
        spec = three_node_spec()
        spec["nodes"][0]["inputs"] = ["stats"]
        with pytest.raises(CampaignError, match="unknown fields \\['inputs'\\]"):
            campaign_from_spec(spec)

    def test_report_over_raw_simulate_is_allowed(self):
        spec = three_node_spec()
        spec["nodes"][2]["inputs"] = ["sim"]
        campaign = campaign_from_spec(spec)
        assert campaign.node("summary").inputs == ("sim",)


class TestContentAddress:
    def test_key_is_stable_across_spellings(self):
        # Same campaign with request defaults spelled out and node order
        # shuffled must share one content address (job-queue dedup).
        explicit = three_node_spec()
        explicit["nodes"].reverse()
        explicit["nodes"][-1]["request"]["seed"] = 0  # the default
        assert (
            campaign_from_spec(three_node_spec()).key()
            == campaign_from_spec(explicit).key()
        )

    def test_key_changes_with_the_workload(self):
        changed = three_node_spec()
        changed["nodes"][0]["request"]["horizon"] = 7
        assert (
            campaign_from_spec(three_node_spec()).key()
            != campaign_from_spec(changed).key()
        )

    def test_key_is_a_sha256_hex_digest(self):
        key = campaign_from_spec(three_node_spec()).key()
        assert len(key) == 64
        int(key, 16)  # hex or raise


class TestCycleGuard:
    def test_future_kind_cycles_would_be_caught(self):
        # Today's typed edges cannot form a cycle; exercise Kahn's check
        # directly against a hand-built cyclic graph.
        from repro.campaign.graph import CampaignNode, _topological_order

        cycle = [
            CampaignNode(id="a", kind="analyse", inputs=("b",)),
            CampaignNode(id="b", kind="analyse", inputs=("a",)),
        ]
        with pytest.raises(CampaignError, match="cycle"):
            _topological_order(cycle)


def test_campaign_is_frozen():
    campaign = campaign_from_spec(three_node_spec())
    with pytest.raises(AttributeError):
        campaign.name = "other"
    assert isinstance(campaign, Campaign)
