"""Scheduler semantics: ready-set order, node execution, store short-circuit."""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignError,
    CampaignScheduler,
    run_campaign,
    campaign_from_spec,
)
from repro.campaign.scheduler import _numeric_columns
from repro.runtime import ResultStore, SerialExecutor
from repro.service import execute_request, sweep_request
from repro.runtime.options import ExecutionOptions

SWEEP_REQUEST = {
    "kind": "sweep",
    "options": [0.8, 0.5],
    "populations": [50],
    "horizon": 6,
    "replications": 2,
    "engine": "loop",
}


def three_node_spec():
    return {
        "name": "demo",
        "nodes": [
            {"id": "sim", "kind": "simulate", "request": dict(SWEEP_REQUEST)},
            {"id": "stats", "kind": "analyse", "inputs": ["sim"]},
            {"id": "summary", "kind": "report", "inputs": ["sim", "stats"]},
        ],
    }


@pytest.fixture()
def campaign():
    return campaign_from_spec(three_node_spec())


class TestThreeNodeCampaign:
    def test_runs_in_dependency_order(self, campaign):
        result = run_campaign(campaign)
        assert result.order == ["sim", "stats", "summary"]

    def test_simulate_rows_match_a_direct_request_run(self, campaign):
        # The scheduler routes simulate nodes through the same
        # execute_request path the CLI and daemon use — bit-identical rows.
        result = run_campaign(campaign)
        direct = execute_request(
            sweep_request(
                options=[0.8, 0.5],
                populations=[50],
                horizon=6,
                replications=2,
                engine="loop",
            ),
            options=ExecutionOptions(executor=SerialExecutor()),
        )
        assert list(result["sim"].rows) == direct.rows

    def test_analyse_summarises_numeric_columns(self, campaign):
        result = run_campaign(campaign)
        rows = result["stats"].rows
        metrics = [row["metric"] for row in rows]
        assert len(metrics) == len(set(metrics)) > 0
        for row in rows:
            for stat in ("mean", "std", "min", "max", "ci_low", "ci_high"):
                assert stat in row
            assert row["min"] <= row["mean"] <= row["max"]

    def test_report_tags_rows_and_renders_text(self, campaign):
        result = run_campaign(campaign)
        report = result["summary"]
        tags = {row["node"] for row in report.rows}
        assert tags == {"sim", "stats"}
        assert len(report.rows) == len(result["sim"].rows) + len(
            result["stats"].rows
        )
        assert report.text is not None
        assert report.text.splitlines()[0] == "Report summary"
        assert "[analyse] stats:" in report.text

    def test_reports_accessor_and_to_dict(self, campaign):
        result = run_campaign(campaign)
        assert [report.node_id for report in result.reports()] == ["summary"]
        payload = result.to_dict()
        assert payload["campaign"] == "demo"
        assert payload["key"] == campaign.key()
        assert payload["order"] == result.order
        assert [node["id"] for node in payload["nodes"]] == result.order

    def test_on_node_callback_fires_per_node(self, campaign):
        seen = []
        run_campaign(campaign, on_node=lambda node, res: seen.append(node.id))
        assert seen == ["sim", "stats", "summary"]


class TestReadySetOrder:
    def test_ready_analysis_preempts_queued_simulates(self):
        # With two independent simulate chains, the analyse over the first
        # finished sweep must run before the second (expensive) simulate.
        spec = {
            "name": "interleave",
            "nodes": [
                {"id": "sim-a", "kind": "simulate", "request": dict(SWEEP_REQUEST)},
                {
                    "id": "sim-b",
                    "kind": "simulate",
                    "request": {**SWEEP_REQUEST, "seed": 1},
                },
                {"id": "stats-a", "kind": "analyse", "inputs": ["sim-a"]},
                {"id": "stats-b", "kind": "analyse", "inputs": ["sim-b"]},
            ],
        }
        result = run_campaign(campaign_from_spec(spec))
        assert result.order == ["sim-a", "stats-a", "sim-b", "stats-b"]


class TestStoreIntegration:
    def test_warm_store_short_circuits_every_shard(self, campaign, tmp_path):
        with ResultStore(tmp_path / "campaign.sqlite") as store:
            cold = run_campaign(campaign, store=store)
            cold_misses = store.counters().misses
            assert cold_misses > 0
            warm = run_campaign(campaign, store=store)
            counters = store.counters()
            assert counters.misses == cold_misses  # zero new misses
            assert counters.hits > 0
        for node_id in cold.order:
            assert list(warm[node_id].rows) == list(cold[node_id].rows)

    def test_storeless_and_stored_runs_are_bit_identical(self, campaign, tmp_path):
        bare = run_campaign(campaign)
        with ResultStore(tmp_path / "campaign.sqlite") as store:
            stored = run_campaign(campaign, store=store)
        assert [list(stored[n].rows) for n in stored.order] == [
            list(bare[n].rows) for n in bare.order
        ]


class TestAnalyseValidation:
    def test_named_metric_missing_from_rows_is_an_error(self):
        spec = three_node_spec()
        spec["nodes"][1]["metrics"] = ["no_such_metric"]
        campaign = campaign_from_spec(spec)
        with pytest.raises(CampaignError, match="no_such_metric"):
            run_campaign(campaign)

    def test_named_metrics_restrict_the_summary(self):
        spec = three_node_spec()
        spec["nodes"][1]["metrics"] = ["best_option_share"]
        result = run_campaign(campaign_from_spec(spec))
        assert [row["metric"] for row in result["stats"].rows] == [
            "best_option_share"
        ]


class TestNumericColumns:
    def test_booleans_and_strings_are_not_metrics(self):
        rows = [
            {"name": "a", "value": 1.0, "flag": True, "count": 3},
            {"name": "b", "value": 2.0, "flag": False, "count": 4},
        ]
        assert _numeric_columns(rows) == ["value", "count"]

    def test_column_must_be_numeric_in_every_row(self):
        rows = [{"value": 1.0, "extra": 2.0}, {"value": 3.0, "extra": None}]
        assert _numeric_columns(rows) == ["value"]

    def test_empty_rows_give_no_columns(self):
        assert _numeric_columns([]) == []


def test_scheduler_defaults_to_serial_executor(campaign):
    # Explicit backend=None must behave exactly like the default.
    explicit = CampaignScheduler(backend=None).run(campaign)
    default = CampaignScheduler().run(campaign)
    assert [list(explicit[n].rows) for n in explicit.order] == [
        list(default[n].rows) for n in default.order
    ]
