"""Integration lockdown for the parallel runtime.

Two guarantees the runtime advertises:

* **Execution invariance** — for every replication mode (per-seed loop,
  replicate-batched, grid-batched), a sweep produces bit-identical
  per-(point, seed) metrics whether it runs on the in-process serial
  executor, a 2-worker process pool, or entirely from a warm result store.
* **Resumability** — a run killed mid-sweep leaves every completed shard in
  the store; re-running the same sweep serves those shards from cache,
  computes only the remainder, and ends bit-identical to a never-killed run.
"""

import pytest

from repro.experiments import ExperimentConfig, ParameterGrid, run_replications, run_sweep
from repro.experiments.dynamics_sweep import (
    dynamics_grid_replication,
    dynamics_point_replication,
)
from repro.experiments.protocol_sweep import protocol_batched_replication
from repro.runtime import ParallelExecutor, ResultStore, SerialExecutor

GRID = ParameterGrid({"N": [60, 120], "beta": [0.6, 0.7]})
BASE = {"qualities": (0.8, 0.5), "T": 10}

REPLICATIONS = {
    "loop": dynamics_point_replication,
    "batched": protocol_batched_replication,
    "grid": dynamics_grid_replication,
}


def sweep_metrics(replication, **kwargs):
    results, _ = run_sweep(
        "runtime-xval",
        GRID,
        replication,
        replications=3,
        seed=17,
        base_parameters=BASE,
        **kwargs,
    )
    return [result.metrics for result in results]


@pytest.mark.parametrize("mode", sorted(REPLICATIONS))
def test_serial_two_worker_and_cached_sweeps_are_bit_identical(mode, tmp_path):
    replication = REPLICATIONS[mode]
    serial = sweep_metrics(replication, executor=SerialExecutor())
    parallel = sweep_metrics(
        replication, executor=ParallelExecutor(2, shards_per_worker=2)
    )
    assert parallel == serial

    store_path = tmp_path / f"{mode}.sqlite"
    with ResultStore(store_path) as store:
        cold = sweep_metrics(replication, store=store)
        assert store.misses and not store.hits
    with ResultStore(store_path) as store:
        replay = sweep_metrics(replication, store=store)
        assert store.misses == 0  # zero recomputation from a warm store
    assert cold == serial
    assert replay == serial


def test_loop_runtime_matches_the_legacy_serial_path():
    # The per-seed loop mode is the one path whose stream layout is shared
    # with the legacy in-process engine, so the runtime must match it bit
    # for bit (batched modes share streams across a batch; the grid mode's
    # fused whole-grid launch is documented as a different stream layout).
    assert sweep_metrics(dynamics_point_replication) == sweep_metrics(
        dynamics_point_replication, executor=SerialExecutor()
    )


class FailAfterFirstShard:
    """An executor that dies after its first completed shard (a mock kill)."""

    def __init__(self, num_shards=4):
        self.num_shards = num_shards

    def run_shards(self, shards, replication):
        executor = SerialExecutor(num_shards=self.num_shards)
        for index, shard_results in enumerate(executor.run_shards(shards, replication)):
            if index >= 1:
                raise KeyboardInterrupt("simulated mid-sweep kill")
            yield shard_results


def test_killed_sweep_resumes_from_the_store(tmp_path):
    store_path = tmp_path / "resume.sqlite"
    with ResultStore(store_path) as store:
        with pytest.raises(KeyboardInterrupt):
            sweep_metrics(
                dynamics_point_replication,
                executor=FailAfterFirstShard(num_shards=4),
                store=store,
            )
        persisted = len(store)
        assert 0 < persisted < 12  # some shards flushed, some lost

    with ResultStore(store_path) as store:
        resumed = sweep_metrics(dynamics_point_replication, store=store)
        assert store.hits == persisted  # completed shards were not recomputed
        assert store.misses == 12 - persisted

    assert resumed == sweep_metrics(dynamics_point_replication)


def test_run_replications_executor_and_store_round_trip(tmp_path):
    config = ExperimentConfig(
        name="single-point",
        parameters=dict(BASE, N=80, beta=0.6),
        replications=4,
        seed=3,
    )
    baseline = run_replications(config, dynamics_point_replication)
    with ResultStore(tmp_path / "single.sqlite") as store:
        sharded = run_replications(
            config,
            dynamics_point_replication,
            executor=ParallelExecutor(2),
            store=store,
        )
        replayed = run_replications(config, dynamics_point_replication, store=store)
        assert store.hits == 4
    assert sharded.metrics == baseline.metrics
    assert replayed.metrics == baseline.metrics
    assert sharded.seeds == baseline.seeds
