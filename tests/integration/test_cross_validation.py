"""Cross-validation between the independent implementations of the dynamics.

The vectorised count-based simulator, the agent-based simulator, the
network-restricted simulator on the complete graph, the message-passing
protocol with perfect communication, and the replicate-axis batched engine
are five implementations of the same process.  These tests check they agree
statistically on aggregate behaviour (regret, best-option share, terminal
popularity) when run with the same parameters — and that the batched engine
with ``R = 1`` agrees with the sequential engine *bit-for-bit* at equal seeds.
"""

import numpy as np
import pytest
from scipy import stats

from repro import (
    AgentBasedDynamics,
    BernoulliEnvironment,
    Population,
    best_option_share,
    expected_regret,
    simulate_batched_population,
    simulate_finite_population,
)
from repro.distributed import DistributedLearningProtocol
from repro.network import (
    SocialNetwork,
    simulate_batched_network_dynamics,
    simulate_network_dynamics,
)

QUALITIES = [0.85, 0.45]
BETA = 0.65
MU = 0.05
POPULATION = 400
HORIZON = 250


def vectorised_metrics(seed: int) -> tuple[float, float]:
    env = BernoulliEnvironment(QUALITIES, rng=seed)
    trajectory = simulate_finite_population(
        env, POPULATION, HORIZON, beta=BETA, mu=MU, rng=seed + 1000
    )
    matrix = trajectory.popularity_matrix()
    return expected_regret(matrix, QUALITIES), best_option_share(matrix, 0)


def agent_based_metrics(seed: int) -> tuple[float, float]:
    env = BernoulliEnvironment(QUALITIES, rng=seed)
    population = Population.homogeneous(POPULATION, 2, beta=BETA, rng=seed + 2000)
    dynamics = AgentBasedDynamics(population, exploration_rate=MU, rng=seed + 3000)
    trajectory = dynamics.run(env, HORIZON)
    matrix = trajectory.popularity_matrix()
    return expected_regret(matrix, QUALITIES), best_option_share(matrix, 0)


def network_metrics(seed: int) -> tuple[float, float]:
    env = BernoulliEnvironment(QUALITIES, rng=seed)
    network = SocialNetwork.complete(POPULATION)
    trajectory = simulate_network_dynamics(env, network, HORIZON, beta=BETA, mu=MU, rng=seed + 4000)
    matrix = trajectory.popularity_matrix()
    return expected_regret(matrix, QUALITIES), best_option_share(matrix, 0)


def protocol_metrics(seed: int) -> tuple[float, float]:
    env = BernoulliEnvironment(QUALITIES, rng=seed)
    from repro.core.adoption import SymmetricAdoptionRule

    protocol = DistributedLearningProtocol(
        POPULATION, 2, adoption_rule=SymmetricAdoptionRule(BETA), exploration_rate=MU, rng=seed + 5000
    )
    result = protocol.run(env, HORIZON)
    return result.regret, result.best_option_share


def average(metric_function, replications=4):
    values = np.array([metric_function(seed) for seed in range(replications)])
    return values.mean(axis=0)


class TestImplementationsAgree:
    def test_agent_based_matches_vectorised(self):
        vec_regret, vec_share = average(vectorised_metrics)
        agent_regret, agent_share = average(agent_based_metrics)
        assert agent_regret == pytest.approx(vec_regret, abs=0.06)
        assert agent_share == pytest.approx(vec_share, abs=0.12)

    def test_complete_graph_network_matches_vectorised(self):
        vec_regret, vec_share = average(vectorised_metrics)
        net_regret, net_share = average(network_metrics)
        assert net_regret == pytest.approx(vec_regret, abs=0.06)
        assert net_share == pytest.approx(vec_share, abs=0.12)

    def test_perfect_protocol_matches_vectorised(self):
        vec_regret, vec_share = average(vectorised_metrics)
        proto_regret, proto_share = average(protocol_metrics)
        assert proto_regret == pytest.approx(vec_regret, abs=0.06)
        assert proto_share == pytest.approx(vec_share, abs=0.12)

    def test_all_implementations_prefer_best_option(self):
        for metric_function in (
            vectorised_metrics,
            agent_based_metrics,
            network_metrics,
            protocol_metrics,
            batched_metrics,
        ):
            _, share = average(metric_function, replications=3)
            assert share > 0.5


def batched_metrics(seed: int) -> tuple[float, float]:
    env = BernoulliEnvironment(QUALITIES, rng=seed)
    trajectory = simulate_batched_population(
        env, POPULATION, HORIZON, 1, beta=BETA, mu=MU, rng=seed + 1000
    )
    return (
        float(trajectory.expected_regret(QUALITIES)[0]),
        float(trajectory.best_option_share(0)[0]),
    )


class TestBatchedEngineEquivalence:
    """The replicate-axis batched engine against the reference paths."""

    def test_exact_seed_identity_with_sequential_engine(self):
        """R=1 at equal seeds: identical rewards, popularities and counts."""
        env_sequential = BernoulliEnvironment(QUALITIES, rng=3)
        env_batched = BernoulliEnvironment(QUALITIES, rng=3)
        sequential = simulate_finite_population(
            env_sequential, POPULATION, 120, beta=BETA, mu=MU, rng=1003
        )
        batched = simulate_batched_population(
            env_batched, POPULATION, 120, 1, beta=BETA, mu=MU, rng=1003
        )
        np.testing.assert_array_equal(
            sequential.reward_matrix(), batched.reward_tensor()[:, 0, :]
        )
        np.testing.assert_array_equal(
            sequential.popularity_matrix(), batched.popularity_tensor()[:, 0, :]
        )
        for state_seq, state_batched in zip(sequential.states, batched.states):
            np.testing.assert_array_equal(state_seq.counts, state_batched.counts[0])

    @staticmethod
    def _sequential_terminal_popularities(replications, population, horizon):
        terminal = []
        for seed in range(replications):
            env = BernoulliEnvironment(QUALITIES, rng=seed)
            trajectory = simulate_finite_population(
                env, population, horizon, beta=BETA, mu=MU, rng=seed + 1000
            )
            terminal.append(trajectory.final_state().popularity()[0])
        return np.asarray(terminal)

    @staticmethod
    def _batched_terminal_popularities(replications, population, horizon):
        env = BernoulliEnvironment(QUALITIES, rng=777)
        trajectory = simulate_batched_population(
            env, population, horizon, replications, beta=BETA, mu=MU, rng=778
        )
        return trajectory.final_state().popularity()[:, 0]

    @staticmethod
    def _agent_based_terminal_popularities(replications, population, horizon):
        terminal = []
        for seed in range(replications):
            env = BernoulliEnvironment(QUALITIES, rng=seed)
            group = Population.homogeneous(population, 2, beta=BETA, rng=seed + 2000)
            dynamics = AgentBasedDynamics(group, exploration_rate=MU, rng=seed + 3000)
            trajectory = dynamics.run(env, horizon)
            terminal.append(trajectory.final_state().popularity()[0])
        return np.asarray(terminal)

    def test_terminal_popularity_ks_batched_vs_sequential(self):
        """KS two-sample test on the terminal best-option popularity."""
        sequential = self._sequential_terminal_popularities(80, POPULATION, 150)
        batched = self._batched_terminal_popularities(80, POPULATION, 150)
        result = stats.ks_2samp(sequential, batched)
        assert result.pvalue > 0.01

    def test_terminal_popularity_ks_batched_vs_agent_based(self):
        """KS two-sample test against the faithful agent-by-agent simulator."""
        agent_based = self._agent_based_terminal_popularities(25, 150, 60)
        batched = self._batched_terminal_popularities(25, 150, 60)
        result = stats.ks_2samp(agent_based, batched)
        assert result.pvalue > 0.005

    def test_terminal_popularity_chi_squared_batched_vs_sequential(self):
        """Chi-squared homogeneity test on quartile-binned terminal popularity."""
        sequential = self._sequential_terminal_popularities(80, POPULATION, 150)
        batched = self._batched_terminal_popularities(80, POPULATION, 150)
        edges = np.quantile(np.concatenate([sequential, batched]), [0.25, 0.5, 0.75])
        bins = np.concatenate([[-np.inf], edges, [np.inf]])
        table = np.array(
            [
                np.histogram(sequential, bins=bins)[0],
                np.histogram(batched, bins=bins)[0],
            ]
        )
        result = stats.chi2_contingency(table)
        assert result.pvalue > 0.01


# --------------------------------------------------------------------------
# Network engines: loop vs vectorised vs replicate-batched on a sparse graph.
# --------------------------------------------------------------------------

NETWORK_SIZE = 150
NETWORK_HORIZON = 60
NETWORK_REPLICATES = 70


class TestNetworkEngineEquivalence:
    """The vectorised and batched network engines against the per-agent loop.

    The gate runs on a genuinely sparse topology (a small-world graph, not
    the complete graph), so it exercises the neighbourhood restriction the
    engines actually vectorise: the CSR matvec, the committed-neighbour
    inverse-CDF draw, and the uniform fallbacks.  The engines consume the
    random stream differently, so the comparison is distributional — KS and
    chi-squared on the terminal best-option popularity across replicates —
    mirroring the PR 1 cross-validation pattern for the core engines.
    """

    # Fully seeded runs are deterministic, so the samples are computed once
    # and shared across the KS / chi-squared / sanity tests (the loop engine
    # alone costs ~N*T*R Python iterations per computation).
    _cache: dict = {}

    @staticmethod
    def _network() -> SocialNetwork:
        return SocialNetwork.watts_strogatz(
            NETWORK_SIZE, nearest_neighbors=6, rewiring_probability=0.1, rng=0
        )

    @classmethod
    def _per_seed_terminal_popularities(cls, engine: str) -> np.ndarray:
        if engine not in cls._cache:
            network = cls._network()
            terminal = []
            for seed in range(NETWORK_REPLICATES):
                env = BernoulliEnvironment(QUALITIES, rng=seed)
                trajectory = simulate_network_dynamics(
                    env,
                    network,
                    NETWORK_HORIZON,
                    beta=BETA,
                    mu=MU,
                    rng=seed + 1000,
                    engine=engine,
                )
                terminal.append(trajectory.final_state().popularity()[0])
            cls._cache[engine] = np.asarray(terminal)
        return cls._cache[engine]

    @classmethod
    def _batched_terminal_popularities(cls) -> np.ndarray:
        if "batched" not in cls._cache:
            env = BernoulliEnvironment(QUALITIES, rng=777)
            trajectory = simulate_batched_network_dynamics(
                env,
                cls._network(),
                NETWORK_HORIZON,
                NETWORK_REPLICATES,
                beta=BETA,
                mu=MU,
                rng=778,
            )
            cls._cache["batched"] = trajectory.final_state().popularity()[:, 0]
        return cls._cache["batched"]

    def test_vectorized_matches_loop_ks(self):
        """KS two-sample test: vectorised engine vs the per-agent loop."""
        loop = self._per_seed_terminal_popularities("loop")
        vectorized = self._per_seed_terminal_popularities("vectorized")
        result = stats.ks_2samp(loop, vectorized)
        assert result.pvalue > 0.01

    def test_batched_matches_loop_ks(self):
        """KS two-sample test: replicate-batched engine vs the per-agent loop."""
        loop = self._per_seed_terminal_popularities("loop")
        batched = self._batched_terminal_popularities()
        result = stats.ks_2samp(loop, batched)
        assert result.pvalue > 0.01

    def test_vectorized_matches_loop_chi_squared(self):
        """Chi-squared homogeneity on quartile-binned terminal popularity."""
        loop = self._per_seed_terminal_popularities("loop")
        vectorized = self._per_seed_terminal_popularities("vectorized")
        edges = np.quantile(np.concatenate([loop, vectorized]), [0.25, 0.5, 0.75])
        bins = np.concatenate([[-np.inf], edges, [np.inf]])
        table = np.array(
            [
                np.histogram(loop, bins=bins)[0],
                np.histogram(vectorized, bins=bins)[0],
            ]
        )
        result = stats.chi2_contingency(table)
        assert result.pvalue > 0.01

    def test_batched_matches_loop_chi_squared(self):
        """Chi-squared homogeneity: batched engine vs the per-agent loop."""
        loop = self._per_seed_terminal_popularities("loop")
        batched = self._batched_terminal_popularities()
        edges = np.quantile(np.concatenate([loop, batched]), [0.25, 0.5, 0.75])
        bins = np.concatenate([[-np.inf], edges, [np.inf]])
        table = np.array(
            [
                np.histogram(loop, bins=bins)[0],
                np.histogram(batched, bins=bins)[0],
            ]
        )
        result = stats.chi2_contingency(table)
        assert result.pvalue > 0.01

    def test_all_network_engines_prefer_best_option(self):
        """Every engine concentrates the sparse-topology group on the best option."""
        loop = self._per_seed_terminal_popularities("loop")
        vectorized = self._per_seed_terminal_popularities("vectorized")
        batched = self._batched_terminal_popularities()
        for values in (loop, vectorized, batched):
            assert values.mean() > 0.5


# --------------------------------------------------------------------------
# Protocol engines: message-passing loop vs vectorised vs replicate-batched
# under genuinely lossy communication.
# --------------------------------------------------------------------------

PROTOCOL_NODES = 150
PROTOCOL_ROUNDS = 60
PROTOCOL_REPLICATES = 70
PROTOCOL_LOSS = 0.25


class TestProtocolEngineEquivalence:
    """The vectorised and batched protocol engines against the message loop.

    The gate runs with a *lossy* transport (25% per-message drop rate), so it
    exercises exactly what the vectorised engines reimplement as array ops:
    the Bernoulli loss masks on queries and replies, the retry sub-rounds and
    the uniform fallback.  Under pure loss the delivered-message law of the
    engines is identical; the engines consume the random stream differently,
    so the comparison is distributional — KS and chi-squared on the terminal
    best-option popularity across replicates, mirroring the network-engine
    gate above.
    """

    # Fully seeded runs are deterministic, so the samples are computed once
    # and shared across the KS / chi-squared / sanity tests (the loop engine
    # alone pays ~2 Python message objects per node per round).
    _cache: dict = {}

    @classmethod
    def _terminal_popularities(cls, engine: str) -> np.ndarray:
        if engine in cls._cache:
            return cls._cache[engine]
        from repro.core.adoption import SymmetricAdoptionRule
        from repro.distributed import (
            BatchedProtocol,
            LossyTransport,
            VectorizedProtocol,
        )

        if engine == "batched":
            env = BernoulliEnvironment(QUALITIES, rng=777)
            protocol = BatchedProtocol(
                PROTOCOL_NODES,
                2,
                num_replicates=PROTOCOL_REPLICATES,
                adoption_rule=SymmetricAdoptionRule(BETA),
                exploration_rate=MU,
                loss_rate=PROTOCOL_LOSS,
                rng=778,
            )
            result = protocol.run(env, PROTOCOL_ROUNDS)
            cls._cache[engine] = result.trajectory.popularity_tensor()[-1, :, 0]
            return cls._cache[engine]

        terminal = []
        for seed in range(PROTOCOL_REPLICATES):
            env = BernoulliEnvironment(QUALITIES, rng=seed)
            if engine == "loop":
                protocol = DistributedLearningProtocol(
                    PROTOCOL_NODES,
                    2,
                    adoption_rule=SymmetricAdoptionRule(BETA),
                    exploration_rate=MU,
                    transport=LossyTransport(loss_rate=PROTOCOL_LOSS, rng=seed + 500),
                    rng=seed + 1000,
                )
            else:
                protocol = VectorizedProtocol(
                    PROTOCOL_NODES,
                    2,
                    adoption_rule=SymmetricAdoptionRule(BETA),
                    exploration_rate=MU,
                    loss_rate=PROTOCOL_LOSS,
                    rng=seed + 1000,
                )
            result = protocol.run(env, PROTOCOL_ROUNDS)
            terminal.append(result.popularity_matrix[-1, 0])
        cls._cache[engine] = np.asarray(terminal)
        return cls._cache[engine]

    @staticmethod
    def _chi_squared_pvalue(first: np.ndarray, second: np.ndarray) -> float:
        edges = np.quantile(np.concatenate([first, second]), [0.25, 0.5, 0.75])
        bins = np.concatenate([[-np.inf], edges, [np.inf]])
        table = np.array(
            [np.histogram(first, bins=bins)[0], np.histogram(second, bins=bins)[0]]
        )
        return float(stats.chi2_contingency(table).pvalue)

    def test_vectorized_matches_loop_ks(self):
        """KS two-sample test: array-ops engine vs the message-passing loop."""
        loop = self._terminal_popularities("loop")
        vectorized = self._terminal_popularities("vectorized")
        assert stats.ks_2samp(loop, vectorized).pvalue > 0.01

    def test_batched_matches_loop_ks(self):
        """KS two-sample test: replicate-batched engine vs the message loop."""
        loop = self._terminal_popularities("loop")
        batched = self._terminal_popularities("batched")
        assert stats.ks_2samp(loop, batched).pvalue > 0.01

    def test_vectorized_matches_loop_chi_squared(self):
        """Chi-squared homogeneity on quartile-binned terminal popularity."""
        loop = self._terminal_popularities("loop")
        vectorized = self._terminal_popularities("vectorized")
        assert self._chi_squared_pvalue(loop, vectorized) > 0.01

    def test_batched_matches_loop_chi_squared(self):
        """Chi-squared homogeneity: batched engine vs the message loop."""
        loop = self._terminal_popularities("loop")
        batched = self._terminal_popularities("batched")
        assert self._chi_squared_pvalue(loop, batched) > 0.01

    def test_perfect_vectorized_protocol_matches_shared_memory(self):
        """With no loss, the vectorised protocol reproduces the shared-memory dynamics."""
        from repro.core.adoption import SymmetricAdoptionRule
        from repro.distributed import VectorizedProtocol

        def vectorized_protocol_metrics(seed: int) -> tuple[float, float]:
            env = BernoulliEnvironment(QUALITIES, rng=seed)
            protocol = VectorizedProtocol(
                POPULATION,
                2,
                adoption_rule=SymmetricAdoptionRule(BETA),
                exploration_rate=MU,
                rng=seed + 5000,
            )
            result = protocol.run(env, HORIZON)
            return result.regret, result.best_option_share

        vec_regret, vec_share = average(vectorised_metrics)
        proto_regret, proto_share = average(vectorized_protocol_metrics)
        assert proto_regret == pytest.approx(vec_regret, abs=0.06)
        assert proto_share == pytest.approx(vec_share, abs=0.12)

    def test_all_protocol_engines_prefer_best_option(self):
        """Every engine concentrates the lossy fleet on the best option."""
        for engine in ("loop", "vectorized", "batched"):
            assert self._terminal_popularities(engine).mean() > 0.5
