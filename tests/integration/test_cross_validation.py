"""Cross-validation between the independent implementations of the dynamics.

The vectorised count-based simulator, the agent-based simulator, the
network-restricted simulator on the complete graph, and the message-passing
protocol with perfect communication are four implementations of the same
process.  These tests check they agree statistically on aggregate behaviour
(regret and best-option share) when run with the same parameters.
"""

import numpy as np
import pytest

from repro import (
    AgentBasedDynamics,
    BernoulliEnvironment,
    Population,
    best_option_share,
    expected_regret,
    simulate_finite_population,
)
from repro.distributed import DistributedLearningProtocol
from repro.network import SocialNetwork, simulate_network_dynamics

QUALITIES = [0.85, 0.45]
BETA = 0.65
MU = 0.05
POPULATION = 400
HORIZON = 250


def vectorised_metrics(seed: int) -> tuple[float, float]:
    env = BernoulliEnvironment(QUALITIES, rng=seed)
    trajectory = simulate_finite_population(
        env, POPULATION, HORIZON, beta=BETA, mu=MU, rng=seed + 1000
    )
    matrix = trajectory.popularity_matrix()
    return expected_regret(matrix, QUALITIES), best_option_share(matrix, 0)


def agent_based_metrics(seed: int) -> tuple[float, float]:
    env = BernoulliEnvironment(QUALITIES, rng=seed)
    population = Population.homogeneous(POPULATION, 2, beta=BETA, rng=seed + 2000)
    dynamics = AgentBasedDynamics(population, exploration_rate=MU, rng=seed + 3000)
    trajectory = dynamics.run(env, HORIZON)
    matrix = trajectory.popularity_matrix()
    return expected_regret(matrix, QUALITIES), best_option_share(matrix, 0)


def network_metrics(seed: int) -> tuple[float, float]:
    env = BernoulliEnvironment(QUALITIES, rng=seed)
    network = SocialNetwork.complete(POPULATION)
    trajectory = simulate_network_dynamics(env, network, HORIZON, beta=BETA, mu=MU, rng=seed + 4000)
    matrix = trajectory.popularity_matrix()
    return expected_regret(matrix, QUALITIES), best_option_share(matrix, 0)


def protocol_metrics(seed: int) -> tuple[float, float]:
    env = BernoulliEnvironment(QUALITIES, rng=seed)
    from repro.core.adoption import SymmetricAdoptionRule

    protocol = DistributedLearningProtocol(
        POPULATION, 2, adoption_rule=SymmetricAdoptionRule(BETA), exploration_rate=MU, rng=seed + 5000
    )
    result = protocol.run(env, HORIZON)
    return result.regret, result.best_option_share


def average(metric_function, replications=4):
    values = np.array([metric_function(seed) for seed in range(replications)])
    return values.mean(axis=0)


class TestImplementationsAgree:
    def test_agent_based_matches_vectorised(self):
        vec_regret, vec_share = average(vectorised_metrics)
        agent_regret, agent_share = average(agent_based_metrics)
        assert agent_regret == pytest.approx(vec_regret, abs=0.06)
        assert agent_share == pytest.approx(vec_share, abs=0.12)

    def test_complete_graph_network_matches_vectorised(self):
        vec_regret, vec_share = average(vectorised_metrics)
        net_regret, net_share = average(network_metrics)
        assert net_regret == pytest.approx(vec_regret, abs=0.06)
        assert net_share == pytest.approx(vec_share, abs=0.12)

    def test_perfect_protocol_matches_vectorised(self):
        vec_regret, vec_share = average(vectorised_metrics)
        proto_regret, proto_share = average(protocol_metrics)
        assert proto_regret == pytest.approx(vec_regret, abs=0.06)
        assert proto_share == pytest.approx(vec_share, abs=0.12)

    def test_all_implementations_prefer_best_option(self):
        for metric_function in (
            vectorised_metrics,
            agent_based_metrics,
            network_metrics,
            protocol_metrics,
        ):
            _, share = average(metric_function, replications=3)
            assert share > 0.5
