"""Integration tests validating the paper's main quantitative claims in simulation.

These tests are the reproduction's core assertions:

* Theorem 4.3 — the infinite-population dynamics achieves regret below
  ``3*delta`` once ``T >= ln(m)/delta^2`` (and below the sharper
  ``ln(m)/(delta*T) + 2*delta`` for the horizons we run), and the best
  option's average share is at least ``1 - 3*delta/(eta_1 - eta_2)``.
* Theorem 4.4 — the finite-population dynamics achieves regret below
  ``6*delta`` at moderate population sizes (far smaller than the
  conservative thresholds in the theorem statement), including over horizons
  spanning many epochs.
* Lemma 4.5 — under the shared-reward coupling the finite and infinite
  trajectories stay within the lemma's multiplicative factor for the horizon
  over which the factor is meaningful.
"""

import numpy as np

from repro import (
    BernoulliEnvironment,
    TheoryBounds,
    best_option_share,
    expected_regret,
    run_coupled_dynamics,
    simulate_finite_population,
    simulate_infinite_population,
)
from repro.analysis import summarize_replications
from repro.core.epochs import EpochSchedule


BETA = 0.6
DELTA = TheoryBounds(num_options=2, beta=BETA, mu=0.01).delta


class TestTheorem43InfinitePopulation:
    def test_regret_below_three_delta(self):
        """Regret_inf(T) <= 3*delta for T >= ln(m)/delta^2 (m = 5)."""
        bounds = TheoryBounds(num_options=5, beta=BETA, mu=0.025)
        horizon = int(np.ceil(bounds.minimum_horizon())) * 2
        regrets = []
        for seed in range(8):
            env = BernoulliEnvironment.with_gap(5, best_quality=0.8, gap=0.3, rng=seed)
            trajectory = simulate_infinite_population(env, horizon, beta=BETA, mu=bounds.mu)
            regrets.append(expected_regret(trajectory.distribution_matrix(), env.qualities))
        mean_regret = summarize_replications(regrets).mean
        assert mean_regret <= bounds.infinite_regret_bound()
        # The sharper intermediate bound should hold as well.
        assert mean_regret <= bounds.infinite_regret_bound(horizon)

    def test_best_option_share_bound(self):
        """avg_t E[P^{t-1}_1] >= 1 - 3*delta/(eta1 - eta2) when the bound is non-vacuous."""
        gap = 0.6  # large gap so the bound is informative even with delta ~ 0.4
        bounds = TheoryBounds(num_options=3, beta=0.55, mu=0.006)
        horizon = int(np.ceil(bounds.minimum_horizon())) * 2
        shares = []
        for seed in range(8):
            env = BernoulliEnvironment.with_gap(3, best_quality=0.85, gap=gap, rng=seed)
            trajectory = simulate_infinite_population(env, horizon, beta=0.55, mu=bounds.mu)
            shares.append(best_option_share(trajectory.distribution_matrix(), 0))
        assert summarize_replications(shares).mean >= bounds.best_option_share_bound(gap)

    def test_regret_shrinks_with_smaller_beta(self):
        """The closer beta is to 1/2 the better the regret bound — and the regret."""
        results = {}
        for beta in (0.55, 0.72):
            regrets = []
            for seed in range(6):
                env = BernoulliEnvironment.with_gap(5, best_quality=0.8, gap=0.3, rng=seed)
                trajectory = simulate_infinite_population(env, 3000, beta=beta)
                regrets.append(expected_regret(trajectory.distribution_matrix(), env.qualities))
            results[beta] = np.mean(regrets)
        assert results[0.55] <= results[0.72] + 0.02


class TestTheorem44FinitePopulation:
    def test_regret_below_six_delta(self):
        """Regret_N(T) <= 6*delta for a moderate N and T >= ln(m)/delta^2."""
        bounds = TheoryBounds(num_options=5, beta=BETA, mu=0.025, population_size=5000)
        horizon = int(np.ceil(bounds.minimum_horizon())) * 2
        regrets = []
        for seed in range(6):
            env = BernoulliEnvironment.with_gap(5, best_quality=0.8, gap=0.3, rng=seed)
            trajectory = simulate_finite_population(
                env, population_size=5000, horizon=horizon, beta=BETA, mu=bounds.mu, rng=seed + 100
            )
            regrets.append(expected_regret(trajectory.popularity_matrix(), env.qualities))
        assert summarize_replications(regrets).mean <= bounds.finite_regret_bound()

    def test_regret_controlled_over_many_epochs(self):
        """Long horizons (several epochs) do not blow up the regret."""
        bounds = TheoryBounds(num_options=3, beta=BETA, mu=0.025, population_size=3000)
        schedule_horizon = int(np.ceil(bounds.epoch_length())) * 4
        env = BernoulliEnvironment.with_gap(3, best_quality=0.8, gap=0.3, rng=0)
        trajectory = simulate_finite_population(
            env, population_size=3000, horizon=schedule_horizon, beta=BETA, mu=bounds.mu, rng=1
        )
        schedule = EpochSchedule.from_bounds(bounds, schedule_horizon)
        per_epoch = schedule.per_epoch_regret(
            trajectory.popularity_matrix(),
            trajectory.reward_matrix().astype(float),
            best_quality=env.best_quality,
        )
        # Every epoch's regret is within the theorem bound (not just the average).
        assert np.all(per_epoch <= bounds.finite_regret_bound())

    def test_regret_improves_with_population_size(self):
        """Larger groups track the infinite-population benchmark more closely."""
        def mean_regret(population_size: int) -> float:
            regrets = []
            for seed in range(5):
                env = BernoulliEnvironment.with_gap(4, best_quality=0.8, gap=0.3, rng=seed)
                trajectory = simulate_finite_population(
                    env, population_size=population_size, horizon=400, beta=BETA, rng=seed + 50
                )
                regrets.append(expected_regret(trajectory.popularity_matrix(), env.qualities))
            return float(np.mean(regrets))

        assert mean_regret(5000) <= mean_regret(50) + 0.02

    def test_occupancy_floor_respected_on_average(self):
        """Proposition 4.3's floor: every option keeps ~mu(1-beta)/(4m) popularity."""
        bounds = TheoryBounds(num_options=4, beta=BETA, mu=0.025, population_size=20000)
        env = BernoulliEnvironment.with_gap(4, best_quality=0.9, gap=0.5, rng=3)
        trajectory = simulate_finite_population(
            env, population_size=20000, horizon=500, beta=BETA, mu=bounds.mu, rng=4
        )
        min_popularity = trajectory.popularity_matrix()[100:].min()
        assert min_popularity >= bounds.occupancy_floor() * 0.5


class TestLemma45Coupling:
    def test_coupled_trajectories_within_lemma_bound(self):
        env = BernoulliEnvironment([0.8, 0.5], rng=0)
        run = run_coupled_dynamics(env, population_size=100_000, horizon=6, beta=BETA, rng=1)
        flags = run.within_bound()
        assert flags is not None and flags.all()

    def test_measured_ratio_much_tighter_than_bound(self):
        """The lemma's 5^t growth is very loose; measured ratios stay near 1."""
        env = BernoulliEnvironment([0.8, 0.5], rng=2)
        run = run_coupled_dynamics(env, population_size=50_000, horizon=10, beta=BETA, rng=3)
        assert run.max_ratio() < 1.2

    def test_closeness_improves_with_population(self):
        ratios = {}
        for population_size in (500, 50_000):
            env = BernoulliEnvironment([0.8, 0.5], rng=4)
            run = run_coupled_dynamics(
                env, population_size=population_size, horizon=8, beta=BETA, rng=5
            )
            ratios[population_size] = run.max_ratio()
        assert ratios[50_000] < ratios[500]
