"""Golden-trajectory regression tests: engines must reproduce committed runs bit-for-bit.

The statistical equivalence suite (`test_cross_validation.py`) catches
*distributional* drift; these tests catch *any* drift.  Each committed JSON
under ``tests/fixtures/golden/`` pins one engine's complete output — per-step
counts, observed rewards, per-agent choices — for a fully seeded
configuration, including the per-row-parameterised batched engine that the
sweep-axis batching of this repository relies on.  A refactor that reorders a
single random draw fails here even if the resulting process is statistically
identical.

Fixtures are regenerated (after an *intentional* dynamics change) with::

    PYTHONPATH=src python tests/fixtures/generate_golden.py

NumPy's stream-stability guarantee only holds within a release line, so a
fixture generated under a different ``major.minor`` NumPy skips instead of
failing.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

FIXTURES_DIR = Path(__file__).parent.parent / "fixtures"
GOLDEN_DIR = FIXTURES_DIR / "golden"


def _load_generator_module():
    spec = importlib.util.spec_from_file_location(
        "generate_golden", FIXTURES_DIR / "generate_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module

generate_golden = _load_generator_module()

ENGINES = sorted(generate_golden.GENERATORS)


def _load_fixture(name: str) -> dict:
    path = GOLDEN_DIR / f"{name}.json"
    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path}; regenerate with "
            "`PYTHONPATH=src python tests/fixtures/generate_golden.py`"
        )
    with path.open() as handle:
        return json.load(handle)


def _skip_unless_same_numpy_release(fixture: dict) -> None:
    current = ".".join(np.__version__.split(".")[:2])
    recorded = fixture["numpy_release"]
    if current != recorded:
        pytest.skip(
            f"golden fixture generated under numpy {recorded}, running "
            f"{current}; NumPy only guarantees stream stability within a "
            "release line"
        )


class TestGoldenTrajectories:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_engine_reproduces_committed_trajectory(self, engine):
        fixture = _load_fixture(engine)
        _skip_unless_same_numpy_release(fixture)
        fresh = generate_golden.GENERATORS[engine]()

        assert fresh["config"] == fixture["config"], (
            f"the {engine} golden configuration changed; if intentional, "
            "regenerate the fixtures"
        )
        for field in ("counts", "rewards", "choices", "alive"):
            if field not in fixture:
                continue
            committed = np.asarray(fixture[field])
            regenerated = np.asarray(fresh[field])
            assert regenerated.shape == committed.shape, (
                f"{engine} {field} shape changed: "
                f"{committed.shape} -> {regenerated.shape}"
            )
            mismatches = np.argwhere(regenerated != committed)
            assert mismatches.size == 0, (
                f"{engine} dynamics drifted from the committed golden "
                f"trajectory: first {field} mismatch at index "
                f"{tuple(mismatches[0])} "
                f"(committed {committed[tuple(mismatches[0])]}, "
                f"got {regenerated[tuple(mismatches[0])]}). If this change "
                "is intentional, regenerate with `PYTHONPATH=src python "
                "tests/fixtures/generate_golden.py`"
            )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_fixture_is_internally_consistent(self, engine):
        """Committed fixtures themselves satisfy the engines' invariants."""
        fixture = _load_fixture(engine)
        counts = np.asarray(fixture["counts"])
        rewards = np.asarray(fixture["rewards"])
        assert counts.shape[0] == fixture["config"]["horizon"]
        assert np.all(counts >= 0)
        assert np.all((rewards == 0) | (rewards == 1))
        if engine == "batched":
            sizes = np.asarray(fixture["config"]["population_sizes"])
            assert np.all(counts.sum(axis=2) <= sizes[None, :])
        elif engine == "sequential":
            assert np.all(counts.sum(axis=1) <= fixture["config"]["population_size"])
        elif engine in ("network", "network_vectorized"):
            choices = np.asarray(fixture["choices"])
            size = fixture["config"]["ring_size"]
            assert choices.shape == (fixture["config"]["horizon"], size)
            # counts must be exactly the histogram of committed choices
            for step in range(choices.shape[0]):
                committed = choices[step][choices[step] >= 0]
                histogram = np.bincount(
                    committed, minlength=len(fixture["config"]["qualities"])
                )
                assert np.array_equal(histogram, counts[step])
        elif engine == "network_batched":
            choices = np.asarray(fixture["choices"])
            size = fixture["config"]["ring_size"]
            replicates = fixture["config"]["num_replicates"]
            num_options = len(fixture["config"]["qualities"])
            assert choices.shape == (fixture["config"]["horizon"], replicates, size)
            assert counts.shape == (fixture["config"]["horizon"], replicates, num_options)
            for step in range(choices.shape[0]):
                for replicate in range(replicates):
                    committed = choices[step, replicate][choices[step, replicate] >= 0]
                    histogram = np.bincount(committed, minlength=num_options)
                    assert np.array_equal(histogram, counts[step, replicate])
        elif engine in ("protocol_vectorized", "protocol_batched"):
            choices = np.asarray(fixture["choices"])
            alive = np.asarray(fixture["alive"], dtype=bool)
            num_options = len(fixture["config"]["qualities"])
            assert choices.shape == alive.shape
            # The alive mask only ever shrinks (crash-stop failures).
            assert np.all(alive[1:] <= alive[:-1])
            # Counts must be exactly the alive-committed histogram, per step
            # (and per replicate for the batched fixture).
            flat_choices = choices.reshape(choices.shape[0], -1, choices.shape[-1])
            flat_alive = alive.reshape(flat_choices.shape)
            flat_counts = counts.reshape(counts.shape[0], -1, num_options)
            for step in range(flat_choices.shape[0]):
                for row in range(flat_choices.shape[1]):
                    mask = flat_alive[step, row] & (flat_choices[step, row] >= 0)
                    histogram = np.bincount(
                        flat_choices[step, row][mask], minlength=num_options
                    )
                    assert np.array_equal(histogram, flat_counts[step, row])
            # Message conservation: the vectorised engines never queue
            # messages across rounds, so every sent message was either
            # delivered or dropped.
            stats = fixture["transport_stats"]
            assert stats["sent"] == stats["delivered"] + stats["dropped"]
            assert stats["delayed"] == 0
