"""End-to-end integration tests crossing module boundaries.

These exercise the workflows the examples and benchmarks rely on: shared
reward sequences feeding several learners, the worked-example reductions of
Section 2.1, non-stationary environments, heterogeneous populations, and the
experiment harness driving real simulations.
"""

from repro import (
    BernoulliEnvironment,
    EllisonFudenbergEnvironment,
    PiecewiseConstantDriftEnvironment,
    Population,
    AgentBasedDynamics,
    RecordedRewardSequence,
    expected_regret,
    empirical_regret,
    best_option_share,
    simulate_finite_population,
)
from repro.baselines import (
    BestFixedOptionOracle,
    ClassicMWU,
    FollowTheCrowd,
    SocialLearningBaseline,
    UniformRandomChoice,
)
from repro.core.adoption import GeneralAdoptionRule
from repro.core.dynamics import FinitePopulationDynamics
from repro.core.sampling import MixtureSampling
from repro.experiments import ExperimentConfig, ParameterGrid, run_replications, run_sweep


class TestSharedRewardComparison:
    def test_learners_compared_on_identical_rewards(self):
        env = BernoulliEnvironment([0.8, 0.5, 0.3], rng=0)
        recorded = RecordedRewardSequence.from_environment(env, 300)
        rewards = recorded.rewards

        learners = {
            "social": SocialLearningBaseline(3, population_size=2000, rng=1),
            "mwu": ClassicMWU.tuned(3, horizon=300),
            "crowd": FollowTheCrowd(3, population_size=2000, exploration_rate=0.01, rng=2),
            "uniform": UniformRandomChoice(3),
            "oracle": BestFixedOptionOracle.for_qualities(recorded.qualities),
        }
        regrets = {
            name: empirical_regret(
                learner.run_on_rewards(rewards.copy()), rewards, best_quality=0.8
            )
            for name, learner in learners.items()
        }
        # Qualitative ordering the paper implies: the social dynamics is far
        # better than no-signal imitation and random choice, and the oracle
        # and full-information MWU are at least as good as the social dynamics.
        assert regrets["social"] < regrets["crowd"]
        assert regrets["social"] < regrets["uniform"]
        assert regrets["oracle"] <= regrets["social"] + 0.05
        assert regrets["mwu"] <= regrets["social"] + 0.05


class TestWorkedExamples:
    def test_krafft_investor_model(self):
        """alpha = 1 - beta, eta_1 > 1/2 = eta_2 = ... = eta_m (Krafft et al. 2016)."""
        qualities = [0.7] + [0.5] * 4
        env = BernoulliEnvironment(qualities, rng=0)
        trajectory = simulate_finite_population(env, 3000, 600, beta=0.6, rng=1)
        assert best_option_share(trajectory.popularity_matrix()[-200:], 0) > 0.5

    def test_ellison_fudenberg_reduction_learns_better_option(self):
        environment = EllisonFudenbergEnvironment.gaussian(mean_gap=0.8, shock_scale=1.0, rng=0)
        alpha, beta = environment.implied_adoption_parameters()
        dynamics = FinitePopulationDynamics(
            population_size=2000,
            num_options=2,
            adoption_rule=GeneralAdoptionRule(alpha=alpha, beta=beta),
            sampling_rule=MixtureSampling(0.02),
            rng=1,
        )
        trajectory = dynamics.run(environment, 400)
        assert best_option_share(trajectory.popularity_matrix()[-100:], 0) > 0.6


class TestNonStationaryTracking:
    def test_population_tracks_quality_switch(self):
        env = PiecewiseConstantDriftEnvironment(
            phases=[[0.85, 0.3], [0.3, 0.85]], phase_length=400, rng=0
        )
        trajectory = simulate_finite_population(env, 3000, 800, beta=0.65, rng=1)
        matrix = trajectory.popularity_matrix()
        # Dominant before the switch, and re-learned after it.
        assert matrix[300:400, 0].mean() > 0.6
        assert matrix[700:, 1].mean() > 0.6


class TestHeterogeneousPopulation:
    def test_mixed_betas_still_learn(self):
        population = Population.with_beta_distribution(500, 2, beta_low=0.55, beta_high=0.72, rng=0)
        dynamics = AgentBasedDynamics(population, exploration_rate=0.03, rng=1)
        env = BernoulliEnvironment([0.85, 0.4], rng=2)
        trajectory = dynamics.run(env, 250)
        assert expected_regret(trajectory.popularity_matrix(), [0.85, 0.4]) < 0.2


class TestHarnessIntegration:
    def test_replicated_experiment_on_real_dynamics(self):
        def replication(seed, parameters):
            env = BernoulliEnvironment([0.8, 0.4], rng=seed)
            trajectory = simulate_finite_population(
                env, parameters["N"], 150, beta=parameters["beta"], rng=seed + 1
            )
            return {
                "regret": expected_regret(trajectory.popularity_matrix(), env.qualities),
                "share": best_option_share(trajectory.popularity_matrix(), 0),
            }

        config = ExperimentConfig(
            name="integration", parameters={"N": 500, "beta": 0.6}, replications=3, seed=0
        )
        result = run_replications(config, replication)
        assert result.summarize("regret").mean < 0.25
        assert result.summarize("share").mean > 0.5

    def test_sweep_produces_monotone_story_in_population(self):
        def replication(seed, parameters):
            env = BernoulliEnvironment([0.8, 0.4], rng=seed)
            trajectory = simulate_finite_population(
                env, parameters["N"], 200, beta=0.6, rng=seed + 1
            )
            return {"regret": expected_regret(trajectory.popularity_matrix(), env.qualities)}

        grid = ParameterGrid({"N": [50, 2000]})
        _, table = run_sweep("sweep", grid, replication, replications=3, seed=0)
        regrets = table.column("regret")
        assert regrets[1] <= regrets[0] + 0.03
