"""Tests for the replicator dynamics baseline."""

import numpy as np
import pytest

from repro.baselines import ReplicatorDynamics
from repro.environments import BernoulliEnvironment


class TestReplicatorDynamics:
    def test_initial_distribution_uniform(self):
        learner = ReplicatorDynamics(3)
        np.testing.assert_allclose(learner.distribution(), 1.0 / 3)

    def test_shares_stay_normalised(self):
        learner = ReplicatorDynamics(4, exploration_rate=0.01)
        rng = np.random.default_rng(0)
        for _ in range(100):
            learner.update(rng.integers(0, 2, size=4))
            assert learner.distribution().sum() == pytest.approx(1.0)

    def test_moves_toward_rewarded_option(self):
        learner = ReplicatorDynamics(2, exploration_rate=0.0)
        for _ in range(30):
            learner.update(np.array([1, 0]))
        assert learner.distribution()[0] > 0.9

    def test_exploration_floor_keeps_options_alive(self):
        learner = ReplicatorDynamics(2, exploration_rate=0.1)
        for _ in range(200):
            learner.update(np.array([1, 0]))
        assert learner.distribution()[1] >= 0.04

    def test_smoothing_reduces_step_to_step_variance(self):
        rng = np.random.default_rng(1)
        rewards = rng.integers(0, 2, size=(200, 2))
        raw = ReplicatorDynamics(2, smoothing=0.0, exploration_rate=0.01)
        smooth = ReplicatorDynamics(2, smoothing=0.9, exploration_rate=0.01)
        raw_path = raw.run_on_rewards(rewards)[:, 0]
        smooth_path = smooth.run_on_rewards(rewards)[:, 0]
        assert np.std(np.diff(smooth_path)) < np.std(np.diff(raw_path))

    def test_converges_on_stochastic_environment(self):
        env = BernoulliEnvironment([0.9, 0.3], rng=2)
        learner = ReplicatorDynamics(2, smoothing=0.8, exploration_rate=0.02)
        distributions = learner.run(env, 400)
        assert distributions[-1, 0] > 0.8

    def test_reset(self):
        learner = ReplicatorDynamics(3)
        learner.update(np.array([1, 0, 0]))
        learner.reset()
        np.testing.assert_allclose(learner.distribution(), 1.0 / 3)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ReplicatorDynamics(3, baseline_fitness=-1.0)
        with pytest.raises(ValueError):
            ReplicatorDynamics(3, smoothing=1.0)
        with pytest.raises(ValueError):
            ReplicatorDynamics(3, exploration_rate=2.0)
