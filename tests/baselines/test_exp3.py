"""Tests for the EXP3 bandit baseline."""

import numpy as np
import pytest

from repro.baselines import Exp3
from repro.core.regret import expected_regret
from repro.environments import BernoulliEnvironment


class TestExp3:
    def test_initial_distribution_uniform(self):
        learner = Exp3(4, gamma=0.1, rng=0)
        np.testing.assert_allclose(learner.distribution(), 0.25)

    def test_distribution_respects_exploration_floor(self):
        learner = Exp3(4, gamma=0.2, rng=0)
        for _ in range(200):
            learner.update(np.array([1, 0, 0, 0]))
        assert np.all(learner.distribution() >= 0.2 / 4 - 1e-12)

    def test_shifts_toward_rewarding_arm(self):
        learner = Exp3(2, gamma=0.1, rng=0)
        for _ in range(300):
            learner.update(np.array([1, 0]))
        assert learner.distribution()[0] > 0.8

    def test_only_bandit_feedback_is_used(self):
        """Rewards of unpulled arms must not influence the update."""
        rng_rewards = np.random.default_rng(0)
        learner_a = Exp3(3, gamma=0.2, rng=1)
        learner_b = Exp3(3, gamma=0.2, rng=1)
        for _ in range(50):
            rewards = rng_rewards.integers(0, 2, size=3)
            learner_a.update(rewards)
            arm = learner_a.last_arm
            # Same pulled-arm reward, scrambled other arms.
            scrambled = 1 - rewards
            scrambled[arm] = rewards[arm]
            learner_b.update(scrambled)
        np.testing.assert_allclose(learner_a.distribution(), learner_b.distribution())

    def test_learns_on_stochastic_environment(self):
        env = BernoulliEnvironment([0.9, 0.2], rng=2)
        learner = Exp3.tuned(2, 1000, rng=3)
        distributions = learner.run(env, 1000)
        assert expected_regret(distributions, env.qualities) < 0.25
        assert distributions[-1, 0] > 0.6

    def test_tuned_gamma_in_range(self):
        learner = Exp3.tuned(10, 500)
        assert 0 < learner.gamma <= 1

    def test_tuned_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            Exp3.tuned(5, 0)

    def test_reset(self):
        learner = Exp3(3, gamma=0.1, rng=0)
        learner.update(np.array([1, 0, 0]))
        learner.reset(rng=0)
        np.testing.assert_allclose(learner.distribution(), 1.0 / 3)
        assert learner.last_arm is None

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ValueError):
            Exp3(3, gamma=0.0)
        with pytest.raises(ValueError):
            Exp3(3, gamma=1.5)

    def test_name_contains_gamma(self):
        assert "gamma" in Exp3(3, gamma=0.3).name
