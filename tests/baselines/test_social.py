"""Tests for the SocialLearningBaseline adapter."""

import numpy as np
import pytest

from repro.baselines import SocialLearningBaseline
from repro.core.adoption import SymmetricAdoptionRule
from repro.core.regret import expected_regret
from repro.core.sampling import MixtureSampling
from repro.environments import BernoulliEnvironment


class TestSocialLearningBaseline:
    def test_distribution_matches_wrapped_dynamics(self):
        learner = SocialLearningBaseline(3, population_size=300, rng=0)
        np.testing.assert_allclose(learner.distribution(), learner.dynamics.popularity())

    def test_update_advances_dynamics(self):
        learner = SocialLearningBaseline(2, population_size=100, rng=0)
        learner.update(np.array([1, 0]))
        assert learner.dynamics.state.time == 1
        assert learner.time == 1

    def test_custom_rules_propagated(self):
        adoption = SymmetricAdoptionRule(0.7)
        sampling = MixtureSampling(0.05)
        learner = SocialLearningBaseline(
            2, population_size=50, adoption_rule=adoption, sampling_rule=sampling, rng=0
        )
        assert learner.dynamics.adoption_rule.beta == pytest.approx(0.7)
        assert learner.dynamics.sampling_rule.exploration_rate == pytest.approx(0.05)

    def test_name_mentions_parameters(self):
        learner = SocialLearningBaseline(2, population_size=50, rng=0)
        assert "beta" in learner.name and "N=50" in learner.name

    def test_achieves_low_regret(self):
        env = BernoulliEnvironment([0.85, 0.45], rng=1)
        learner = SocialLearningBaseline(2, population_size=2000, rng=2)
        distributions = learner.run(env, 400)
        assert expected_regret(distributions, env.qualities) < 0.15

    def test_reset_restores_uniform_popularity(self):
        learner = SocialLearningBaseline(4, population_size=80, rng=0)
        learner.run_on_rewards(np.ones((10, 4), dtype=int))
        learner.reset()
        np.testing.assert_allclose(learner.distribution(), 0.25)
