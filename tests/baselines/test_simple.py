"""Tests for the simple control baselines."""

import numpy as np
import pytest

from repro.baselines import BestFixedOptionOracle, FollowTheCrowd, UniformRandomChoice
from repro.core.regret import empirical_regret, expected_regret
from repro.environments import BernoulliEnvironment


class TestBestFixedOptionOracle:
    def test_distribution_is_point_mass(self):
        oracle = BestFixedOptionOracle(3, best_option=1)
        np.testing.assert_allclose(oracle.distribution(), [0.0, 1.0, 0.0])

    def test_for_qualities_picks_argmax(self):
        oracle = BestFixedOptionOracle.for_qualities([0.2, 0.9, 0.5])
        assert oracle.best_option == 1

    def test_zero_expected_regret(self):
        env = BernoulliEnvironment([0.7, 0.3], rng=0)
        oracle = BestFixedOptionOracle.for_qualities(env.qualities)
        distributions = oracle.run(env, 100)
        assert expected_regret(distributions, env.qualities) == pytest.approx(0.0)

    def test_out_of_range_option_rejected(self):
        with pytest.raises(ValueError):
            BestFixedOptionOracle(2, best_option=5)


class TestUniformRandomChoice:
    def test_distribution_always_uniform(self):
        learner = UniformRandomChoice(4)
        learner.update(np.array([1, 1, 0, 0]))
        np.testing.assert_allclose(learner.distribution(), 0.25)

    def test_regret_equals_quality_spread(self):
        env = BernoulliEnvironment([0.8, 0.4], rng=0)
        learner = UniformRandomChoice(2)
        distributions = learner.run(env, 50)
        assert expected_regret(distributions, env.qualities) == pytest.approx(0.2)


class TestFollowTheCrowd:
    def test_initial_distribution_near_uniform(self):
        learner = FollowTheCrowd(4, population_size=100, rng=0)
        np.testing.assert_allclose(learner.distribution(), 0.25)

    def test_counts_always_sum_to_population(self):
        learner = FollowTheCrowd(3, population_size=60, rng=0)
        for _ in range(50):
            learner.update(np.array([1, 0, 1]))
            assert learner.distribution().sum() == pytest.approx(1.0)

    def test_herds_to_consensus_without_exploration(self):
        learner = FollowTheCrowd(3, population_size=100, exploration_rate=0.0, rng=0)
        for _ in range(2000):
            learner.update(np.array([0, 0, 0]))
        assert learner.distribution().max() == pytest.approx(1.0)

    def test_ignores_quality_signals(self):
        """Rewards do not influence the update at all: the regret stays large."""
        env = BernoulliEnvironment([0.95, 0.05], rng=1)
        learner = FollowTheCrowd(2, population_size=500, exploration_rate=0.01, rng=2)
        distributions = learner.run(env, 300)
        regret = empirical_regret(distributions, env.sample_many(300), best_quality=0.95)
        assert regret > 0.2

    def test_reset_restores_uniform_counts(self):
        learner = FollowTheCrowd(4, population_size=40, rng=0)
        learner.update(np.array([1, 0, 0, 0]))
        learner.reset()
        np.testing.assert_allclose(learner.distribution(), 0.25)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FollowTheCrowd(2, population_size=0)
        with pytest.raises(ValueError):
            FollowTheCrowd(2, population_size=10, exploration_rate=-0.1)
