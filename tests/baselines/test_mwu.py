"""Tests for the classic MWU baselines."""

import numpy as np
import pytest

from repro.baselines import ClassicMWU, HedgeMWU
from repro.core.regret import expected_regret
from repro.environments import BernoulliEnvironment


class TestClassicMWU:
    def test_initial_distribution_uniform(self):
        learner = ClassicMWU(4, epsilon=0.1)
        np.testing.assert_allclose(learner.distribution(), 0.25)

    def test_weights_shift_toward_rewarded_option(self):
        learner = ClassicMWU(2, epsilon=0.5)
        for _ in range(10):
            learner.update(np.array([1, 0]))
        distribution = learner.distribution()
        assert distribution[0] > 0.9

    def test_update_matches_closed_form(self):
        learner = ClassicMWU(2, epsilon=0.5)
        learner.update(np.array([1, 0]))
        expected = np.array([1.5, 1.0])
        np.testing.assert_allclose(learner.distribution(), expected / expected.sum())

    def test_reset_restores_uniform(self):
        learner = ClassicMWU(3, epsilon=0.2)
        learner.update(np.array([1, 0, 0]))
        learner.reset()
        np.testing.assert_allclose(learner.distribution(), 1.0 / 3)
        assert learner.time == 0

    def test_tuned_epsilon_in_range(self):
        learner = ClassicMWU.tuned(10, horizon=1000)
        assert 0 < learner.epsilon <= 1

    def test_rejects_invalid_epsilon(self):
        with pytest.raises(ValueError):
            ClassicMWU(3, epsilon=0.0)
        with pytest.raises(ValueError):
            ClassicMWU(3, epsilon=1.5)

    def test_low_regret_on_stochastic_rewards(self):
        env = BernoulliEnvironment([0.8, 0.4, 0.3], rng=0)
        learner = ClassicMWU.tuned(3, horizon=500)
        distributions = learner.run(env, 500)
        assert expected_regret(distributions, env.qualities) < 0.1

    def test_run_on_rewards_shapes(self):
        learner = ClassicMWU(2, epsilon=0.1)
        rewards = np.array([[1, 0], [0, 1], [1, 1]])
        distributions = learner.run_on_rewards(rewards)
        assert distributions.shape == (3, 2)

    def test_update_validation(self):
        learner = ClassicMWU(2, epsilon=0.1)
        with pytest.raises(ValueError):
            learner.update(np.array([1, 0, 1]))
        with pytest.raises(ValueError):
            learner.update(np.array([0.3, 0.7]))


class TestHedgeMWU:
    def test_update_matches_exponential_weights(self):
        learner = HedgeMWU(2, eta=1.0)
        learner.update(np.array([1, 0]))
        expected = np.array([np.e, 1.0])
        np.testing.assert_allclose(learner.distribution(), expected / expected.sum())

    def test_tuned_eta_positive(self):
        assert HedgeMWU.tuned(5, horizon=100).eta > 0

    def test_rejects_non_positive_eta(self):
        with pytest.raises(ValueError):
            HedgeMWU(3, eta=0.0)

    def test_converges_to_best_option(self):
        env = BernoulliEnvironment([0.9, 0.2], rng=1)
        learner = HedgeMWU(2, eta=0.3)
        distributions = learner.run(env, 300)
        assert distributions[-1, 0] > 0.9

    def test_name_contains_parameters(self):
        assert "eta" in HedgeMWU(2, eta=0.3).name
