"""Tests for the per-individual bandit baselines."""

import numpy as np
import pytest

from repro.baselines import (
    IndividualEpsilonGreedy,
    IndividualThompsonSampling,
    IndividualUCB,
)
from repro.environments import BernoulliEnvironment


ALL_BANDITS = [IndividualUCB, IndividualEpsilonGreedy, IndividualThompsonSampling]


@pytest.mark.parametrize("bandit_class", ALL_BANDITS)
class TestCommonBanditBehaviour:
    def test_distribution_is_probability_vector(self, bandit_class):
        learner = bandit_class(3, population_size=50, rng=0)
        distribution = learner.distribution()
        assert distribution.shape == (3,)
        assert distribution.sum() == pytest.approx(1.0)

    def test_population_converges_to_best_arm(self, bandit_class):
        env = BernoulliEnvironment([0.9, 0.2], rng=1)
        learner = bandit_class(2, population_size=100, rng=2)
        distributions = learner.run(env, 400)
        # Average over a window: UCB's synchronized forced exploration can put
        # the whole population on the bad arm for isolated single steps.
        assert distributions[-50:, 0].mean() > 0.7

    def test_reset_clears_state(self, bandit_class):
        learner = bandit_class(2, population_size=20, rng=3)
        learner.run_on_rewards(np.array([[1, 0]] * 10))
        learner.reset(rng=3)
        assert learner.time == 0

    def test_run_on_rewards_shape(self, bandit_class):
        learner = bandit_class(4, population_size=30, rng=4)
        rewards = np.zeros((12, 4), dtype=int)
        assert learner.run_on_rewards(rewards).shape == (12, 4)

    def test_population_size_property(self, bandit_class):
        assert bandit_class(2, population_size=17, rng=0).population_size == 17


class TestUCBSpecifics:
    def test_unpulled_arms_forced_first(self):
        learner = IndividualUCB(3, population_size=10, rng=0)
        # After 3 updates every agent must have pulled every arm at least once.
        for _ in range(3):
            learner.update(np.array([1, 1, 1]))
        assert np.all(learner._counts >= 1)

    def test_rejects_non_positive_exploration_constant(self):
        with pytest.raises(ValueError):
            IndividualUCB(2, population_size=10, exploration_constant=0.0)


class TestEpsilonGreedySpecifics:
    def test_zero_epsilon_is_purely_greedy_after_learning(self):
        learner = IndividualEpsilonGreedy(2, population_size=50, epsilon=0.0, rng=0)
        learner.run_on_rewards(np.array([[1, 0]] * 200))
        assert learner.distribution()[0] > 0.95

    def test_full_epsilon_stays_near_uniform(self):
        learner = IndividualEpsilonGreedy(2, population_size=500, epsilon=1.0, rng=0)
        distributions = learner.run_on_rewards(np.array([[1, 0]] * 100))
        assert abs(distributions[-20:, 0].mean() - 0.5) < 0.1

    def test_rejects_invalid_epsilon(self):
        with pytest.raises(ValueError):
            IndividualEpsilonGreedy(2, population_size=10, epsilon=1.5)


class TestThompsonSpecifics:
    def test_prior_validation(self):
        with pytest.raises(ValueError):
            IndividualThompsonSampling(2, population_size=10, prior_successes=0.0)

    def test_learns_faster_than_uniform_guessing(self):
        env = BernoulliEnvironment([0.8, 0.2], rng=5)
        learner = IndividualThompsonSampling(2, population_size=200, rng=6)
        distributions = learner.run(env, 200)
        assert distributions[-1, 0] > 0.8
