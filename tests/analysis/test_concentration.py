"""Tests for concentration utilities."""

import numpy as np
import pytest

from repro.analysis import (
    chernoff_hoeffding_probability,
    is_multiplicatively_close,
    multiplicative_deviation,
)


class TestChernoffHoeffding:
    def test_formula(self):
        value = chernoff_hoeffding_probability(100, 0.5, 0.2)
        assert value == pytest.approx(min(1.0, 2 * np.exp(-100 * 0.5 * 0.04 / 3)))

    def test_capped_at_one(self):
        assert chernoff_hoeffding_probability(1, 0.01, 0.01) == 1.0

    def test_decreasing_in_n(self):
        small = chernoff_hoeffding_probability(100, 0.5, 0.1)
        large = chernoff_hoeffding_probability(10_000, 0.5, 0.1)
        assert large < small

    def test_empirically_valid_bound(self):
        """The bound really does dominate the empirical tail probability."""
        rng = np.random.default_rng(0)
        n, gamma, deviation = 200, 0.3, 0.25
        trials = 2000
        samples = rng.binomial(n, gamma, size=trials) / n
        empirical = np.mean(np.abs(samples - gamma) > gamma * deviation)
        assert empirical <= chernoff_hoeffding_probability(n, gamma, deviation) + 0.02

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            chernoff_hoeffding_probability(0, 0.5, 0.1)
        with pytest.raises(ValueError):
            chernoff_hoeffding_probability(10, 0.5, 0.0)
        with pytest.raises(ValueError):
            chernoff_hoeffding_probability(10, 1.5, 0.1)


class TestMultiplicativeCloseness:
    def test_identical_values(self):
        assert multiplicative_deviation(0.4, 0.4) == pytest.approx(1.0)

    def test_known_ratio(self):
        assert multiplicative_deviation(0.2, 0.1) == pytest.approx(2.0)
        assert multiplicative_deviation(0.1, 0.2) == pytest.approx(2.0)

    def test_vector_worst_case(self):
        a = np.array([0.5, 0.5])
        b = np.array([0.25, 0.75])
        assert multiplicative_deviation(a, b) == pytest.approx(2.0)

    def test_zero_handling(self):
        assert multiplicative_deviation([0.0, 1.0], [0.0, 1.0]) == pytest.approx(1.0)
        assert np.isinf(multiplicative_deviation([0.0, 1.0], [0.5, 0.5]))

    def test_is_close_definition(self):
        assert is_multiplicatively_close(0.5, 0.3, c=2.0)
        assert not is_multiplicatively_close(0.5, 0.1, c=2.0)

    def test_rejects_c_below_one(self):
        with pytest.raises(ValueError):
            is_multiplicatively_close(0.5, 0.5, c=0.5)

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            multiplicative_deviation(-0.1, 0.5)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            multiplicative_deviation([0.5, 0.5], [1.0])
