"""Tests for convergence detection."""

import numpy as np
import pytest

from repro.analysis import dominance_time, regret_crossing_time, time_above_threshold


class TestDominanceTime:
    def test_first_crossing(self):
        series = np.array([0.2, 0.4, 0.6, 0.7])
        assert dominance_time(series, threshold=0.5) == 2

    def test_never_crossing(self):
        assert dominance_time(np.array([0.1, 0.2, 0.3]), threshold=0.5) is None

    def test_sustain_requirement(self):
        series = np.array([0.6, 0.3, 0.6, 0.7, 0.8])
        assert dominance_time(series, threshold=0.5, sustain=1) == 0
        assert dominance_time(series, threshold=0.5, sustain=2) == 2

    def test_sustain_longer_than_series(self):
        assert dominance_time(np.array([0.9, 0.9]), threshold=0.5, sustain=5) is None

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            dominance_time(np.array([[0.5]]), threshold=0.5)
        with pytest.raises(ValueError):
            dominance_time(np.array([0.5]), threshold=1.5)
        with pytest.raises(ValueError):
            dominance_time(np.array([0.5]), sustain=0)


class TestTimeAboveThreshold:
    def test_fraction(self):
        series = np.array([0.1, 0.6, 0.7, 0.4])
        assert time_above_threshold(series, threshold=0.5) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            time_above_threshold(np.array([]), threshold=0.5)


class TestRegretCrossingTime:
    def test_simple_crossing(self):
        series = np.array([0.5, 0.4, 0.2, 0.1])
        assert regret_crossing_time(series, bound=0.3) == 2

    def test_never_below(self):
        assert regret_crossing_time(np.array([0.5, 0.6]), bound=0.3) is None

    def test_dips_below_then_recovers_above(self):
        series = np.array([0.2, 0.5, 0.2, 0.1])
        assert regret_crossing_time(series, bound=0.3) == 2

    def test_always_below(self):
        assert regret_crossing_time(np.array([0.1, 0.05]), bound=0.3) == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            regret_crossing_time(np.array([]), bound=0.3)
