"""Tests for trajectory aggregation."""

import numpy as np
import pytest

from repro.analysis import (
    aggregate_popularity,
    aggregate_regret_series,
    stack_best_option_series,
)
from repro.environments import BernoulliEnvironment
from repro import simulate_finite_population


def make_trajectories(count=3, horizon=40, seed=0):
    trajectories = []
    for index in range(count):
        env = BernoulliEnvironment([0.8, 0.4], rng=seed + index)
        trajectories.append(
            simulate_finite_population(env, 300, horizon, beta=0.6, rng=seed + 100 + index)
        )
    return trajectories


class TestStackBestOptionSeries:
    def test_shape(self):
        trajectories = make_trajectories(count=4, horizon=25)
        stacked = stack_best_option_series(trajectories, best_option=0)
        assert stacked.shape == (4, 25)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            stack_best_option_series([], best_option=0)

    def test_rejects_mismatched_horizons(self):
        trajectories = make_trajectories(count=1, horizon=10) + make_trajectories(count=1, horizon=20)
        with pytest.raises(ValueError):
            stack_best_option_series(trajectories, best_option=0)


class TestAggregatePopularity:
    def test_bands_ordered(self):
        trajectories = make_trajectories(count=5, horizon=30)
        bands = aggregate_popularity(trajectories, best_option=0, quantile=0.1)
        assert np.all(bands["lower"] <= bands["mean"] + 1e-12)
        assert np.all(bands["mean"] <= bands["upper"] + 1e-12)
        assert bands["mean"].shape == (30,)

    def test_invalid_quantile(self):
        trajectories = make_trajectories(count=2, horizon=5)
        with pytest.raises(ValueError):
            aggregate_popularity(trajectories, best_option=0, quantile=0.9)


class TestAggregateRegretSeries:
    def test_length_matches_horizon(self):
        trajectories = make_trajectories(count=3, horizon=30)
        series = aggregate_regret_series(trajectories, best_quality=0.8)
        assert series.shape == (30,)

    def test_regret_decreases_on_average(self):
        trajectories = make_trajectories(count=5, horizon=200, seed=3)
        series = aggregate_regret_series(trajectories, best_quality=0.8)
        assert series[-1] < series[:10].mean()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_regret_series([], best_quality=0.5)

    def test_rejects_invalid_quality(self):
        trajectories = make_trajectories(count=1, horizon=5)
        with pytest.raises(ValueError):
            aggregate_regret_series(trajectories, best_quality=1.5)
