"""Tests for replication statistics."""

import numpy as np
import pytest

from repro.analysis import (
    bootstrap_confidence_interval,
    normal_confidence_interval,
    summarize_replications,
)


class TestNormalConfidenceInterval:
    def test_contains_mean(self):
        low, high = normal_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert low <= 2.5 <= high

    def test_single_value_degenerate(self):
        assert normal_confidence_interval([5.0]) == (5.0, 5.0)

    def test_constant_values_zero_width(self):
        low, high = normal_confidence_interval([2.0, 2.0, 2.0])
        assert low == high == pytest.approx(2.0)

    def test_wider_at_higher_confidence(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        low95, high95 = normal_confidence_interval(values, confidence=0.95)
        low99, high99 = normal_confidence_interval(values, confidence=0.99)
        assert (high99 - low99) > (high95 - low95)

    def test_coverage_simulation(self):
        """~95% of intervals should cover the true mean."""
        rng = np.random.default_rng(0)
        covered = 0
        trials = 300
        for _ in range(trials):
            sample = rng.normal(0.0, 1.0, size=20)
            low, high = normal_confidence_interval(sample, confidence=0.95)
            covered += low <= 0.0 <= high
        assert covered / trials > 0.9

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            normal_confidence_interval([])
        with pytest.raises(ValueError):
            normal_confidence_interval([1.0, 2.0], confidence=1.0)


class TestBootstrapConfidenceInterval:
    def test_contains_mean_for_symmetric_data(self):
        rng = np.random.default_rng(1)
        values = rng.normal(3.0, 1.0, size=50)
        low, high = bootstrap_confidence_interval(values, rng=2)
        assert low <= values.mean() <= high

    def test_single_value_degenerate(self):
        assert bootstrap_confidence_interval([4.0]) == (4.0, 4.0)

    def test_deterministic_given_rng(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert bootstrap_confidence_interval(values, rng=0) == bootstrap_confidence_interval(values, rng=0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([])
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([1.0], resamples=0)


class TestSummarizeReplications:
    def test_fields(self):
        summary = summarize_replications([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.replications == 3
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_single_replication(self):
        summary = summarize_replications([7.0])
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 7.0

    def test_as_dict_keys(self):
        summary = summarize_replications([1.0, 2.0])
        assert {"mean", "std", "min", "max", "ci_low", "ci_high", "replications"} == set(
            summary.as_dict()
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_replications([])
