"""Tests for the executable Theorem 4.3 proof trace."""

import numpy as np
import pytest

from repro.analysis import ProofTrace, trace_theorem_43
from repro.core.adoption import SymmetricAdoptionRule
from repro.core.infinite import InfinitePopulationDynamics
from repro.core.sampling import MixtureSampling
from repro.environments import BernoulliEnvironment


def run_trajectory(beta=0.6, mu=0.02, horizon=300, qualities=(0.8, 0.5, 0.5), seed=0):
    env = BernoulliEnvironment(list(qualities), rng=seed)
    dynamics = InfinitePopulationDynamics(
        len(qualities),
        adoption_rule=SymmetricAdoptionRule(beta),
        sampling_rule=MixtureSampling(mu),
    )
    return dynamics.run(env, horizon)


class TestTraceTheorem43:
    def test_all_inequalities_hold_on_typical_run(self):
        trajectory = run_trajectory()
        trace = trace_theorem_43(trajectory, beta=0.6, mu=0.02)
        assert trace.upper_bound_holds()
        assert trace.lower_bound_holds()
        assert trace.regret_bound_holds()
        assert trace.all_hold()

    @pytest.mark.parametrize("beta", [0.55, 0.6, 0.7])
    @pytest.mark.parametrize("mu", [0.005, 0.02, 0.05])
    def test_holds_across_parameter_grid(self, beta, mu):
        trajectory = run_trajectory(beta=beta, mu=mu, horizon=150, seed=7)
        trace = trace_theorem_43(trajectory, beta=beta, mu=mu)
        assert trace.all_hold()

    def test_holds_on_adversarially_bad_reward_sequence(self):
        """The potential argument is pathwise: check it on a nasty sequence."""
        dynamics = InfinitePopulationDynamics(
            3,
            adoption_rule=SymmetricAdoptionRule(0.6),
            sampling_rule=MixtureSampling(0.02),
        )
        rng = np.random.default_rng(0)
        rewards = np.zeros((200, 3), dtype=int)
        # Best option only pays off in the second half; others pay off early.
        rewards[:100, 1] = rng.integers(0, 2, size=100)
        rewards[:100, 2] = 1
        rewards[100:, 0] = 1
        trajectory = dynamics.run_on_rewards(rewards)
        trace = trace_theorem_43(trajectory, beta=0.6, mu=0.02, best_option=0)
        assert trace.upper_bound_holds()
        assert trace.lower_bound_holds()
        assert trace.regret_bound_holds()

    def test_potential_between_bounds(self):
        trajectory = run_trajectory(horizon=100)
        trace = trace_theorem_43(trajectory, beta=0.6, mu=0.02)
        assert trace.log_lower_bound <= trace.log_potential <= trace.log_upper_bound

    def test_regret_bound_tighter_for_longer_horizons(self):
        short = trace_theorem_43(run_trajectory(horizon=30), beta=0.6, mu=0.02)
        long = trace_theorem_43(run_trajectory(horizon=1000), beta=0.6, mu=0.02)
        assert long.regret_bound_rhs < short.regret_bound_rhs

    def test_best_option_argument_respected(self):
        trajectory = run_trajectory(qualities=(0.5, 0.9), seed=3)
        trace = trace_theorem_43(trajectory, beta=0.6, mu=0.02, best_option=1)
        assert trace.all_hold()

    def test_validation_errors(self):
        trajectory = run_trajectory(horizon=10)
        with pytest.raises(ValueError):
            trace_theorem_43(trajectory, beta=0.4, mu=0.02)
        with pytest.raises(ValueError):
            trace_theorem_43(trajectory, beta=0.6, mu=1.5)
        with pytest.raises(ValueError):
            trace_theorem_43(trajectory, beta=0.6, mu=0.02, best_option=9)
        from repro.core.infinite import InfiniteTrajectory

        empty = InfiniteTrajectory(initial_distribution=np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            trace_theorem_43(empty, beta=0.6, mu=0.02)

    def test_dataclass_is_frozen(self):
        trajectory = run_trajectory(horizon=20)
        trace = trace_theorem_43(trajectory, beta=0.6, mu=0.02)
        assert isinstance(trace, ProofTrace)
        with pytest.raises(AttributeError):
            trace.log_potential = 0.0
