"""Generator for the golden-trajectory regression fixtures.

Each function runs one engine on a small, fully pinned configuration and
returns a JSON-serialisable record of everything the run produced: the
per-step counts, the rewards the engine observed, and the configuration that
produced them.  ``tests/integration/test_golden_trajectories.py`` re-runs the
same configurations and compares bit-for-bit against the committed JSON under
``tests/fixtures/golden/``, so *any* silent change to an engine's dynamics —
a reordered random draw, an off-by-one in the clock, a broadcasting bug — is
caught even when every statistical test still passes.

To regenerate after an *intentional* dynamics change::

    PYTHONPATH=src python tests/fixtures/generate_golden.py

NumPy only guarantees distribution-stream stability within a release line, so
every fixture records the ``major.minor`` NumPy version it was generated
under; the comparison test skips (rather than fails) under a different
release line.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.adoption import RowwiseAdoptionRule, SymmetricAdoptionRule
from repro.core.batched import BatchedDynamics
from repro.core.dynamics import FinitePopulationDynamics
from repro.core.sampling import MixtureSampling
from repro.distributed import BatchedProtocol, CrashFailureModel, VectorizedProtocol
from repro.environments import BernoulliEnvironment, RowwiseBernoulliEnvironment
from repro.network import (
    BatchedNetworkDynamics,
    NetworkDynamics,
    SocialNetwork,
    VectorizedNetworkDynamics,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

SEQUENTIAL_CONFIG = {
    "qualities": [0.8, 0.5, 0.35],
    "population_size": 500,
    "horizon": 20,
    "beta": 0.65,
    "mu": 0.05,
    "environment_seed": 11,
    "dynamics_seed": 12,
}

BATCHED_CONFIG = {
    # Four rows, every per-row knob different: qualities, N, alpha, beta, mu.
    "qualities": [
        [0.8, 0.5, 0.35],
        [0.7, 0.6, 0.2],
        [0.9, 0.3, 0.3],
        [0.6, 0.55, 0.5],
    ],
    "population_sizes": [120, 260, 400, 75],
    "alpha": [0.35, 0.3, 0.25, 0.4],
    "beta": [0.65, 0.7, 0.75, 0.6],
    "mu": [0.05, 0.1, 0.02, 0.2],
    "horizon": 15,
    "seed": 21,
}

NETWORK_CONFIG = {
    "qualities": [0.85, 0.45],
    "ring_size": 30,
    "neighbors_each_side": 2,
    "horizon": 15,
    "beta": 0.65,
    "mu": 0.1,
    "environment_seed": 31,
    "dynamics_seed": 32,
}

# The vectorised engine consumes the random stream differently from the loop
# engine, so it gets its own fixture at the same configuration (and its own
# seeds, to make clear no bit-identity with the loop fixture is implied).
NETWORK_VECTORIZED_CONFIG = {
    "qualities": [0.85, 0.45],
    "ring_size": 30,
    "neighbors_each_side": 2,
    "horizon": 15,
    "beta": 0.65,
    "mu": 0.1,
    "environment_seed": 41,
    "dynamics_seed": 42,
}

NETWORK_BATCHED_CONFIG = {
    "qualities": [0.8, 0.5, 0.35],
    "ring_size": 24,
    "neighbors_each_side": 2,
    "num_replicates": 3,
    "horizon": 12,
    "beta": 0.7,
    "mu": 0.08,
    "seed": 51,
}

# Both protocol fixtures exercise the full lossy surface: message loss,
# per-round crashes and a mid-run mass failure, so a drift in any of the
# loss masks, the peer draw, the crash injection or the adopt thinning
# changes the committed trajectory.
PROTOCOL_VECTORIZED_CONFIG = {
    "qualities": [0.85, 0.45, 0.3],
    "num_nodes": 40,
    "horizon": 12,
    "beta": 0.65,
    "mu": 0.1,
    "loss_rate": 0.25,
    "per_round_crash_probability": 0.02,
    "mass_failure_round": 6,
    "mass_failure_fraction": 0.3,
    "max_query_attempts": 4,
    "environment_seed": 61,
    "failures_seed": 62,
    "dynamics_seed": 63,
}

PROTOCOL_BATCHED_CONFIG = {
    "qualities": [0.85, 0.45, 0.3],
    "num_nodes": 30,
    "num_replicates": 3,
    "horizon": 10,
    "beta": 0.65,
    "mu": 0.1,
    "loss_rate": 0.25,
    "per_round_crash_probability": 0.02,
    "mass_failure_round": 5,
    "mass_failure_fraction": 0.3,
    "max_query_attempts": 4,
    "seed": 71,
}


def _numpy_release() -> str:
    return ".".join(np.__version__.split(".")[:2])


def _record(engine: str, config: dict, counts, rewards, extra: dict = None) -> dict:
    record = {
        "engine": engine,
        "numpy_release": _numpy_release(),
        "config": config,
        "counts": np.asarray(counts).tolist(),
        "rewards": np.asarray(rewards).tolist(),
    }
    record.update(extra or {})
    return record


def golden_sequential() -> dict:
    """Seeded :class:`FinitePopulationDynamics` run, counts recorded per step."""
    config = SEQUENTIAL_CONFIG
    environment = BernoulliEnvironment(config["qualities"], rng=config["environment_seed"])
    dynamics = FinitePopulationDynamics(
        population_size=config["population_size"],
        num_options=len(config["qualities"]),
        adoption_rule=SymmetricAdoptionRule(config["beta"]),
        sampling_rule=MixtureSampling(config["mu"]),
        rng=config["dynamics_seed"],
    )
    trajectory = dynamics.run(environment, config["horizon"])
    return _record(
        "sequential",
        config,
        [state.counts for state in trajectory.states],
        trajectory.rewards,
    )


def golden_batched() -> dict:
    """Seeded per-row-parameterised :class:`BatchedDynamics` run.

    Exercises the full sweep-axis surface in one fixture: per-row qualities
    (via :class:`RowwiseBernoulliEnvironment`), per-row population sizes,
    per-row ``(alpha, beta)`` and per-row ``mu`` — one generator shared by
    the environment and the dynamics, exactly as the batched sweep wires it.
    """
    config = BATCHED_CONFIG
    generator = np.random.default_rng(config["seed"])
    environment = RowwiseBernoulliEnvironment(config["qualities"], rng=generator)
    dynamics = BatchedDynamics(
        num_replicates=len(config["population_sizes"]),
        population_size=np.asarray(config["population_sizes"]),
        num_options=len(config["qualities"][0]),
        adoption_rule=RowwiseAdoptionRule(config["alpha"], config["beta"]),
        sampling_rule=MixtureSampling(np.asarray(config["mu"], dtype=float)),
        rng=generator,
    )
    trajectory = dynamics.run(environment, config["horizon"])
    return _record(
        "batched",
        config,
        [state.counts for state in trajectory.states],
        trajectory.rewards,
    )


def golden_network() -> dict:
    """Seeded :class:`NetworkDynamics` run on a ring, choices recorded per step."""
    config = NETWORK_CONFIG
    environment = BernoulliEnvironment(config["qualities"], rng=config["environment_seed"])
    network = SocialNetwork.ring(
        config["ring_size"], neighbors_each_side=config["neighbors_each_side"]
    )
    dynamics = NetworkDynamics(
        network=network,
        num_options=len(config["qualities"]),
        adoption_rule=SymmetricAdoptionRule(config["beta"]),
        exploration_rate=config["mu"],
        rng=config["dynamics_seed"],
    )
    choices = []
    counts = []
    rewards = []
    for _ in range(config["horizon"]):
        reward = environment.sample()
        state = dynamics.step(reward)
        rewards.append(reward)
        counts.append(state.counts)
        choices.append(dynamics.choices())
    return _record(
        "network",
        config,
        counts,
        rewards,
        extra={"choices": np.asarray(choices).tolist()},
    )


def golden_network_vectorized() -> dict:
    """Seeded :class:`VectorizedNetworkDynamics` run on a ring, choices per step."""
    config = NETWORK_VECTORIZED_CONFIG
    environment = BernoulliEnvironment(config["qualities"], rng=config["environment_seed"])
    network = SocialNetwork.ring(
        config["ring_size"], neighbors_each_side=config["neighbors_each_side"]
    )
    dynamics = VectorizedNetworkDynamics(
        network=network,
        num_options=len(config["qualities"]),
        adoption_rule=SymmetricAdoptionRule(config["beta"]),
        exploration_rate=config["mu"],
        rng=config["dynamics_seed"],
    )
    choices = []
    counts = []
    rewards = []
    for _ in range(config["horizon"]):
        reward = environment.sample()
        state = dynamics.step(reward)
        rewards.append(reward)
        counts.append(state.counts)
        choices.append(dynamics.choices())
    return _record(
        "network_vectorized",
        config,
        counts,
        rewards,
        extra={"choices": np.asarray(choices).tolist()},
    )


def golden_network_batched() -> dict:
    """Seeded :class:`BatchedNetworkDynamics` run: R replicates on one ring.

    One generator drives both the environment batch draws and the dynamics,
    exactly as ``network_batched_replication`` wires them.
    """
    config = NETWORK_BATCHED_CONFIG
    generator = np.random.default_rng(config["seed"])
    environment = BernoulliEnvironment(config["qualities"], rng=generator)
    network = SocialNetwork.ring(
        config["ring_size"], neighbors_each_side=config["neighbors_each_side"]
    )
    dynamics = BatchedNetworkDynamics(
        network=network,
        num_options=len(config["qualities"]),
        num_replicates=config["num_replicates"],
        adoption_rule=SymmetricAdoptionRule(config["beta"]),
        exploration_rate=config["mu"],
        rng=generator,
    )
    choices = []
    counts = []
    rewards = []
    for _ in range(config["horizon"]):
        reward = environment.sample_batch(config["num_replicates"])
        state = dynamics.step(reward)
        rewards.append(reward)
        counts.append(state.counts)
        choices.append(dynamics.choices())
    return _record(
        "network_batched",
        config,
        counts,
        rewards,
        extra={"choices": np.asarray(choices).tolist()},
    )


def golden_protocol_vectorized() -> dict:
    """Seeded :class:`VectorizedProtocol` run under loss and crashes.

    Records per-round alive-committed counts, choices and alive masks, so
    the crash injection is pinned alongside the round law.
    """
    config = PROTOCOL_VECTORIZED_CONFIG
    environment = BernoulliEnvironment(
        config["qualities"], rng=config["environment_seed"]
    )
    protocol = VectorizedProtocol(
        num_nodes=config["num_nodes"],
        num_options=len(config["qualities"]),
        adoption_rule=SymmetricAdoptionRule(config["beta"]),
        exploration_rate=config["mu"],
        loss_rate=config["loss_rate"],
        failure_model=CrashFailureModel(
            per_round_crash_probability=config["per_round_crash_probability"],
            mass_failure_round=config["mass_failure_round"],
            mass_failure_fraction=config["mass_failure_fraction"],
            rng=config["failures_seed"],
        ),
        max_query_attempts=config["max_query_attempts"],
        rng=config["dynamics_seed"],
    )
    choices = []
    alive = []
    counts = []
    rewards = []
    for _ in range(config["horizon"]):
        reward = environment.sample()
        protocol.run_round(reward)
        round_choices = protocol.choices()
        round_alive = protocol.alive()
        rewards.append(reward)
        choices.append(round_choices)
        alive.append(round_alive)
        committed = round_choices[round_alive & (round_choices >= 0)]
        counts.append(np.bincount(committed, minlength=len(config["qualities"])))
    return _record(
        "protocol_vectorized",
        config,
        counts,
        rewards,
        extra={
            "choices": np.asarray(choices).tolist(),
            "alive": np.asarray(alive).tolist(),
            "transport_stats": protocol.transport_stats(),
            "fallback_explorations": protocol.fallback_explorations,
        },
    )


def golden_protocol_batched() -> dict:
    """Seeded :class:`BatchedProtocol` run: R lossy fleets in one launch.

    One generator drives both the environment batch draws and the protocol,
    exactly as ``protocol_batched_replication`` wires them.
    """
    config = PROTOCOL_BATCHED_CONFIG
    generator = np.random.default_rng(config["seed"])
    environment = BernoulliEnvironment(config["qualities"], rng=generator)
    protocol = BatchedProtocol(
        num_nodes=config["num_nodes"],
        num_options=len(config["qualities"]),
        num_replicates=config["num_replicates"],
        adoption_rule=SymmetricAdoptionRule(config["beta"]),
        exploration_rate=config["mu"],
        loss_rate=config["loss_rate"],
        per_round_crash_probability=config["per_round_crash_probability"],
        mass_failure_round=config["mass_failure_round"],
        mass_failure_fraction=config["mass_failure_fraction"],
        max_query_attempts=config["max_query_attempts"],
        rng=generator,
    )
    choices = []
    alive = []
    counts = []
    rewards = []
    for _ in range(config["horizon"]):
        reward = environment.sample_batch(config["num_replicates"])
        protocol.run_round(reward)
        rewards.append(reward)
        choices.append(protocol.choices())
        alive.append(protocol.alive())
        counts.append(protocol.state().counts)
    return _record(
        "protocol_batched",
        config,
        counts,
        rewards,
        extra={
            "choices": np.asarray(choices).tolist(),
            "alive": np.asarray(alive).tolist(),
            "transport_stats": protocol.transport_stats(),
            "fallback_explorations": protocol.fallback_explorations,
        },
    )


GENERATORS = {
    "sequential": golden_sequential,
    "batched": golden_batched,
    "network": golden_network,
    "network_vectorized": golden_network_vectorized,
    "network_batched": golden_network_batched,
    "protocol_vectorized": golden_protocol_vectorized,
    "protocol_batched": golden_protocol_batched,
}


def generate_all(directory: Path = GOLDEN_DIR) -> None:
    """Write every golden fixture as pretty-printed JSON under ``directory``."""
    directory.mkdir(parents=True, exist_ok=True)
    for name, generate in GENERATORS.items():
        path = directory / f"{name}.json"
        with path.open("w") as handle:
            json.dump(generate(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    generate_all()
