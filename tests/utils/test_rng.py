"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, interleave_choice, seeds_for_replications, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(3)
        assert ensure_rng(generator) is generator

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(5)
        assert isinstance(ensure_rng(sequence), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            ensure_rng(-1)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")

    def test_numpy_integer_seed_accepted(self):
        assert isinstance(ensure_rng(np.int64(9)), np.random.Generator)


class TestSpawnRngs:
    def test_count_respected(self):
        children = spawn_rngs(0, 4)
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 2)
        a = children[0].random(10)
        b = children[1].random(10)
        assert not np.array_equal(a, b)

    def test_reproducible_from_same_parent_seed(self):
        first = [child.random(3).tolist() for child in spawn_rngs(7, 3)]
        second = [child.random(3).tolist() for child in spawn_rngs(7, 3)]
        assert first == second

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)


class TestSeedsForReplications:
    def test_length_and_type(self):
        seeds = seeds_for_replications(1, 5)
        assert len(seeds) == 5
        assert all(isinstance(seed, int) for seed in seeds)

    def test_deterministic(self):
        assert seeds_for_replications(3, 4) == seeds_for_replications(3, 4)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            seeds_for_replications(3, 0)


class TestInterleaveChoice:
    def test_choice_from_options(self):
        value = interleave_choice(0, [1, 2, 3])
        assert value in (1, 2, 3)

    def test_empty_options_rejected(self):
        with pytest.raises(ValueError):
            interleave_choice(0, [])
