"""Tests for repro.utils.ascii_plot and logging."""

import logging

from repro.utils.ascii_plot import ascii_histogram, ascii_line_plot, format_table
from repro.utils.logging import enable_console_logging, get_logger


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}])
        assert "a" in text and "b" in text
        assert "2.5000" in text

    def test_empty_rows(self):
        assert format_table([]) == "(empty table)"

    def test_explicit_column_order(self):
        text = format_table([{"x": 1, "y": 2}], columns=["y", "x"])
        header = text.splitlines()[0]
        assert header.index("y") < header.index("x")

    def test_missing_cell_rendered_empty(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert text.count("\n") == 3  # header, separator, two rows


class TestAsciiLinePlot:
    def test_contains_marker_and_legend(self):
        text = ascii_line_plot({"series": [0, 1, 2, 3, 2, 1]}, width=20, height=5)
        assert "*" in text
        assert "series" in text

    def test_multiple_series_get_distinct_markers(self):
        text = ascii_line_plot({"a": [0, 1], "b": [1, 0]}, width=10, height=4)
        assert "* = a" in text and "+ = b" in text

    def test_empty_series(self):
        assert ascii_line_plot({}) == "(no series)"

    def test_constant_series_does_not_crash(self):
        text = ascii_line_plot({"flat": [1.0, 1.0, 1.0]}, width=10, height=4)
        assert "flat" in text


class TestAsciiHistogram:
    def test_contains_bars(self):
        text = ascii_histogram([1, 1, 2, 3, 3, 3], bins=3)
        assert "#" in text

    def test_empty_values(self):
        assert ascii_histogram([]) == "(no data)"


class TestLogging:
    def test_get_logger_namespaced(self):
        logger = get_logger("core.dynamics")
        assert logger.name == "repro.core.dynamics"

    def test_get_logger_idempotent_handlers(self):
        first = get_logger("some.module")
        second = get_logger("some.module")
        assert first is second

    def test_level_override(self):
        logger = get_logger("leveled", level=logging.DEBUG)
        assert logger.level == logging.DEBUG

    def test_enable_console_logging_adds_single_handler(self):
        enable_console_logging()
        enable_console_logging()
        root = logging.getLogger("repro")
        stream_handlers = [
            handler
            for handler in root.handlers
            if type(handler) is logging.StreamHandler
        ]
        assert len(stream_handlers) == 1
