"""Logger configuration: NullHandler idempotence under manager resets."""

from __future__ import annotations

import logging

from repro.utils.logging import enable_console_logging, get_logger


class TestGetLogger:
    def test_prefixes_names_into_the_repro_hierarchy(self):
        assert get_logger("core.dynamics").name == "repro.core.dynamics"
        assert get_logger("repro.campaign").name == "repro.campaign"

    def test_adds_exactly_one_null_handler(self):
        logger = get_logger("utils.test_once")
        get_logger("utils.test_once")
        get_logger("utils.test_once")
        null_handlers = [
            h for h in logger.handlers if isinstance(h, logging.NullHandler)
        ]
        assert len(null_handlers) == 1

    def test_survives_handler_reset(self):
        # Regression: the old module-global _CONFIGURED set remembered the
        # *name* forever, so a logger whose handlers were cleared (pytest
        # and app harnesses reset the logging manager) stayed bare and
        # warned "no handler could be found".  Keying off the logger's own
        # handlers re-adds the NullHandler after any reset.
        logger = get_logger("utils.test_reset")
        logger.handlers.clear()  # what a manager/test-harness reset does
        logger = get_logger("utils.test_reset")
        assert any(isinstance(h, logging.NullHandler) for h in logger.handlers)

    def test_level_applied_when_given(self):
        logger = get_logger("utils.test_level", level=logging.DEBUG)
        assert logger.level == logging.DEBUG

    def test_respects_foreign_handlers(self):
        # A caller-installed handler must not suppress the NullHandler add
        # (it is not a NullHandler), nor be removed.
        logger = logging.getLogger("repro.utils.test_foreign")
        stream = logging.StreamHandler()
        logger.addHandler(stream)
        try:
            logger = get_logger("utils.test_foreign")
            kinds = [type(h) for h in logger.handlers]
            assert logging.StreamHandler in kinds
            assert logging.NullHandler in kinds
        finally:
            logger.handlers.clear()


class TestEnableConsoleLogging:
    def test_installs_one_stream_handler_idempotently(self):
        # Start from a bare root: any earlier test (or CLI entry point) may
        # already have enabled console logging on "repro".
        root = logging.getLogger("repro")
        before = list(root.handlers)
        before_level = root.level
        try:
            root.handlers[:] = []
            enable_console_logging(logging.INFO)
            enable_console_logging(logging.DEBUG)
            streams = [
                h
                for h in root.handlers
                if isinstance(h, logging.StreamHandler)
                and not isinstance(h, logging.NullHandler)
            ]
            assert len(streams) == 1
            assert root.level == logging.DEBUG
        finally:
            root.handlers[:] = before
            root.setLevel(before_level)
