"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative_int,
    check_positive_int,
    check_probability,
    check_probability_vector,
    check_quality_vector,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-2, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")


class TestCheckNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan"), float("inf")])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.5, "x", 0.5, 1.0) == 0.5

    def test_exclusive_low(self):
        with pytest.raises(ValueError):
            check_in_range(0.5, "x", 0.5, 1.0, inclusive_low=False)

    def test_exclusive_high(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", 0.5, 1.0, inclusive_high=False)

    def test_error_message_mentions_name(self):
        with pytest.raises(ValueError, match="myparam"):
            check_in_range(2.0, "myparam", 0.0, 1.0)


class TestCheckProbabilityVector:
    def test_accepts_valid(self):
        result = check_probability_vector([0.2, 0.3, 0.5], "p")
        np.testing.assert_allclose(result.sum(), 1.0)

    def test_rejects_not_summing_to_one(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.2, 0.3], "p")

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            check_probability_vector([1.2, -0.2], "p")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_probability_vector([], "p")

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_probability_vector([[0.5, 0.5]], "p")


class TestCheckQualityVector:
    def test_accepts_valid(self):
        result = check_quality_vector([0.9, 0.1], "q")
        assert result.shape == (2,)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_quality_vector([1.5], "q")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_quality_vector([float("nan")], "q")
