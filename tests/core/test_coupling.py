"""Tests for the finite/infinite coupling (Lemma 4.5 machinery)."""

import numpy as np
import pytest

from repro.core.coupling import run_coupled_dynamics, worst_case_ratio
from repro.environments import BernoulliEnvironment


class TestWorstCaseRatio:
    def test_identical_distributions_give_one(self):
        p = np.array([0.3, 0.7])
        assert worst_case_ratio(p, p) == pytest.approx(1.0)

    def test_symmetric(self):
        p = np.array([0.4, 0.6])
        q = np.array([0.5, 0.5])
        assert worst_case_ratio(p, q) == pytest.approx(worst_case_ratio(q, p))

    def test_known_value(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.25, 0.75])
        assert worst_case_ratio(p, q) == pytest.approx(2.0)

    def test_one_sided_zero_gives_infinity(self):
        assert np.isinf(worst_case_ratio(np.array([0.0, 1.0]), np.array([0.5, 0.5])))

    def test_both_zero_ignored(self):
        assert worst_case_ratio(np.array([0.0, 1.0]), np.array([0.0, 1.0])) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            worst_case_ratio(np.array([0.5, 0.5]), np.array([0.3, 0.3, 0.4]))


class TestRunCoupledDynamics:
    def test_result_shapes(self):
        env = BernoulliEnvironment([0.8, 0.5], rng=0)
        run = run_coupled_dynamics(env, population_size=2000, horizon=15, beta=0.6, rng=1)
        assert run.horizon == 15
        assert run.ratio_series.shape == (15,)
        assert run.finite_trajectory.horizon == 15
        assert run.infinite_trajectory.horizon == 15

    def test_same_rewards_in_both_processes(self):
        env = BernoulliEnvironment([0.8, 0.5], rng=2)
        run = run_coupled_dynamics(env, population_size=1000, horizon=10, beta=0.6, rng=3)
        np.testing.assert_array_equal(
            run.finite_trajectory.reward_matrix(),
            run.infinite_trajectory.reward_matrix(),
        )

    def test_ratio_shrinks_with_population(self):
        env_small = BernoulliEnvironment([0.8, 0.5], rng=4)
        env_large = BernoulliEnvironment([0.8, 0.5], rng=4)
        small = run_coupled_dynamics(env_small, population_size=200, horizon=8, beta=0.6, rng=5)
        large = run_coupled_dynamics(env_large, population_size=200_000, horizon=8, beta=0.6, rng=5)
        assert large.max_ratio() < small.max_ratio()

    def test_bound_series_when_included(self):
        env = BernoulliEnvironment([0.8, 0.5], rng=6)
        run = run_coupled_dynamics(env, population_size=5000, horizon=5, beta=0.6, rng=7)
        assert run.bound_series is not None
        assert run.bound_series.shape == (5,)
        # Lemma bound is increasing in t (factor 5^t).
        assert np.all(np.diff(run.bound_series) > 0)

    def test_within_bound_reporting(self):
        env = BernoulliEnvironment([0.8, 0.5], rng=8)
        run = run_coupled_dynamics(env, population_size=100_000, horizon=4, beta=0.6, rng=9)
        flags = run.within_bound()
        assert flags is not None
        assert flags.shape == (4,)
        assert flags.all()  # generous bound, large N, short horizon

    def test_bounds_can_be_disabled(self):
        env = BernoulliEnvironment([0.8, 0.5], rng=10)
        run = run_coupled_dynamics(
            env, population_size=500, horizon=3, beta=0.6, rng=11, include_bounds=False
        )
        assert run.bound_series is None
        assert run.within_bound() is None

    def test_invalid_arguments_rejected(self):
        env = BernoulliEnvironment([0.8, 0.5], rng=12)
        with pytest.raises(ValueError):
            run_coupled_dynamics(env, population_size=0, horizon=5)
        with pytest.raises(ValueError):
            run_coupled_dynamics(env, population_size=100, horizon=0)
