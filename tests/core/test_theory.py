"""Tests for the executable theory bounds."""

import math

import pytest

from repro.core.theory import (
    BETA_UPPER_LIMIT,
    TheoryBounds,
    beta_from_delta,
    delta_from_beta,
    max_exploration_rate,
    optimal_beta,
)


class TestDeltaConversions:
    def test_delta_formula(self):
        assert delta_from_beta(0.6) == pytest.approx(math.log(1.5))

    def test_beta_upper_limit_gives_delta_one(self):
        assert delta_from_beta(BETA_UPPER_LIMIT) == pytest.approx(1.0)

    def test_round_trip(self):
        for beta in (0.55, 0.6, 0.7):
            assert beta_from_delta(delta_from_beta(beta)) == pytest.approx(beta)

    def test_rejects_beta_at_or_below_half(self):
        with pytest.raises(ValueError):
            delta_from_beta(0.5)

    def test_rejects_beta_one(self):
        with pytest.raises(ValueError):
            delta_from_beta(1.0)

    def test_max_exploration_rate(self):
        delta = delta_from_beta(0.6)
        assert max_exploration_rate(0.6) == pytest.approx(delta**2 / 6.0)

    def test_beta_from_delta_rejects_non_positive(self):
        with pytest.raises(ValueError):
            beta_from_delta(0.0)


class TestOptimalBeta:
    def test_decreases_with_horizon(self):
        short = optimal_beta(100, 10)
        long = optimal_beta(100_000, 10)
        assert long < short

    def test_clipped_to_admissible_range(self):
        beta = optimal_beta(2, 1000)
        assert 0.5 < beta <= BETA_UPPER_LIMIT

    def test_single_option_degenerate(self):
        assert optimal_beta(100, 1) > 0.5


class TestTheoryBounds:
    def make(self, **overrides) -> TheoryBounds:
        defaults = dict(num_options=10, beta=0.6, mu=0.02, population_size=100_000)
        defaults.update(overrides)
        return TheoryBounds(**defaults)

    def test_strict_rejects_beta_out_of_range(self):
        with pytest.raises(ValueError):
            TheoryBounds(num_options=5, beta=0.9, mu=0.01)

    def test_strict_rejects_mu_too_large(self):
        with pytest.raises(ValueError):
            TheoryBounds(num_options=5, beta=0.6, mu=0.2)

    def test_non_strict_allows_out_of_range(self):
        bounds = TheoryBounds(num_options=5, beta=0.9, mu=0.5, strict=False)
        assert bounds.delta > 1.0

    def test_minimum_horizon_formula(self):
        bounds = self.make()
        assert bounds.minimum_horizon() == pytest.approx(
            math.log(10) / bounds.delta**2
        )

    def test_infinite_regret_bound_headline(self):
        bounds = self.make()
        assert bounds.infinite_regret_bound() == pytest.approx(3 * bounds.delta)

    def test_infinite_regret_bound_with_horizon(self):
        bounds = self.make()
        horizon = 500
        expected = math.log(10) / (bounds.delta * horizon) + 2 * bounds.delta
        assert bounds.infinite_regret_bound(horizon) == pytest.approx(expected)

    def test_finite_regret_bound_is_six_delta(self):
        bounds = self.make()
        assert bounds.finite_regret_bound() == pytest.approx(6 * bounds.delta)

    def test_best_option_share_bound(self):
        bounds = self.make()
        assert bounds.best_option_share_bound(0.5) == pytest.approx(
            max(0.0, 1 - 3 * bounds.delta / 0.5)
        )
        assert bounds.best_option_share_bound(1e-9) == 0.0
        assert bounds.best_option_share_bound(-1.0) == 0.0

    def test_nonuniform_minimum_horizon(self):
        bounds = self.make()
        zeta = bounds.occupancy_floor()
        assert bounds.nonuniform_minimum_horizon(zeta) == pytest.approx(
            math.log(1 / zeta) / bounds.delta**2
        )
        assert bounds.nonuniform_minimum_horizon(zeta) == pytest.approx(
            bounds.epoch_length()
        )

    def test_concentration_formulas(self):
        bounds = self.make()
        n = bounds.population_size
        m = bounds.num_options
        expected_prime = math.sqrt(30 * m * math.log(n) / (bounds.mu * n))
        expected_double = math.sqrt(
            60 * m * math.log(n) / ((1 - bounds.beta) * bounds.mu * n)
        )
        assert bounds.sampling_concentration() == pytest.approx(expected_prime)
        assert bounds.adoption_concentration() == pytest.approx(expected_double)
        assert bounds.single_step_closeness() == pytest.approx(1 + 6 * expected_double)
        assert bounds.sampling_concentration() < bounds.adoption_concentration()

    def test_occupancy_floor(self):
        bounds = self.make()
        assert bounds.occupancy_floor() == pytest.approx(
            bounds.mu * (1 - bounds.beta) / (4 * bounds.num_options)
        )

    def test_coupling_factor_grows_like_five_to_t(self):
        bounds = self.make()
        dpp = bounds.adoption_concentration()
        assert bounds.coupling_factor(1) == pytest.approx(1 + 5 * dpp)
        assert bounds.coupling_factor(3) == pytest.approx(1 + 125 * dpp)

    def test_coupling_failure_probability_monotone_in_time(self):
        bounds = self.make()
        assert bounds.coupling_failure_probability(
            1
        ) < bounds.coupling_failure_probability(10)

    def test_coupling_valid_horizon_positive_for_large_n(self):
        bounds = self.make(population_size=10**9)
        assert bounds.coupling_valid_horizon() >= 1

    def test_coupling_valid_horizon_zero_for_tiny_n(self):
        bounds = TheoryBounds(
            num_options=10, beta=0.6, mu=0.02, population_size=50, strict=False
        )
        assert bounds.coupling_valid_horizon() == 0

    def test_maximum_horizon_scales_with_population(self):
        small = self.make(population_size=1000).maximum_horizon()
        large = self.make(population_size=10_000).maximum_horizon()
        assert large > small

    def test_population_size_condition_keys(self):
        report = self.make().population_size_condition()
        assert {
            "condition1_lhs",
            "condition1_rhs",
            "condition1_holds",
            "condition2_lhs",
            "condition2_rhs",
            "condition2_holds",
        } <= set(report)

    def test_population_requirements_error_without_n(self):
        bounds = TheoryBounds(num_options=5, beta=0.6, mu=0.02)
        with pytest.raises(ValueError):
            bounds.adoption_concentration()

    def test_summary_contains_population_fields_when_available(self):
        summary = self.make().summary()
        assert "delta_double_prime" in summary
        assert "N" in summary

    def test_summary_without_population(self):
        summary = TheoryBounds(num_options=5, beta=0.6, mu=0.02).summary()
        assert "delta_double_prime" not in summary
        assert summary["m"] == 5
