"""Tests for regret accounting."""

import numpy as np
import pytest

from repro.core.regret import (
    RegretAccumulator,
    average_regret,
    best_option_share,
    empirical_regret,
    expected_regret,
    expected_step_rewards,
    step_rewards,
)


class TestStepRewards:
    def test_inner_product_per_step(self):
        popularities = np.array([[0.5, 0.5], [1.0, 0.0]])
        rewards = np.array([[1, 0], [0, 1]])
        np.testing.assert_allclose(step_rewards(popularities, rewards), [0.5, 0.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            step_rewards(np.zeros((3, 2)), np.zeros((2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            step_rewards(np.zeros((0, 2)), np.zeros((0, 2)))


class TestEmpiricalRegret:
    def test_perfect_play_zero_regret(self):
        popularities = np.array([[1.0, 0.0]] * 10)
        rewards = np.array([[1, 0]] * 10)
        assert empirical_regret(popularities, rewards, best_quality=1.0) == pytest.approx(0.0)

    def test_worst_play_full_regret(self):
        popularities = np.array([[0.0, 1.0]] * 10)
        rewards = np.array([[1, 0]] * 10)
        assert empirical_regret(popularities, rewards, best_quality=1.0) == pytest.approx(1.0)

    def test_uniform_play(self):
        popularities = np.array([[0.5, 0.5]] * 4)
        rewards = np.array([[1, 0]] * 4)
        assert empirical_regret(popularities, rewards, best_quality=1.0) == pytest.approx(0.5)


class TestExpectedRegret:
    def test_matches_hand_computation(self):
        popularities = np.array([[0.5, 0.5], [0.8, 0.2]])
        qualities = [0.9, 0.4]
        expected_reward = np.mean([0.5 * 0.9 + 0.5 * 0.4, 0.8 * 0.9 + 0.2 * 0.4])
        assert expected_regret(popularities, qualities) == pytest.approx(0.9 - expected_reward)

    def test_expected_step_rewards_vector(self):
        popularities = np.array([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose(
            expected_step_rewards(popularities, [0.9, 0.4]), [0.9, 0.4]
        )

    def test_non_negative_for_any_distribution(self):
        rng = np.random.default_rng(0)
        popularities = rng.dirichlet(np.ones(4), size=50)
        qualities = [0.8, 0.6, 0.4, 0.2]
        assert expected_regret(popularities, qualities) >= 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            expected_step_rewards(np.zeros((5, 3)), [0.5, 0.5])


class TestBestOptionShare:
    def test_average_of_column(self):
        popularities = np.array([[0.2, 0.8], [0.4, 0.6]])
        assert best_option_share(popularities, 0) == pytest.approx(0.3)
        assert best_option_share(popularities, 1) == pytest.approx(0.7)

    def test_out_of_range_option_rejected(self):
        with pytest.raises(ValueError):
            best_option_share(np.array([[0.5, 0.5]]), 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            best_option_share(np.zeros((0, 2)), 0)


class TestAverageRegret:
    def test_mean(self):
        assert average_regret([0.1, 0.2, 0.3]) == pytest.approx(0.2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_regret([])


class TestRegretAccumulator:
    def test_online_matches_batch(self):
        rng = np.random.default_rng(0)
        popularities = rng.dirichlet(np.ones(3), size=30)
        rewards = rng.integers(0, 2, size=(30, 3))
        accumulator = RegretAccumulator(best_quality=0.8)
        for popularity, reward in zip(popularities, rewards):
            accumulator.update(popularity, reward)
        assert accumulator.regret() == pytest.approx(
            empirical_regret(popularities, rewards, best_quality=0.8)
        )
        assert accumulator.steps == 30

    def test_regret_series_prefix_averages(self):
        accumulator = RegretAccumulator(best_quality=1.0)
        accumulator.update([1.0, 0.0], [1, 0])  # reward 1
        accumulator.update([1.0, 0.0], [0, 0])  # reward 0
        series = accumulator.regret_series()
        np.testing.assert_allclose(series, [0.0, 0.5])

    def test_empty_accumulator_raises(self):
        accumulator = RegretAccumulator(best_quality=0.5)
        with pytest.raises(ValueError):
            accumulator.average_reward()
        assert accumulator.regret_series().size == 0

    def test_invalid_best_quality_rejected(self):
        with pytest.raises(ValueError):
            RegretAccumulator(best_quality=1.5)

    def test_update_validates_shapes(self):
        accumulator = RegretAccumulator(best_quality=0.5)
        with pytest.raises(ValueError):
            accumulator.update([0.5, 0.5], [1, 0, 1])
