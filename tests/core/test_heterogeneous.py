"""Tests for the typed heterogeneous-population dynamics."""

import numpy as np
import pytest

from repro.core.adoption import AlwaysAdoptRule, GeneralAdoptionRule, SymmetricAdoptionRule
from repro.core.heterogeneous import AgentType, HeterogeneousPopulationDynamics
from repro.core.regret import expected_regret
from repro.environments import BernoulliEnvironment
from repro import simulate_finite_population


class TestAgentType:
    def test_fields(self):
        agent_type = AgentType(10, SymmetricAdoptionRule(0.6), exploration_rate=0.05)
        assert agent_type.count == 10
        assert agent_type.exploration_rate == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            AgentType(0, SymmetricAdoptionRule(0.6))
        with pytest.raises(TypeError):
            AgentType(5, "rule")
        with pytest.raises(ValueError):
            AgentType(5, SymmetricAdoptionRule(0.6), exploration_rate=1.5)


class TestConstruction:
    def test_population_size_is_sum_of_counts(self):
        dynamics = HeterogeneousPopulationDynamics(
            [AgentType(30, SymmetricAdoptionRule(0.6)), AgentType(20, SymmetricAdoptionRule(0.7))],
            3,
            rng=0,
        )
        assert dynamics.population_size == 50
        assert dynamics.counts_by_type().shape == (2, 3)

    def test_initial_popularity_near_uniform(self):
        dynamics = HeterogeneousPopulationDynamics(
            [AgentType(100, SymmetricAdoptionRule(0.6))], 4, rng=0
        )
        np.testing.assert_allclose(dynamics.popularity(), 0.25)

    def test_rejects_empty_types(self):
        with pytest.raises(ValueError):
            HeterogeneousPopulationDynamics([], 2)

    def test_two_group_constructor(self):
        dynamics = HeterogeneousPopulationDynamics.two_group(
            100, 2, responsive_fraction=0.3, rng=0
        )
        counts = [agent_type.count for agent_type in dynamics.agent_types]
        assert sum(counts) == 100
        assert counts[0] == 30

    def test_from_beta_values(self):
        dynamics = HeterogeneousPopulationDynamics.from_beta_values(
            [0.55, 0.65, 0.72], [10, 20, 30], 2, rng=0
        )
        assert dynamics.population_size == 60
        betas = [t.adoption_rule.beta for t in dynamics.agent_types]
        assert betas == pytest.approx([0.55, 0.65, 0.72])

    def test_from_beta_values_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousPopulationDynamics.from_beta_values([0.6], [1, 2], 2)


class TestStep:
    def test_counts_bounded_by_type_counts(self):
        dynamics = HeterogeneousPopulationDynamics(
            [AgentType(40, SymmetricAdoptionRule(0.6)), AgentType(60, SymmetricAdoptionRule(0.7))],
            3,
            rng=0,
        )
        rng = np.random.default_rng(1)
        for _ in range(20):
            dynamics.step(rng.integers(0, 2, size=3))
            per_type = dynamics.counts_by_type().sum(axis=1)
            assert per_type[0] <= 40 and per_type[1] <= 60

    def test_always_adopt_type_keeps_everyone_committed(self):
        dynamics = HeterogeneousPopulationDynamics(
            [AgentType(50, AlwaysAdoptRule())], 2, rng=0
        )
        state = dynamics.step(np.array([0, 0]))
        assert state.committed == 50

    def test_rejects_bad_rewards(self):
        dynamics = HeterogeneousPopulationDynamics(
            [AgentType(10, SymmetricAdoptionRule(0.6))], 2, rng=0
        )
        with pytest.raises(ValueError):
            dynamics.step(np.array([2, 0]))
        with pytest.raises(ValueError):
            dynamics.step(np.array([1]))

    def test_popularity_by_type_rows_are_distributions(self):
        dynamics = HeterogeneousPopulationDynamics.two_group(200, 3, rng=0)
        dynamics.step(np.array([1, 0, 1]))
        per_type = dynamics.popularity_by_type()
        np.testing.assert_allclose(per_type.sum(axis=1), 1.0)

    def test_time_advances(self):
        dynamics = HeterogeneousPopulationDynamics.two_group(50, 2, rng=0)
        dynamics.step(np.array([1, 0]))
        assert dynamics.time == 1


class TestBehaviour:
    def test_homogeneous_types_match_core_dynamics(self):
        """A single-type heterogeneous population is the core dynamics."""
        qualities = [0.85, 0.45]
        het_regrets, core_regrets = [], []
        for seed in range(4):
            env = BernoulliEnvironment(qualities, rng=seed)
            het = HeterogeneousPopulationDynamics(
                [AgentType(1000, SymmetricAdoptionRule(0.65), exploration_rate=0.03)],
                2,
                rng=seed + 10,
            )
            het_regrets.append(
                expected_regret(het.run(env, 200).popularity_matrix(), qualities)
            )
            env2 = BernoulliEnvironment(qualities, rng=seed)
            core = simulate_finite_population(env2, 1000, 200, beta=0.65, mu=0.03, rng=seed + 10)
            core_regrets.append(expected_regret(core.popularity_matrix(), qualities))
        assert np.mean(het_regrets) == pytest.approx(np.mean(core_regrets), abs=0.05)

    def test_mixed_population_still_learns(self):
        env = BernoulliEnvironment([0.85, 0.45, 0.45], rng=0)
        dynamics = HeterogeneousPopulationDynamics.from_beta_values(
            [0.55, 0.62, 0.72], [300, 400, 300], 3, rng=1
        )
        trajectory = dynamics.run(env, 300)
        assert expected_regret(trajectory.popularity_matrix(), env.qualities) < 0.15

    def test_responsive_types_commit_more(self):
        """Types with larger beta hold options more often on good signals."""
        dynamics = HeterogeneousPopulationDynamics(
            [
                AgentType(500, GeneralAdoptionRule(alpha=0.0, beta=0.95)),
                AgentType(500, GeneralAdoptionRule(alpha=0.0, beta=0.55)),
            ],
            2,
            rng=0,
        )
        for _ in range(20):
            dynamics.step(np.array([1, 1]))
        per_type = dynamics.counts_by_type().sum(axis=1)
        assert per_type[0] > per_type[1]

    def test_run_rejects_mismatched_environment(self):
        env = BernoulliEnvironment([0.8, 0.5, 0.3], rng=0)
        dynamics = HeterogeneousPopulationDynamics.two_group(50, 2, rng=1)
        with pytest.raises(ValueError):
            dynamics.run(env, 10)
