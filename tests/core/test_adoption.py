"""Tests for adoption rules."""

import math

import numpy as np
import pytest

from repro.core.adoption import (
    AlwaysAdoptRule,
    GeneralAdoptionRule,
    SymmetricAdoptionRule,
)


class TestGeneralAdoptionRule:
    def test_probabilities_by_signal(self):
        rule = GeneralAdoptionRule(alpha=0.2, beta=0.9)
        assert rule.adopt_probability(1) == pytest.approx(0.9)
        assert rule.adopt_probability(0) == pytest.approx(0.2)

    def test_vectorised_probabilities(self):
        rule = GeneralAdoptionRule(alpha=0.1, beta=0.8)
        signals = np.array([1, 0, 1, 0])
        np.testing.assert_allclose(
            rule.adopt_probabilities(signals), [0.8, 0.1, 0.8, 0.1]
        )

    def test_rejects_alpha_above_beta(self):
        with pytest.raises(ValueError):
            GeneralAdoptionRule(alpha=0.9, beta=0.5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            GeneralAdoptionRule(alpha=-0.1, beta=0.5)
        with pytest.raises(ValueError):
            GeneralAdoptionRule(alpha=0.1, beta=1.5)

    def test_rejects_invalid_signal(self):
        rule = GeneralAdoptionRule(alpha=0.1, beta=0.8)
        with pytest.raises(ValueError):
            rule.adopt_probability(2)

    def test_delta_formula(self):
        rule = GeneralAdoptionRule(alpha=0.25, beta=0.75)
        assert rule.delta == pytest.approx(math.log(3.0))

    def test_delta_infinite_when_alpha_zero(self):
        assert GeneralAdoptionRule(alpha=0.0, beta=0.5).delta == math.inf

    def test_is_informative(self):
        assert GeneralAdoptionRule(0.2, 0.8).is_informative()
        assert not GeneralAdoptionRule(0.5, 0.5).is_informative()

    def test_equality_and_hash(self):
        a = GeneralAdoptionRule(0.3, 0.7)
        b = SymmetricAdoptionRule(0.7)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_with_non_rule(self):
        assert GeneralAdoptionRule(0.3, 0.7) != "rule"


class TestSymmetricAdoptionRule:
    def test_alpha_is_one_minus_beta(self):
        rule = SymmetricAdoptionRule(0.65)
        assert rule.alpha == pytest.approx(0.35)
        assert rule.beta == pytest.approx(0.65)

    def test_delta_matches_paper_formula(self):
        rule = SymmetricAdoptionRule(0.6)
        assert rule.delta == pytest.approx(math.log(0.6 / 0.4))

    def test_rejects_beta_below_half(self):
        with pytest.raises(ValueError):
            SymmetricAdoptionRule(0.4)

    def test_beta_exactly_half_is_uninformative(self):
        rule = SymmetricAdoptionRule(0.5)
        assert not rule.is_informative()
        assert rule.delta == pytest.approx(0.0)


class TestAlwaysAdoptRule:
    def test_always_one(self):
        rule = AlwaysAdoptRule()
        assert rule.adopt_probability(0) == 1.0
        assert rule.adopt_probability(1) == 1.0

    def test_not_informative(self):
        assert not AlwaysAdoptRule().is_informative()
