"""Tests for PopulationState and Trajectory."""

import numpy as np
import pytest

from repro.core.state import PopulationState, Trajectory


class TestPopulationState:
    def test_uniform_initialisation_matches_paper(self):
        state = PopulationState.uniform(100, 4)
        np.testing.assert_array_equal(state.counts, [25, 25, 25, 25])
        np.testing.assert_allclose(state.popularity(), 0.25)

    def test_uniform_handles_remainder(self):
        state = PopulationState.uniform(10, 3)
        assert state.counts.sum() == 10
        assert state.counts.max() - state.counts.min() <= 1

    def test_popularity_normalises_counts(self):
        state = PopulationState.from_counts([30, 10])
        np.testing.assert_allclose(state.popularity(), [0.75, 0.25])

    def test_popularity_uniform_when_empty(self):
        state = PopulationState(counts=np.zeros(4, dtype=int), population_size=10)
        np.testing.assert_allclose(state.popularity(), 0.25)

    def test_committed_and_sitting_out(self):
        state = PopulationState(counts=np.array([3, 4]), population_size=10)
        assert state.committed == 7
        assert state.sitting_out == 3

    def test_min_popularity_and_leader(self):
        state = PopulationState.from_counts([5, 15, 10])
        assert state.min_popularity() == pytest.approx(5 / 30)
        assert state.leader() == 1

    def test_entropy_maximal_for_uniform(self):
        uniform = PopulationState.uniform(100, 4)
        skewed = PopulationState.from_counts([97, 1, 1, 1])
        assert uniform.entropy() > skewed.entropy()
        assert uniform.entropy() == pytest.approx(np.log(4))

    def test_entropy_zero_for_consensus(self):
        state = PopulationState.from_counts([10, 0, 0])
        assert state.entropy() == pytest.approx(0.0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            PopulationState(counts=np.array([-1, 2]), population_size=5)

    def test_rejects_committed_exceeding_population(self):
        with pytest.raises(ValueError):
            PopulationState(counts=np.array([5, 6]), population_size=10)

    def test_immutable(self):
        state = PopulationState.from_counts([1, 2])
        with pytest.raises(AttributeError):
            state.population_size = 5


class TestTrajectory:
    def _make_trajectory(self, steps: int = 5, options: int = 3) -> Trajectory:
        initial = PopulationState.uniform(30, options)
        trajectory = Trajectory(initial_state=initial)
        rng = np.random.default_rng(0)
        for step in range(steps):
            counts = rng.multinomial(30, np.full(options, 1.0 / options))
            state = PopulationState(counts=counts, population_size=30, time=step + 1)
            trajectory.record(
                pre_step_popularity=np.full(options, 1.0 / options),
                rewards=rng.integers(0, 2, size=options),
                new_state=state,
            )
        return trajectory

    def test_horizon_and_matrices(self):
        trajectory = self._make_trajectory(steps=7, options=4)
        assert trajectory.horizon == 7
        assert trajectory.popularity_matrix().shape == (7, 4)
        assert trajectory.reward_matrix().shape == (7, 4)

    def test_empty_trajectory_matrices(self):
        trajectory = Trajectory(initial_state=PopulationState.uniform(10, 2))
        assert trajectory.popularity_matrix().shape == (0, 2)
        assert trajectory.reward_matrix().shape == (0, 2)
        assert trajectory.final_state().num_options == 2

    def test_final_state_is_last_recorded(self):
        trajectory = self._make_trajectory(steps=3)
        assert trajectory.final_state() is trajectory.states[-1]

    def test_best_option_popularity_series_length(self):
        trajectory = self._make_trajectory(steps=5)
        assert trajectory.best_option_popularity(0).shape == (5,)

    def test_min_popularity_and_leader_series(self):
        trajectory = self._make_trajectory(steps=5)
        assert trajectory.min_popularity_series().shape == (5,)
        assert trajectory.leader_series().shape == (5,)
