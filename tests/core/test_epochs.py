"""Tests for the epoch decomposition."""

import numpy as np
import pytest

from repro.core.epochs import EpochSchedule
from repro.core.theory import TheoryBounds


class TestEpochSchedule:
    def test_boundaries_cover_horizon(self):
        schedule = EpochSchedule(horizon=25, epoch_length=10)
        assert schedule.boundaries() == [(0, 10), (10, 20), (20, 25)]
        assert schedule.num_epochs == 3

    def test_exact_multiple(self):
        schedule = EpochSchedule(horizon=20, epoch_length=10)
        assert schedule.num_epochs == 2
        assert schedule.boundaries()[-1] == (10, 20)

    def test_epoch_of(self):
        schedule = EpochSchedule(horizon=25, epoch_length=10)
        assert schedule.epoch_of(0) == 0
        assert schedule.epoch_of(9) == 0
        assert schedule.epoch_of(10) == 1
        assert schedule.epoch_of(24) == 2

    def test_epoch_of_out_of_range(self):
        schedule = EpochSchedule(horizon=10, epoch_length=5)
        with pytest.raises(ValueError):
            schedule.epoch_of(10)
        with pytest.raises(ValueError):
            schedule.epoch_of(-1)

    def test_split_series_lengths(self):
        schedule = EpochSchedule(horizon=25, epoch_length=10)
        chunks = schedule.split_series(np.arange(25))
        assert [len(chunk) for chunk in chunks] == [10, 10, 5]

    def test_split_series_wrong_length_rejected(self):
        schedule = EpochSchedule(horizon=10, epoch_length=5)
        with pytest.raises(ValueError):
            schedule.split_series(np.arange(7))

    def test_from_bounds_uses_paper_epoch_length(self):
        bounds = TheoryBounds(num_options=5, beta=0.6, mu=0.02)
        schedule = EpochSchedule.from_bounds(bounds, horizon=10_000)
        assert schedule.epoch_length == int(np.ceil(bounds.epoch_length()))

    def test_per_epoch_regret(self):
        schedule = EpochSchedule(horizon=4, epoch_length=2)
        popularities = np.array([[1.0, 0.0]] * 2 + [[0.0, 1.0]] * 2)
        rewards = np.array([[1, 0]] * 4)
        per_epoch = schedule.per_epoch_regret(popularities, rewards, best_quality=1.0)
        np.testing.assert_allclose(per_epoch, [0.0, 1.0])

    def test_per_epoch_regret_shape_validation(self):
        schedule = EpochSchedule(horizon=4, epoch_length=2)
        with pytest.raises(ValueError):
            schedule.per_epoch_regret(np.zeros((3, 2)), np.zeros((3, 2)), 1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            EpochSchedule(horizon=0, epoch_length=5)
        with pytest.raises(ValueError):
            EpochSchedule(horizon=5, epoch_length=0)
