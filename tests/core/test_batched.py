"""Tests for the replicate-axis batched simulation engine."""

import numpy as np
import pytest

from repro.core.adoption import AlwaysAdoptRule, GeneralAdoptionRule, SymmetricAdoptionRule
from repro.core.batched import (
    BatchedDynamics,
    BatchedPopulationState,
    BatchedTrajectory,
    simulate_batched_population,
)
from repro.core.dynamics import FinitePopulationDynamics, simulate_finite_population
from repro.core.sampling import MixtureSampling, UniformSampling
from repro.core.state import PopulationState
from repro.environments import (
    BernoulliEnvironment,
    CorrelatedOptionsEnvironment,
    ExactlyOneGoodEnvironment,
    PiecewiseConstantDriftEnvironment,
    RandomWalkDriftEnvironment,
    RecordedRewardSequence,
)


class TestBatchedPopulationState:
    def test_uniform_rows_match_scalar_uniform(self):
        batched = BatchedPopulationState.uniform(4, 103, 5)
        scalar = PopulationState.uniform(103, 5)
        assert batched.num_replicates == 4
        for index in range(4):
            np.testing.assert_array_equal(batched.counts[index], scalar.counts)

    def test_rejects_1d_counts(self):
        with pytest.raises(ValueError):
            BatchedPopulationState(counts=np.array([1, 2, 3]), population_size=6)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            BatchedPopulationState(counts=np.array([[1, -1]]), population_size=10)

    def test_rejects_overfull_replicate(self):
        counts = np.array([[5, 5], [8, 5]])
        with pytest.raises(ValueError, match="replicate 1"):
            BatchedPopulationState(counts=counts, population_size=10)

    def test_popularity_uniform_fallback_per_row(self):
        counts = np.array([[0, 0, 0], [3, 0, 0]])
        state = BatchedPopulationState(counts=counts, population_size=10)
        popularity = state.popularity()
        np.testing.assert_allclose(popularity[0], 1.0 / 3)
        np.testing.assert_allclose(popularity[1], [1.0, 0.0, 0.0])

    def test_batched_accessors_match_scalar_views(self):
        counts = np.array([[4, 6, 0], [2, 2, 2], [0, 0, 9]])
        state = BatchedPopulationState(counts=counts, population_size=12, time=3)
        for index in range(3):
            view = state.replicate(index)
            assert isinstance(view, PopulationState)
            assert view.time == 3
            np.testing.assert_allclose(
                state.popularity()[index], view.popularity()
            )
            assert state.entropy()[index] == pytest.approx(view.entropy())
            assert state.min_popularity()[index] == pytest.approx(view.min_popularity())
            assert state.leader()[index] == view.leader()
            assert state.committed[index] == view.committed

    def test_replicate_index_out_of_range(self):
        state = BatchedPopulationState.uniform(2, 10, 2)
        with pytest.raises(IndexError):
            state.replicate(2)


class TestBatchedDynamics:
    def test_initial_popularity_uniform(self):
        dynamics = BatchedDynamics(8, 100, 4, rng=0)
        np.testing.assert_allclose(dynamics.popularity(), 0.25)

    def test_step_preserves_population_size_per_replicate(self):
        dynamics = BatchedDynamics(16, 200, 3, rng=0)
        state = dynamics.step(np.array([1, 0, 1]))
        assert state.counts.shape == (16, 3)
        assert np.all(state.counts.sum(axis=1) <= 200)
        assert state.population_size == 200

    def test_step_accepts_per_replicate_rewards(self):
        dynamics = BatchedDynamics(4, 100, 2, rng=0)
        rewards = np.array([[1, 0], [0, 1], [1, 1], [0, 0]])
        state = dynamics.step(rewards)
        assert state.time == 1

    def test_step_rejects_bad_shapes_and_values(self):
        dynamics = BatchedDynamics(4, 100, 2, rng=0)
        with pytest.raises(ValueError):
            dynamics.step(np.array([1, 0, 1]))
        with pytest.raises(ValueError):
            dynamics.step(np.ones((3, 2), dtype=int))
        with pytest.raises(ValueError):
            dynamics.step(np.array([0.5, 0.5]))

    def test_always_adopt_commits_everyone_in_every_replicate(self):
        dynamics = BatchedDynamics(6, 100, 3, adoption_rule=AlwaysAdoptRule(), rng=0)
        state = dynamics.step(np.zeros(3, dtype=int))
        np.testing.assert_array_equal(state.counts.sum(axis=1), 100)

    def test_never_adopt_on_bad_signals_empties_every_replicate(self):
        dynamics = BatchedDynamics(
            6, 100, 3, adoption_rule=GeneralAdoptionRule(alpha=0.0, beta=1.0), rng=0
        )
        state = dynamics.step(np.zeros(3, dtype=int))
        assert state.counts.sum() == 0
        np.testing.assert_allclose(state.popularity(), 1.0 / 3)

    def test_initial_state_tiled_from_population_state(self):
        initial = PopulationState.from_counts([70, 30], population_size=100)
        dynamics = BatchedDynamics(5, 100, 2, initial_state=initial, rng=0)
        np.testing.assert_allclose(dynamics.popularity(), [[0.7, 0.3]] * 5)

    def test_initial_state_validation(self):
        wrong_replicates = BatchedPopulationState.uniform(3, 100, 2)
        with pytest.raises(ValueError):
            BatchedDynamics(4, 100, 2, initial_state=wrong_replicates)
        wrong_options = BatchedPopulationState.uniform(4, 100, 3)
        with pytest.raises(ValueError):
            BatchedDynamics(4, 100, 2, initial_state=wrong_options)
        wrong_population = BatchedPopulationState.uniform(4, 50, 2)
        with pytest.raises(ValueError):
            BatchedDynamics(4, 100, 2, initial_state=wrong_population)

    def test_default_mu_matches_sequential_engine(self):
        batched = BatchedDynamics(2, 100, 2, adoption_rule=SymmetricAdoptionRule(0.6))
        sequential = FinitePopulationDynamics(100, 2, adoption_rule=SymmetricAdoptionRule(0.6))
        assert batched.sampling_rule == sequential.sampling_rule

    def test_run_records_batched_trajectory(self):
        env = BernoulliEnvironment([0.8, 0.4], rng=1)
        dynamics = BatchedDynamics(10, 500, 2, rng=2)
        trajectory = dynamics.run(env, 50)
        assert trajectory.horizon == 50
        assert trajectory.popularity_tensor().shape == (50, 10, 2)
        assert trajectory.reward_tensor().shape == (50, 10, 2)
        assert trajectory.final_state().num_replicates == 10

    def test_run_rejects_mismatched_environment(self):
        env = BernoulliEnvironment([0.8, 0.4, 0.3], rng=1)
        dynamics = BatchedDynamics(4, 100, 2, rng=2)
        with pytest.raises(ValueError):
            dynamics.run(env, 10)

    def test_reset_without_rng_keeps_advanced_generator(self):
        dynamics = BatchedDynamics(8, 300, 2, rng=9)
        rewards = np.ones(2, dtype=int)
        first = np.stack([dynamics.step(rewards).counts for _ in range(5)])
        dynamics.reset()
        assert dynamics.state.time == 0
        second = np.stack([dynamics.step(rewards).counts for _ in range(5)])
        assert not np.array_equal(first, second)

    def test_reset_with_original_seed_reproduces_run(self):
        dynamics = BatchedDynamics(8, 300, 2, rng=9)
        rewards = np.ones(2, dtype=int)
        first = np.stack([dynamics.step(rewards).counts for _ in range(5)])
        dynamics.reset(rng=9)
        second = np.stack([dynamics.step(rewards).counts for _ in range(5)])
        np.testing.assert_array_equal(first, second)

    def test_replicates_diverge(self):
        """Replicates share a generator but evolve independently."""
        env = BernoulliEnvironment([0.7, 0.5], rng=0)
        trajectory = simulate_batched_population(env, 1000, 20, 20, rng=1)
        final_counts = trajectory.final_state().counts
        assert len({tuple(row) for row in final_counts}) > 1


class TestExactSeedEquivalence:
    """With R=1 and identical seeds the batched engine is bit-identical."""

    def test_single_replicate_matches_sequential_run(self):
        env_sequential = BernoulliEnvironment([0.8, 0.5, 0.4], rng=7)
        env_batched = BernoulliEnvironment([0.8, 0.5, 0.4], rng=7)
        sequential = simulate_finite_population(
            env_sequential, 500, 60, beta=0.65, mu=0.05, rng=11
        )
        batched = simulate_batched_population(
            env_batched, 500, 60, 1, beta=0.65, mu=0.05, rng=11
        )
        np.testing.assert_array_equal(
            sequential.reward_matrix(), batched.reward_tensor()[:, 0, :]
        )
        np.testing.assert_array_equal(
            sequential.popularity_matrix(), batched.popularity_tensor()[:, 0, :]
        )
        for state_seq, state_batched in zip(sequential.states, batched.states):
            np.testing.assert_array_equal(state_seq.counts, state_batched.counts[0])

    def test_single_replicate_step_stream_matches(self):
        sequential = FinitePopulationDynamics(
            300,
            4,
            adoption_rule=SymmetricAdoptionRule(0.7),
            sampling_rule=MixtureSampling(0.1),
            rng=123,
        )
        batched = BatchedDynamics(
            1,
            300,
            4,
            adoption_rule=SymmetricAdoptionRule(0.7),
            sampling_rule=MixtureSampling(0.1),
            rng=123,
        )
        rng = np.random.default_rng(0)
        for _ in range(25):
            rewards = rng.integers(0, 2, size=4)
            state_seq = sequential.step(rewards)
            state_batched = batched.step(rewards[None, :])
            np.testing.assert_array_equal(state_seq.counts, state_batched.counts[0])

    def test_replicate_view_equals_sequential_trajectory(self):
        env_sequential = BernoulliEnvironment([0.9, 0.3], rng=5)
        env_batched = BernoulliEnvironment([0.9, 0.3], rng=5)
        sequential = simulate_finite_population(env_sequential, 200, 30, rng=6)
        batched = simulate_batched_population(env_batched, 200, 30, 1, rng=6)
        view = batched.replicate(0)
        assert view.horizon == sequential.horizon
        np.testing.assert_array_equal(
            view.popularity_matrix(), sequential.popularity_matrix()
        )
        np.testing.assert_array_equal(view.reward_matrix(), sequential.reward_matrix())


class TestBatchedTrajectoryMetrics:
    def _trajectory(self):
        env = BernoulliEnvironment([0.85, 0.45], rng=0)
        return simulate_batched_population(env, 800, 80, 12, beta=0.65, mu=0.05, rng=1)

    def test_expected_regret_matches_per_replicate_computation(self):
        from repro.core.regret import expected_regret

        trajectory = self._trajectory()
        batched_regret = trajectory.expected_regret([0.85, 0.45])
        assert batched_regret.shape == (12,)
        for index in range(12):
            view = trajectory.replicate(index)
            assert batched_regret[index] == pytest.approx(
                expected_regret(view.popularity_matrix(), [0.85, 0.45])
            )

    def test_empirical_regret_matches_per_replicate_computation(self):
        from repro.core.regret import empirical_regret

        trajectory = self._trajectory()
        batched_regret = trajectory.empirical_regret(0.85)
        for index in range(12):
            view = trajectory.replicate(index)
            assert batched_regret[index] == pytest.approx(
                empirical_regret(view.popularity_matrix(), view.reward_matrix(), 0.85)
            )

    def test_best_option_share_matches_per_replicate_computation(self):
        from repro.core.regret import best_option_share

        trajectory = self._trajectory()
        shares = trajectory.best_option_share(0)
        for index in range(12):
            view = trajectory.replicate(index)
            assert shares[index] == pytest.approx(
                best_option_share(view.popularity_matrix(), 0)
            )

    def test_entropy_series_shape(self):
        trajectory = self._trajectory()
        assert trajectory.entropy_series().shape == (80, 12)

    def test_metrics_require_recorded_steps(self):
        empty = BatchedTrajectory(initial_state=BatchedPopulationState.uniform(3, 10, 2))
        with pytest.raises(ValueError):
            empty.expected_regret([0.5, 0.5])
        with pytest.raises(ValueError):
            empty.empirical_regret(0.5)
        with pytest.raises(ValueError):
            empty.best_option_share(0)
        assert empty.popularity_tensor().shape == (0, 3, 2)
        assert empty.entropy_series().shape == (0, 3)

    def test_best_option_share_validates_index(self):
        trajectory = self._trajectory()
        with pytest.raises(ValueError):
            trajectory.best_option_share(5)

    def test_expected_regret_validates_qualities(self):
        """Same input guard as the scalar expected_regret."""
        trajectory = self._trajectory()
        with pytest.raises(ValueError):
            trajectory.expected_regret([1.5, 0.4])


class TestEnvironmentSampleBatch:
    def test_bernoulli_batch_shape_and_frequencies(self):
        env = BernoulliEnvironment([0.9, 0.1], rng=0)
        rewards = env.sample_batch(4000)
        assert rewards.shape == (4000, 2)
        assert env.time == 1
        assert rewards[:, 0].mean() == pytest.approx(0.9, abs=0.03)
        assert rewards[:, 1].mean() == pytest.approx(0.1, abs=0.03)

    def test_bernoulli_batch_of_one_matches_sample_stream(self):
        env_scalar = BernoulliEnvironment([0.6, 0.4, 0.7], rng=13)
        env_batch = BernoulliEnvironment([0.6, 0.4, 0.7], rng=13)
        for _ in range(20):
            np.testing.assert_array_equal(
                env_scalar.sample(), env_batch.sample_batch(1)[0]
            )

    def test_piecewise_drift_batch_uses_current_phase(self):
        env = PiecewiseConstantDriftEnvironment(
            phases=[[1.0, 0.0], [0.0, 1.0]], phase_length=2, rng=0
        )
        first = env.sample_batch(50)
        np.testing.assert_array_equal(first, np.tile([1, 0], (50, 1)))
        env.sample_batch(50)
        third = env.sample_batch(50)
        np.testing.assert_array_equal(third, np.tile([0, 1], (50, 1)))

    def test_random_walk_batch_advances_walk_once(self):
        env = RandomWalkDriftEnvironment([0.5, 0.5], step_scale=0.05, rng=0)
        before = env.qualities
        env.sample_batch(100)
        after = env.qualities
        assert not np.allclose(before, after)
        assert env.time == 1

    def test_exactly_one_good_batch_rows_one_hot(self):
        env = ExactlyOneGoodEnvironment([0.5, 0.3, 0.2], rng=0)
        rewards = env.sample_batch(500)
        np.testing.assert_array_equal(rewards.sum(axis=1), 1)
        assert rewards[:, 0].mean() == pytest.approx(0.5, abs=0.08)

    def test_correlated_batch_respects_marginals(self):
        env = CorrelatedOptionsEnvironment([0.7, 0.3], correlation=0.6, rng=0)
        rewards = env.sample_batch(4000)
        assert rewards[:, 0].mean() == pytest.approx(0.7, abs=0.04)
        assert rewards[:, 1].mean() == pytest.approx(0.3, abs=0.04)

    def test_continuous_batch_records_per_replicate_raw_rewards(self):
        from repro.environments import ContinuousRewardEnvironment

        env = ContinuousRewardEnvironment.gaussian([1.0, -1.0], rng=0)
        rewards = env.sample_batch(30)
        assert rewards.shape == (30, 2)
        assert env.last_raw_rewards.shape == (30, 2)
        np.testing.assert_array_equal(
            rewards, (env.last_raw_rewards > env.threshold).astype(np.int8)
        )

    def test_recorded_sequence_batch_broadcasts_row(self):
        matrix = np.array([[1, 0], [0, 1], [1, 1]], dtype=np.int8)
        env = RecordedRewardSequence(matrix)
        first = env.sample_batch(7)
        np.testing.assert_array_equal(first, np.tile([1, 0], (7, 1)))
        second = env.sample_batch(7)
        np.testing.assert_array_equal(second, np.tile([0, 1], (7, 1)))

    def test_sample_batch_rejects_bad_count(self):
        env = BernoulliEnvironment([0.5], rng=0)
        with pytest.raises(ValueError):
            env.sample_batch(0)


class TestSamplingBatch:
    def test_mixture_batch_matches_rowwise_scalar(self):
        rule = MixtureSampling(0.2)
        rng = np.random.default_rng(0)
        raw = rng.random((6, 4))
        popularities = raw / raw.sum(axis=1, keepdims=True)
        batch = rule.consideration_probabilities_batch(popularities)
        for index in range(6):
            np.testing.assert_array_equal(
                batch[index], rule.consideration_probabilities(popularities[index])
            )

    def test_uniform_sampling_batch_is_uniform(self):
        rule = UniformSampling()
        popularities = np.array([[0.9, 0.1], [0.2, 0.8]])
        np.testing.assert_allclose(
            rule.consideration_probabilities_batch(popularities), 0.5
        )

    def test_batch_rejects_1d_input(self):
        rule = MixtureSampling(0.2)
        with pytest.raises(ValueError):
            rule.consideration_probabilities_batch(np.array([0.5, 0.5]))

    def test_batch_rejects_non_distribution_rows(self):
        rule = MixtureSampling(0.2)
        with pytest.raises(ValueError):
            rule.consideration_probabilities_batch(np.array([[0.9, 0.5]]))

    def test_base_class_default_applies_scalar_rule_rowwise(self):
        from repro.core.sampling import SamplingRule

        class ReverseSampling(SamplingRule):
            """Toy rule: consider options with reversed popularity."""

            @property
            def exploration_rate(self):
                return 0.0

            def consideration_probabilities(self, popularity):
                return np.asarray(popularity)[::-1].copy()

        rule = ReverseSampling()
        popularities = np.array([[0.7, 0.3], [0.1, 0.9]])
        batch = rule.consideration_probabilities_batch(popularities)
        np.testing.assert_allclose(batch, [[0.3, 0.7], [0.9, 0.1]])
        with pytest.raises(ValueError):
            rule.consideration_probabilities_batch(np.array([0.5, 0.5]))


class TestRowwiseAdoptionRule:
    def test_symmetric_classmethod(self):
        from repro.core.adoption import RowwiseAdoptionRule

        rule = RowwiseAdoptionRule.symmetric(np.array([0.6, 0.8]))
        np.testing.assert_allclose(rule.alpha, [0.4, 0.2])
        np.testing.assert_allclose(rule.beta, [0.6, 0.8])
        assert rule.num_rows == 2
        assert rule.is_informative()

    def test_symmetric_rejects_below_half(self):
        from repro.core.adoption import RowwiseAdoptionRule

        with pytest.raises(ValueError):
            RowwiseAdoptionRule.symmetric(np.array([0.6, 0.4]))

    def test_rejects_alpha_above_beta(self):
        from repro.core.adoption import RowwiseAdoptionRule

        with pytest.raises(ValueError, match="row 1"):
            RowwiseAdoptionRule(np.array([0.2, 0.9]), np.array([0.6, 0.7]))

    def test_rejects_out_of_range(self):
        from repro.core.adoption import RowwiseAdoptionRule

        with pytest.raises(ValueError):
            RowwiseAdoptionRule(np.array([-0.1]), np.array([0.5]))
        with pytest.raises(ValueError):
            RowwiseAdoptionRule(np.array([0.5]), np.array([1.1]))

    def test_delta_per_row_with_infinite_rows(self):
        from repro.core.adoption import RowwiseAdoptionRule

        rule = RowwiseAdoptionRule(np.array([0.0, 0.3]), np.array([0.5, 0.6]))
        delta = rule.delta
        assert np.isinf(delta[0])
        assert delta[1] == pytest.approx(np.log(2.0))

    def test_shared_signal_vector_broadcasts(self):
        from repro.core.adoption import RowwiseAdoptionRule

        rule = RowwiseAdoptionRule(np.array([0.3, 0.2]), np.array([0.6, 0.9]))
        probabilities = rule.adopt_probabilities(np.array([1, 0]))
        np.testing.assert_allclose(probabilities, [[0.6, 0.3], [0.9, 0.2]])

    def test_row_view_and_scalar_signal(self):
        from repro.core.adoption import RowwiseAdoptionRule

        rule = RowwiseAdoptionRule(np.array([0.3, 0.2]), np.array([0.6, 0.9]))
        scalar = rule.row(1)
        assert isinstance(scalar, GeneralAdoptionRule)
        assert scalar.alpha == pytest.approx(0.2)
        np.testing.assert_allclose(rule.adopt_probability(1), [0.6, 0.9])
        with pytest.raises(IndexError):
            rule.row(2)
        with pytest.raises(ValueError):
            rule.adopt_probability(2)

    def test_equality_and_scalar_rules_never_equal(self):
        from repro.core.adoption import RowwiseAdoptionRule

        rowwise = RowwiseAdoptionRule.symmetric(np.array([0.6, 0.6]))
        assert rowwise == RowwiseAdoptionRule.symmetric(np.array([0.6, 0.6]))
        assert rowwise != RowwiseAdoptionRule.symmetric(np.array([0.6, 0.7]))
        assert rowwise != SymmetricAdoptionRule(0.6)
        assert SymmetricAdoptionRule(0.6) != rowwise


class TestPerRowPopulationSizes:
    def test_stack_heterogeneous_states(self):
        states = [PopulationState.uniform(60, 3), PopulationState.uniform(90, 3)]
        batched = BatchedPopulationState.stack(states)
        assert batched.num_replicates == 2
        np.testing.assert_array_equal(batched.population_sizes, [60, 90])
        np.testing.assert_array_equal(batched.counts[0], states[0].counts)
        np.testing.assert_array_equal(batched.counts[1], states[1].counts)

    def test_stack_collapses_equal_sizes_to_int(self):
        states = [PopulationState.uniform(60, 3), PopulationState.uniform(60, 3)]
        batched = BatchedPopulationState.stack(states)
        assert isinstance(batched.population_size, int)
        np.testing.assert_array_equal(batched.population_sizes, [60, 60])

    def test_stack_rejects_mixed_options_or_times(self):
        with pytest.raises(ValueError):
            BatchedPopulationState.stack(
                [PopulationState.uniform(60, 3), PopulationState.uniform(60, 2)]
            )
        with pytest.raises(ValueError):
            BatchedPopulationState.stack(
                [PopulationState.uniform(60, 3), PopulationState.uniform(60, 3, time=1)]
            )
        with pytest.raises(ValueError):
            BatchedPopulationState.stack([])

    def test_per_row_bound_enforced(self):
        with pytest.raises(ValueError, match="replicate 1"):
            BatchedPopulationState(
                counts=np.array([[10, 10], [40, 40]]),
                population_size=np.array([50, 60]),
            )

    def test_replicate_view_carries_its_own_size(self):
        batched = BatchedPopulationState(
            counts=np.array([[10, 10], [40, 40]]),
            population_size=np.array([50, 100]),
        )
        assert batched.replicate(0).population_size == 50
        assert batched.replicate(1).population_size == 100

    def test_dynamics_defaults_to_per_row_uniform_start(self):
        dynamics = BatchedDynamics(2, np.array([60, 90]), 3, rng=0)
        np.testing.assert_array_equal(
            dynamics.state.counts[0], PopulationState.uniform(60, 3).counts
        )
        np.testing.assert_array_equal(
            dynamics.state.counts[1], PopulationState.uniform(90, 3).counts
        )

    def test_dynamics_step_respects_per_row_sizes(self):
        sizes = np.array([40, 4000])
        dynamics = BatchedDynamics(2, sizes, 2, rng=1)
        state = dynamics.step(np.array([[1, 0], [1, 0]]))
        assert state.counts[0].sum() <= 40
        assert state.counts[1].sum() <= 4000
        # The large row cannot have been truncated to the small row's size.
        assert state.counts[1].sum() > 40

    def test_simulate_helper_accepts_arrays(self):
        env = BernoulliEnvironment([0.8, 0.5], rng=0)
        trajectory = simulate_batched_population(
            env, np.array([50, 80, 110]), 5, 3,
            beta=np.array([0.6, 0.7, 0.8]), mu=np.array([0.05, 0.1, 0.2]),
            alpha=np.array([0.3, 0.2, 0.1]), rng=2,
        )
        final = trajectory.final_state()
        np.testing.assert_array_equal(final.population_sizes, [50, 80, 110])
        assert np.all(final.counts.sum(axis=1) <= [50, 80, 110])


class TestPerRowTrajectoryMetrics:
    def _trajectory(self):
        generator = np.random.default_rng(3)
        from repro.environments import RowwiseBernoulliEnvironment

        qualities = np.array([[0.9, 0.2], [0.3, 0.8]])
        env = RowwiseBernoulliEnvironment(qualities, rng=generator)
        trajectory = simulate_batched_population(
            env, 200, 12, 2, beta=0.65, mu=0.1, rng=generator
        )
        return trajectory, qualities

    def test_expected_regret_per_row_qualities(self):
        trajectory, qualities = self._trajectory()
        per_row = trajectory.expected_regret(qualities)
        assert per_row.shape == (2,)
        # Row r's regret against its own qualities equals the shared-vector
        # computation restricted to that row.
        for row in range(2):
            shared = trajectory.expected_regret(qualities[row])
            assert per_row[row] == pytest.approx(shared[row])

    def test_expected_regret_rejects_bad_shapes(self):
        trajectory, _ = self._trajectory()
        with pytest.raises(ValueError):
            trajectory.expected_regret(np.full((3, 2), 0.5))
        with pytest.raises(ValueError):
            trajectory.expected_regret(np.full((2, 2), 1.5))

    def test_best_option_share_per_row_indices(self):
        trajectory, qualities = self._trajectory()
        per_row = trajectory.best_option_share(qualities.argmax(axis=1))
        assert per_row.shape == (2,)
        assert per_row[0] == pytest.approx(trajectory.best_option_share(0)[0])
        assert per_row[1] == pytest.approx(trajectory.best_option_share(1)[1])

    def test_best_option_share_rejects_bad_indices(self):
        trajectory, _ = self._trajectory()
        with pytest.raises(ValueError):
            trajectory.best_option_share(np.array([0, 5]))
        with pytest.raises(ValueError):
            trajectory.best_option_share(np.array([0, 1, 0]))
        with pytest.raises(ValueError):
            trajectory.best_option_share(np.array([0.5, 1.0]))

    def test_empirical_regret_per_row_best_quality(self):
        trajectory, qualities = self._trajectory()
        per_row = trajectory.empirical_regret(qualities.max(axis=1))
        shared = trajectory.empirical_regret(float(qualities[0].max()))
        assert per_row.shape == (2,)
        assert per_row[0] == pytest.approx(shared[0])
        with pytest.raises(ValueError):
            trajectory.empirical_regret(np.array([0.9, 0.8, 0.7]))


class TestPerRowNaNRejection:
    """Per-row parameter paths must reject NaN as loudly as the scalar paths."""

    def test_rowwise_rule_rejects_nan(self):
        from repro.core.adoption import RowwiseAdoptionRule

        with pytest.raises(ValueError, match="finite"):
            RowwiseAdoptionRule(np.array([np.nan]), np.array([0.6]))
        with pytest.raises(ValueError, match="finite"):
            RowwiseAdoptionRule(np.array([0.3]), np.array([np.nan]))

    def test_rowwise_mu_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            MixtureSampling(np.array([np.nan, 0.1]))

    def test_rowwise_environment_rejects_nan(self):
        from repro.environments import RowwiseBernoulliEnvironment

        with pytest.raises(ValueError, match="finite"):
            RowwiseBernoulliEnvironment(np.array([[0.5, np.nan]]))

    def test_per_row_regret_rejects_nan_qualities(self):
        env = BernoulliEnvironment([0.8, 0.5], rng=0)
        trajectory = simulate_batched_population(env, 100, 5, 2, rng=1)
        with pytest.raises(ValueError, match="finite"):
            trajectory.expected_regret(np.array([[0.8, np.nan], [0.8, 0.5]]))
