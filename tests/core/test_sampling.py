"""Tests for sampling rules."""

import numpy as np
import pytest

from repro.core.sampling import MixtureSampling, PopularityOnlySampling, UniformSampling


class TestMixtureSampling:
    def test_formula_matches_equation_two(self):
        rule = MixtureSampling(0.1)
        popularity = np.array([0.5, 0.3, 0.2])
        expected = 0.9 * popularity + 0.1 / 3
        np.testing.assert_allclose(
            rule.consideration_probabilities(popularity), expected
        )

    def test_output_is_probability_vector(self):
        rule = MixtureSampling(0.25)
        probabilities = rule.consideration_probabilities(np.array([0.7, 0.2, 0.1]))
        assert probabilities.sum() == pytest.approx(1.0)
        assert np.all(probabilities >= 0)

    def test_floor_is_mu_over_m(self):
        rule = MixtureSampling(0.2)
        probabilities = rule.consideration_probabilities(np.array([1.0, 0.0, 0.0, 0.0]))
        assert probabilities.min() == pytest.approx(0.05)
        assert rule.minimum_consideration_probability(4) == pytest.approx(0.05)

    def test_exploration_rate_property(self):
        assert MixtureSampling(0.07).exploration_rate == pytest.approx(0.07)

    def test_rejects_invalid_mu(self):
        with pytest.raises(ValueError):
            MixtureSampling(1.5)

    def test_rejects_non_probability_popularity(self):
        rule = MixtureSampling(0.1)
        with pytest.raises(ValueError):
            rule.consideration_probabilities(np.array([0.7, 0.7]))

    def test_equality_and_hash(self):
        assert MixtureSampling(0.1) == MixtureSampling(0.1)
        assert MixtureSampling(0.1) != MixtureSampling(0.2)
        assert hash(MixtureSampling(0.1)) == hash(MixtureSampling(0.1))


class TestEndpoints:
    def test_uniform_sampling_ignores_popularity(self):
        rule = UniformSampling()
        probabilities = rule.consideration_probabilities(np.array([0.9, 0.1]))
        np.testing.assert_allclose(probabilities, [0.5, 0.5])

    def test_popularity_only_reproduces_popularity(self):
        rule = PopularityOnlySampling()
        popularity = np.array([0.6, 0.4])
        np.testing.assert_allclose(
            rule.consideration_probabilities(popularity), popularity
        )

    def test_popularity_only_keeps_zero_mass_at_zero(self):
        rule = PopularityOnlySampling()
        probabilities = rule.consideration_probabilities(np.array([1.0, 0.0]))
        assert probabilities[1] == 0.0
