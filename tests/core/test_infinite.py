"""Tests for the infinite-population stochastic MWU dynamics."""

import numpy as np
import pytest

from repro.core.adoption import GeneralAdoptionRule, SymmetricAdoptionRule
from repro.core.infinite import InfinitePopulationDynamics, simulate_infinite_population
from repro.core.sampling import MixtureSampling
from repro.environments import BernoulliEnvironment


def reference_weight_update(weights, rewards, mu, beta, alpha):
    """Direct transcription of Eq. (1) on raw (unnormalised) weights."""
    weights = np.asarray(weights, dtype=float)
    mixed = (1 - mu) * weights + (mu / weights.size) * weights.sum()
    multipliers = np.where(np.asarray(rewards) == 1, beta, alpha)
    return mixed * multipliers


class TestStep:
    def test_matches_raw_equation_one(self):
        """The normalised implementation tracks Eq. (1) exactly."""
        mu, beta = 0.1, 0.65
        dynamics = InfinitePopulationDynamics(
            3,
            adoption_rule=SymmetricAdoptionRule(beta),
            sampling_rule=MixtureSampling(mu),
        )
        raw_weights = np.ones(3)
        rng = np.random.default_rng(0)
        for _ in range(20):
            rewards = rng.integers(0, 2, size=3)
            raw_weights = reference_weight_update(raw_weights, rewards, mu, beta, 1 - beta)
            distribution = dynamics.step(rewards)
            np.testing.assert_allclose(
                distribution, raw_weights / raw_weights.sum(), rtol=1e-10
            )

    def test_log_potential_matches_raw_weights(self):
        mu, beta = 0.05, 0.6
        dynamics = InfinitePopulationDynamics(
            2,
            adoption_rule=SymmetricAdoptionRule(beta),
            sampling_rule=MixtureSampling(mu),
        )
        raw_weights = np.ones(2)
        rng = np.random.default_rng(1)
        for _ in range(15):
            rewards = rng.integers(0, 2, size=2)
            raw_weights = reference_weight_update(raw_weights, rewards, mu, beta, 1 - beta)
            dynamics.step(rewards)
        assert dynamics.log_potential == pytest.approx(np.log(raw_weights.sum()))

    def test_distribution_stays_normalised(self):
        dynamics = InfinitePopulationDynamics(5)
        rng = np.random.default_rng(2)
        for _ in range(100):
            dynamics.step(rng.integers(0, 2, size=5))
            assert dynamics.distribution.sum() == pytest.approx(1.0)
            assert np.all(dynamics.distribution >= 0)

    def test_numerically_stable_over_long_horizon(self):
        """Raw weights would underflow after ~1500 steps; normalised form must not."""
        dynamics = InfinitePopulationDynamics(3)
        rng = np.random.default_rng(3)
        for _ in range(5000):
            dynamics.step(rng.integers(0, 2, size=3))
        assert np.all(np.isfinite(dynamics.distribution))
        assert dynamics.distribution.sum() == pytest.approx(1.0)

    def test_exploration_floor_keeps_all_options_alive(self):
        mu = 0.1
        dynamics = InfinitePopulationDynamics(
            4, sampling_rule=MixtureSampling(mu), adoption_rule=SymmetricAdoptionRule(0.6)
        )
        # Option 0 always good, the rest always bad: worst case for options 1-3.
        for _ in range(200):
            dynamics.step(np.array([1, 0, 0, 0]))
        floor = mu * (1 - 0.6) / (4 * 4)  # occupancy floor zeta from the paper
        assert np.all(dynamics.distribution[1:] >= floor * 0.9)

    def test_alpha_zero_all_bad_signals_restarts_from_mixture(self):
        dynamics = InfinitePopulationDynamics(
            2,
            adoption_rule=GeneralAdoptionRule(alpha=0.0, beta=1.0),
            sampling_rule=MixtureSampling(0.2),
        )
        distribution = dynamics.step(np.array([0, 0]))
        assert distribution.sum() == pytest.approx(1.0)

    def test_rejects_bad_rewards(self):
        dynamics = InfinitePopulationDynamics(2)
        with pytest.raises(ValueError):
            dynamics.step(np.array([1, 2]))
        with pytest.raises(ValueError):
            dynamics.step(np.array([1, 0, 1]))

    def test_reset(self):
        dynamics = InfinitePopulationDynamics(3)
        dynamics.step(np.array([1, 0, 0]))
        dynamics.reset()
        np.testing.assert_allclose(dynamics.distribution, 1.0 / 3)
        assert dynamics.time == 0

    def test_reset_with_new_distribution(self):
        dynamics = InfinitePopulationDynamics(2)
        dynamics.reset([0.9, 0.1])
        np.testing.assert_allclose(dynamics.distribution, [0.9, 0.1])

    def test_custom_initial_distribution(self):
        dynamics = InfinitePopulationDynamics(2, initial_distribution=[0.3, 0.7])
        np.testing.assert_allclose(dynamics.distribution, [0.3, 0.7])

    def test_rejects_wrong_length_initial_distribution(self):
        with pytest.raises(ValueError):
            InfinitePopulationDynamics(3, initial_distribution=[0.5, 0.5])


class TestRun:
    def test_run_shapes(self):
        env = BernoulliEnvironment([0.8, 0.4], rng=0)
        trajectory = simulate_infinite_population(env, 60, beta=0.6)
        assert trajectory.horizon == 60
        assert trajectory.distribution_matrix().shape == (60, 2)
        assert trajectory.reward_matrix().shape == (60, 2)
        assert len(trajectory.log_potentials) == 60

    def test_best_option_probability_grows(self):
        env = BernoulliEnvironment([0.9, 0.3], rng=1)
        trajectory = simulate_infinite_population(env, 300, beta=0.65)
        series = trajectory.best_option_series(0)
        assert series[-1] > 0.8
        assert series[-1] > series[0]

    def test_final_distribution_matches_last_entry(self):
        env = BernoulliEnvironment([0.7, 0.5], rng=2)
        trajectory = simulate_infinite_population(env, 10, beta=0.6)
        np.testing.assert_allclose(
            trajectory.final_distribution(), trajectory.distributions[-1]
        )

    def test_run_on_rewards_validates_shape(self):
        dynamics = InfinitePopulationDynamics(2)
        with pytest.raises(ValueError):
            dynamics.run_on_rewards(np.zeros((5, 3), dtype=int))

    def test_run_rejects_mismatched_environment(self):
        env = BernoulliEnvironment([0.7, 0.5, 0.2], rng=2)
        dynamics = InfinitePopulationDynamics(2)
        with pytest.raises(ValueError):
            dynamics.run(env, 5)

    def test_empty_trajectory_matrices(self):
        from repro.core.infinite import InfiniteTrajectory

        trajectory = InfiniteTrajectory(initial_distribution=np.array([0.5, 0.5]))
        assert trajectory.distribution_matrix().shape == (0, 2)
        assert trajectory.reward_matrix().shape == (0, 2)
        assert trajectory.best_option_series(0).shape == (0,)
        np.testing.assert_allclose(trajectory.final_distribution(), [0.5, 0.5])
