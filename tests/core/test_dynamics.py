"""Tests for the finite-population dynamics (vectorised and agent-based)."""

import numpy as np
import pytest

from repro.agents import Population
from repro.core.adoption import AlwaysAdoptRule, GeneralAdoptionRule, SymmetricAdoptionRule
from repro.core.dynamics import (
    AgentBasedDynamics,
    FinitePopulationDynamics,
    simulate_finite_population,
)
from repro.core.sampling import MixtureSampling, PopularityOnlySampling
from repro.core.state import PopulationState
from repro.environments import BernoulliEnvironment


class TestFinitePopulationDynamics:
    def test_initial_state_is_uniform(self):
        dynamics = FinitePopulationDynamics(100, 4, rng=0)
        np.testing.assert_allclose(dynamics.popularity(), 0.25)

    def test_step_preserves_population_size(self):
        dynamics = FinitePopulationDynamics(200, 3, rng=0)
        state = dynamics.step(np.array([1, 0, 1]))
        assert state.counts.sum() <= 200
        assert state.population_size == 200

    def test_step_advances_time(self):
        dynamics = FinitePopulationDynamics(50, 2, rng=0)
        dynamics.step(np.array([1, 0]))
        dynamics.step(np.array([0, 1]))
        assert dynamics.state.time == 2

    def test_rewards_shape_validated(self):
        dynamics = FinitePopulationDynamics(50, 2, rng=0)
        with pytest.raises(ValueError):
            dynamics.step(np.array([1, 0, 1]))

    def test_rewards_binary_validated(self):
        dynamics = FinitePopulationDynamics(50, 2, rng=0)
        with pytest.raises(ValueError):
            dynamics.step(np.array([0.5, 0.5]))

    def test_always_adopt_commits_everyone(self):
        dynamics = FinitePopulationDynamics(
            100, 3, adoption_rule=AlwaysAdoptRule(), rng=0
        )
        state = dynamics.step(np.array([0, 0, 0]))
        assert state.counts.sum() == 100

    def test_never_adopt_on_bad_signals_empties_population(self):
        dynamics = FinitePopulationDynamics(
            100, 3, adoption_rule=GeneralAdoptionRule(alpha=0.0, beta=1.0), rng=0
        )
        state = dynamics.step(np.array([0, 0, 0]))
        assert state.counts.sum() == 0
        # Uniform fallback keeps the process alive on the next step.
        np.testing.assert_allclose(state.popularity(), 1.0 / 3)

    def test_expected_adopters_match_stage_probabilities(self):
        """Monte-Carlo check of E[D^{t+1}_j] = ((1-mu)Q + mu/m) N beta^R (1-beta)^(1-R)."""
        population = 1000
        mu = 0.1
        beta = 0.7
        rewards = np.array([1, 0])
        replications = 400
        totals = np.zeros(2)
        for seed in range(replications):
            dynamics = FinitePopulationDynamics(
                population,
                2,
                adoption_rule=SymmetricAdoptionRule(beta),
                sampling_rule=MixtureSampling(mu),
                initial_state=PopulationState.from_counts([750, 250], population),
                rng=seed,
            )
            totals += dynamics.step(rewards).counts
        observed = totals / replications
        popularity = np.array([0.75, 0.25])
        consideration = (1 - mu) * popularity + mu / 2
        expected = consideration * population * np.array([beta, 1 - beta])
        np.testing.assert_allclose(observed, expected, rtol=0.05)

    def test_reset_restores_initial_state(self):
        dynamics = FinitePopulationDynamics(60, 3, rng=0)
        dynamics.step(np.array([1, 0, 0]))
        dynamics.reset()
        assert dynamics.state.time == 0
        np.testing.assert_allclose(dynamics.popularity(), 1.0 / 3)

    def test_reset_without_rng_keeps_advanced_generator(self):
        """reset() rewinds only the state: the next run draws fresh randomness."""
        env_rewards = np.ones(3, dtype=np.int8)
        dynamics = FinitePopulationDynamics(500, 3, rng=42)
        first = np.stack([dynamics.step(env_rewards).counts for _ in range(5)])
        dynamics.reset()
        second = np.stack([dynamics.step(env_rewards).counts for _ in range(5)])
        assert dynamics.state.time == 5
        assert not np.array_equal(first, second)

    def test_reset_with_original_seed_reproduces_run(self):
        """reset(rng=seed) replays the run bit-for-bit from the original seed."""
        env_rewards = np.ones(3, dtype=np.int8)
        dynamics = FinitePopulationDynamics(500, 3, rng=42)
        first = np.stack([dynamics.step(env_rewards).counts for _ in range(5)])
        dynamics.reset(rng=42)
        second = np.stack([dynamics.step(env_rewards).counts for _ in range(5)])
        np.testing.assert_array_equal(first, second)

    def test_run_records_trajectory(self):
        env = BernoulliEnvironment([0.8, 0.4], rng=1)
        dynamics = FinitePopulationDynamics(500, 2, rng=2)
        trajectory = dynamics.run(env, 50)
        assert trajectory.horizon == 50
        assert trajectory.popularity_matrix().shape == (50, 2)

    def test_run_rejects_mismatched_environment(self):
        env = BernoulliEnvironment([0.8, 0.4, 0.3], rng=1)
        dynamics = FinitePopulationDynamics(100, 2, rng=2)
        with pytest.raises(ValueError):
            dynamics.run(env, 10)

    def test_initial_state_validation(self):
        wrong_options = PopulationState.uniform(100, 3)
        with pytest.raises(ValueError):
            FinitePopulationDynamics(100, 2, initial_state=wrong_options)
        wrong_population = PopulationState.uniform(50, 2)
        with pytest.raises(ValueError):
            FinitePopulationDynamics(100, 2, initial_state=wrong_population)

    def test_default_mu_respects_theorem_cap(self):
        dynamics = FinitePopulationDynamics(
            100, 2, adoption_rule=SymmetricAdoptionRule(0.6)
        )
        delta = SymmetricAdoptionRule(0.6).delta
        assert dynamics.sampling_rule.exploration_rate == pytest.approx(delta**2 / 6)

    def test_best_option_dominates_with_clear_gap(self):
        env = BernoulliEnvironment([0.9, 0.2], rng=3)
        trajectory = simulate_finite_population(
            env, population_size=3000, horizon=300, beta=0.65, rng=4
        )
        final_share = trajectory.popularity_matrix()[-50:, 0].mean()
        assert final_share > 0.8

    def test_popularity_only_sampling_can_lose_options(self):
        """Without exploration (mu = 0) an option that empties never recovers."""
        dynamics = FinitePopulationDynamics(
            50,
            2,
            adoption_rule=AlwaysAdoptRule(),
            sampling_rule=PopularityOnlySampling(),
            initial_state=PopulationState.from_counts([50, 0]),
            rng=0,
        )
        for _ in range(20):
            state = dynamics.step(np.array([0, 1]))
        assert state.counts[1] == 0


class TestAgentBasedDynamics:
    def test_step_updates_all_agents(self):
        population = Population.homogeneous(30, 3, beta=0.6, rng=0)
        dynamics = AgentBasedDynamics(population, exploration_rate=0.1, rng=1)
        state = dynamics.step(np.array([1, 0, 1]))
        assert state.population_size == 30
        assert dynamics.time == 1

    def test_run_produces_trajectory(self):
        population = Population.homogeneous(40, 2, beta=0.6, rng=0)
        dynamics = AgentBasedDynamics(population, exploration_rate=0.05, rng=1)
        env = BernoulliEnvironment([0.8, 0.3], rng=2)
        trajectory = dynamics.run(env, 30)
        assert trajectory.horizon == 30

    def test_heterogeneous_population_supported(self):
        population = Population.with_beta_distribution(30, 2, rng=0)
        dynamics = AgentBasedDynamics(population, rng=1)
        state = dynamics.step(np.array([1, 0]))
        assert state.num_options == 2

    def test_custom_companion_selector_used(self):
        population = Population.homogeneous(20, 2, beta=0.6, rng=0)
        calls = []

        def selector(agent_id, pop, rng):
            calls.append(agent_id)
            return 0

        dynamics = AgentBasedDynamics(
            population, exploration_rate=0.0, companion_selector=selector, rng=1
        )
        dynamics.step(np.array([1, 1]))
        assert len(calls) == 20

    def test_fallback_to_uniform_when_nobody_committed(self):
        population = Population.homogeneous(20, 2, beta=0.6, seed_options=False, rng=0)
        dynamics = AgentBasedDynamics(population, exploration_rate=0.0, rng=1)
        state = dynamics.step(np.array([1, 1]))
        # With beta=0.6 and all-good signals most agents should commit.
        assert state.committed > 0

    def test_rejects_invalid_rewards(self):
        population = Population.homogeneous(10, 2, beta=0.6, rng=0)
        dynamics = AgentBasedDynamics(population, rng=1)
        with pytest.raises(ValueError):
            dynamics.step(np.array([1, 2]))

    def test_rejects_non_population(self):
        with pytest.raises(TypeError):
            AgentBasedDynamics("population")

    def test_rejects_invalid_exploration_rate(self):
        population = Population.homogeneous(10, 2, beta=0.6, rng=0)
        with pytest.raises(ValueError):
            AgentBasedDynamics(population, exploration_rate=1.5)

    def test_best_option_gains_share(self):
        population = Population.homogeneous(300, 2, beta=0.7, rng=0)
        dynamics = AgentBasedDynamics(population, exploration_rate=0.05, rng=1)
        env = BernoulliEnvironment([0.9, 0.2], rng=2)
        trajectory = dynamics.run(env, 150)
        assert trajectory.popularity_matrix()[-30:, 0].mean() > 0.7


class TestSimulateHelper:
    def test_returns_trajectory_of_requested_horizon(self):
        env = BernoulliEnvironment([0.7, 0.4], rng=0)
        trajectory = simulate_finite_population(env, 200, 40, beta=0.6, rng=1)
        assert trajectory.horizon == 40

    def test_explicit_mu_honoured(self):
        env = BernoulliEnvironment([0.7, 0.4], rng=0)
        trajectory = simulate_finite_population(env, 100, 5, beta=0.6, mu=0.5, rng=1)
        assert trajectory.horizon == 5
