"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adoption import SymmetricAdoptionRule
from repro.core.sampling import MixtureSampling
from repro.environments import BernoulliEnvironment


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_environment() -> BernoulliEnvironment:
    """Three options with a clear best (gap 0.3), deterministic seed."""
    return BernoulliEnvironment([0.8, 0.5, 0.5], rng=7)


@pytest.fixture
def two_option_environment() -> BernoulliEnvironment:
    """Two options with a large gap, deterministic seed."""
    return BernoulliEnvironment([0.9, 0.4], rng=11)


@pytest.fixture
def adoption_rule() -> SymmetricAdoptionRule:
    """The paper's default symmetric adoption rule with beta = 0.6."""
    return SymmetricAdoptionRule(0.6)


@pytest.fixture
def sampling_rule() -> MixtureSampling:
    """Mixture sampling with a small exploration rate."""
    return MixtureSampling(0.02)
