"""Tests for the array-namespace seam (repro.backends)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    BACKENDS,
    DEFAULT_BACKEND_NAME,
    DEFAULT_PRECISION,
    PRECISIONS,
    ArrayBackend,
    BackendUnavailableError,
    NumpyBackend,
    Precision,
    available_backends,
    get_namespace,
    resolve_precision,
)
from repro.backends.cupy_backend import HAS_CUPY
from repro.backends.torch_backend import HAS_TORCH
from repro.utils.rng import ensure_rng


class TestPrecision:
    def test_none_resolves_to_the_default(self):
        assert resolve_precision(None) is DEFAULT_PRECISION
        assert DEFAULT_PRECISION.is_default
        assert DEFAULT_PRECISION.float_dtype == np.float64
        assert DEFAULT_PRECISION.int_dtype == np.int64

    def test_float32_resolves_to_half_width_storage(self):
        precision = resolve_precision("float32")
        assert not precision.is_default
        assert precision.float_dtype == np.float32
        assert precision.int_dtype == np.int32

    def test_precision_instances_pass_through(self):
        precision = PRECISIONS["float32"]
        assert resolve_precision(precision) is precision

    def test_unknown_name_rejected_with_the_alternatives(self):
        with pytest.raises(ValueError, match="float16.*expected one of"):
            resolve_precision("float16")

    def test_non_precision_type_rejected(self):
        with pytest.raises(TypeError, match="int"):
            resolve_precision(32)

    def test_check_count_value_guards_the_int32_limit(self):
        precision = resolve_precision("float32")
        limit = np.iinfo(np.int32).max
        assert precision.check_count_value(limit, "network size") == limit
        with pytest.raises(OverflowError, match="network size.*int32"):
            precision.check_count_value(limit + 1, "network size")

    def test_default_precision_counts_past_int32(self):
        value = int(np.iinfo(np.int32).max) + 1
        assert DEFAULT_PRECISION.check_count_value(value, "N") == value


class TestRegistry:
    def test_none_and_numpy_share_one_cached_backend(self):
        default = get_namespace(None)
        named = get_namespace("numpy")
        assert default is named
        assert isinstance(default, NumpyBackend)
        assert default.name == DEFAULT_BACKEND_NAME

    def test_backend_instances_pass_through(self):
        backend = get_namespace("numpy")
        assert get_namespace(backend) is backend

    def test_unknown_name_rejected_with_the_alternatives(self):
        with pytest.raises(ValueError, match="metal.*numpy, cupy, torch"):
            get_namespace("metal")

    def test_non_backend_type_rejected(self):
        with pytest.raises(TypeError, match="int"):
            get_namespace(7)

    def test_numpy_is_always_available(self):
        names = available_backends()
        assert "numpy" in names
        assert set(names) <= set(BACKENDS)

    @pytest.mark.parametrize(
        "name, installed",
        [("cupy", HAS_CUPY), ("torch", HAS_TORCH)],
    )
    def test_optional_backends_raise_when_not_installed(self, name, installed):
        if installed:
            backend = get_namespace(name)
            assert isinstance(backend, ArrayBackend)
            assert backend.name == name
        else:
            with pytest.raises(BackendUnavailableError, match=name):
                get_namespace(name)


class TestNumpyBackend:
    """The default backend is a pure pass-through — the bit-identity anchor."""

    def test_xp_is_the_numpy_module(self):
        assert get_namespace("numpy").xp is np

    def test_rng_matches_ensure_rng_stream(self):
        backend = get_namespace("numpy")
        assert np.array_equal(
            backend.rng(123).random(8), ensure_rng(123).random(8)
        )

    def test_rng_passes_generators_through(self):
        backend = get_namespace("numpy")
        generator = np.random.default_rng(0)
        assert backend.rng(generator) is generator

    def test_asarray_and_to_numpy_round_trip(self):
        backend = get_namespace("numpy")
        array = backend.asarray([1, 2, 3], dtype=np.int32)
        assert array.dtype == np.int32
        returned = backend.to_numpy(array)
        assert isinstance(returned, np.ndarray)
        assert np.array_equal(returned, [1, 2, 3])

    def test_precision_registry_is_consistent(self):
        for name, precision in PRECISIONS.items():
            assert isinstance(precision, Precision)
            assert precision.name == name
