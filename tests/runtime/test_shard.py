"""Tests for the deterministic work decomposition (ShardPlan / Task)."""

import pytest

from repro.experiments import ExperimentConfig, ParameterGrid, sweep_configs
from repro.experiments.dynamics_sweep import (
    dynamics_grid_replication,
    dynamics_point_replication,
)
from repro.experiments.network_sweep import network_batched_replication
from repro.runtime import (
    ShardPlan,
    execute_task,
    function_reference,
    partition_tasks,
    replication_mode,
    resolve_replication,
)
from repro.utils.rng import seeds_for_replications

BASE = {"qualities": (0.8, 0.5), "T": 10}


def small_configs(points=3, replications=4, seed=7):
    grid = ParameterGrid({"N": [50 * (index + 1) for index in range(points)]})
    return sweep_configs(
        "unit", grid, replications=replications, seed=seed, base_parameters=BASE
    )


class TestReplicationMode:
    def test_loop_function(self):
        assert replication_mode(dynamics_point_replication) == "loop"

    def test_batched_function(self):
        assert replication_mode(network_batched_replication) == "batched"

    def test_grid_function(self):
        assert replication_mode(dynamics_grid_replication) == "grid"


class TestFunctionReference:
    def test_round_trip_resolution(self):
        reference = function_reference(dynamics_point_replication)
        assert resolve_replication(reference) is dynamics_point_replication

    def test_malformed_reference_rejected(self):
        with pytest.raises(ValueError):
            resolve_replication("no-colon-here")


class TestShardPlan:
    def test_loop_mode_splits_per_seed(self):
        configs = small_configs(points=3, replications=4)
        plan = ShardPlan.from_configs(configs, dynamics_point_replication)
        assert plan.num_points == 3
        assert len(plan) == 12
        assert all(task.num_replicates == 1 for task in plan.tasks)

    def test_batched_mode_keeps_points_whole(self):
        configs = small_configs(points=3, replications=4)
        plan = ShardPlan.from_configs(configs, network_batched_replication)
        assert len(plan) == 3
        assert all(task.num_replicates == 4 for task in plan.tasks)

    def test_seed_blocks_match_the_serial_derivation(self):
        configs = small_configs(points=2, replications=5, seed=11)
        plan = ShardPlan.from_configs(configs, dynamics_point_replication)
        for point_index, config in enumerate(configs):
            expected = seeds_for_replications(config.seed, config.replications)
            point_tasks = [
                task for task in plan.tasks if task.point_index == point_index
            ]
            flattened = [seed for task in point_tasks for seed in task.seeds]
            assert flattened == expected
            offsets = [task.replicate_offset for task in point_tasks]
            assert offsets == sorted(offsets)

    def test_ordinals_are_plan_positions(self):
        plan = ShardPlan.from_configs(small_configs(), dynamics_point_replication)
        assert [task.ordinal for task in plan.tasks] == list(range(len(plan)))

    def test_empty_configs_rejected(self):
        with pytest.raises(ValueError):
            ShardPlan.from_configs([], dynamics_point_replication)

    def test_from_config_single_point(self):
        config = ExperimentConfig(
            name="single", parameters=dict(BASE, N=50), replications=3, seed=0
        )
        plan = ShardPlan.from_config(config, dynamics_point_replication)
        assert plan.num_points == 1
        assert len(plan) == 3


class TestPartitionTasks:
    def test_contiguous_balanced_cover(self):
        plan = ShardPlan.from_configs(
            small_configs(points=3, replications=4), dynamics_point_replication
        )
        shards = partition_tasks(list(plan.tasks), 5)
        assert len(shards) == 5
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1
        flattened = [task for shard in shards for task in shard]
        assert flattened == list(plan.tasks)

    def test_more_shards_than_tasks_clamps(self):
        plan = ShardPlan.from_configs(
            small_configs(points=1, replications=2), dynamics_point_replication
        )
        shards = plan.shards(16)
        assert len(shards) == 2

    def test_empty_task_list_yields_no_shards(self):
        assert partition_tasks([], 4) == []

    def test_nonpositive_shard_count_rejected(self):
        with pytest.raises(ValueError):
            partition_tasks([], 0)


class TestExecuteTask:
    def test_loop_task_matches_direct_call(self):
        configs = small_configs(points=1, replications=2)
        plan = ShardPlan.from_configs(configs, dynamics_point_replication)
        task = plan.tasks[0]
        direct = dynamics_point_replication(
            task.seeds[0], dict(task.parameters)
        )
        assert execute_task(task, dynamics_point_replication) == [direct]

    def test_grid_task_matches_single_point_grid_call(self):
        configs = small_configs(points=1, replications=3)
        plan = ShardPlan.from_configs(configs, dynamics_grid_replication)
        task = plan.tasks[0]
        direct = dynamics_grid_replication(
            [list(task.seeds)], [dict(task.parameters)]
        )[0]
        assert execute_task(task, dynamics_grid_replication) == list(direct)

    def test_row_count_mismatch_rejected(self):
        def bad_batched(seeds, parameters):
            return [{"metric": 1.0}]

        bad_batched.batched_replications = True
        config = ExperimentConfig(
            name="bad", parameters=dict(BASE, N=50), replications=3, seed=0
        )
        plan = ShardPlan.from_config(config, bad_batched)
        with pytest.raises(ValueError, match="metric rows"):
            execute_task(plan.tasks[0], bad_batched)
