"""Tests for the serial and multi-process executors and the plan driver."""

import time

import pytest

from repro.experiments import (
    ExperimentConfig,
    ParameterGrid,
    run_sweep,
    sweep_configs,
)
from repro.experiments.dynamics_sweep import dynamics_point_replication
from repro.runtime import (
    ParallelExecutor,
    ResultStore,
    SerialExecutor,
    ShardPlan,
    execute_task,
    run_plan,
)

BASE = {"qualities": (0.8, 0.5), "T": 8}
GRID = ParameterGrid({"N": [40, 80]})


def small_plan(replications=3, seed=5):
    configs = sweep_configs(
        "exec", GRID, replications=replications, seed=seed, base_parameters=BASE
    )
    return ShardPlan.from_configs(configs, dynamics_point_replication)


class TestSerialExecutor:
    def test_matches_the_legacy_in_process_sweep(self):
        plan = small_plan()
        runtime_rows = run_plan(
            plan, dynamics_point_replication, executor=SerialExecutor()
        )
        legacy_results, _ = run_sweep(
            "exec",
            GRID,
            dynamics_point_replication,
            replications=3,
            seed=5,
            base_parameters=BASE,
        )
        assert runtime_rows == [result.metrics for result in legacy_results]

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            SerialExecutor(num_shards=0)


class TestParallelExecutor:
    def test_bit_identical_to_serial(self):
        plan = small_plan()
        serial = run_plan(plan, dynamics_point_replication)
        parallel = run_plan(
            plan,
            dynamics_point_replication,
            executor=ParallelExecutor(2, shards_per_worker=2),
        )
        assert parallel == serial

    def test_closure_replication_rejected(self):
        def closure(seed, parameters):
            return {"metric": 1.0}

        plan_configs = sweep_configs(
            "closure", GRID, replications=1, seed=0, base_parameters=BASE
        )
        plan = ShardPlan.from_configs(plan_configs, closure)
        with pytest.raises(ValueError, match="SerialExecutor"):
            run_plan(plan, closure, executor=ParallelExecutor(2))

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)
        with pytest.raises(ValueError):
            ParallelExecutor(2, shards_per_worker=0)

    def test_default_shard_count_scales_with_workers(self):
        executor = ParallelExecutor(3, shards_per_worker=4)
        assert executor.num_shards == 12


class TestRunPlanWithStore:
    def test_warm_store_serves_everything_without_recompute(self):
        plan = small_plan()
        calls = []

        def counting(seed, parameters):
            calls.append(seed)
            return dynamics_point_replication(seed, parameters)

        with ResultStore() as store:
            cold = run_plan(plan, counting, store=store)
            cold_calls = len(calls)
            assert cold_calls == len(plan)
            warm = run_plan(plan, counting, store=store)
            assert len(calls) == cold_calls  # zero recomputation
            assert store.hits == len(plan)
            assert warm == cold

    def test_partial_store_only_computes_the_misses(self):
        plan = small_plan()
        with ResultStore() as store:
            half = list(plan.tasks)[: len(plan) // 2]
            for task in half:
                store.put(task, execute_task(task, dynamics_point_replication))
            full = run_plan(plan, dynamics_point_replication, store=store)
            assert store.hits == len(half)
            assert full == run_plan(plan, dynamics_point_replication)

    def test_growing_replications_reuses_the_prefix(self):
        # seeds_for_replications has the prefix property, so a store warmed
        # at R=2 serves the first two replicates of an R=4 re-run.
        with ResultStore() as store:
            run_plan(small_plan(replications=2), dynamics_point_replication, store=store)
            store.hits = store.misses = 0
            run_plan(small_plan(replications=4), dynamics_point_replication, store=store)
            assert store.hits == 2 * len(GRID)
            assert store.misses == 2 * len(GRID)


def sleepy_replication(seed, parameters):
    """Module-level (worker-resolvable) replication that naps per parameters."""
    time.sleep(float(parameters.get("sleep", 0.0)))
    return {"metric": float(seed)}


class TestAbortDoesNotJoinRunningShards:
    """Regression: aborting mid-run must not block on a still-running shard.

    The old abort path cancelled only *pending* futures and then closed the
    pool via the context manager, whose exit joins the workers — so a
    Ctrl-C during a big sweep hung until the in-flight shards finished.
    """

    SLOW = 3.0

    def _shards(self):
        configs = [
            ExperimentConfig(
                name=f"abort[{index}]",
                parameters={"sleep": sleep},
                replications=1,
                seed=index,
            )
            for index, sleep in enumerate([0.0, self.SLOW, 0.0])
        ]
        plan = ShardPlan.from_configs(configs, sleepy_replication)
        return plan.shards(len(plan))

    def test_abandoning_the_generator_returns_promptly(self):
        executor = ParallelExecutor(max_workers=1, shards_per_worker=1)
        shard_results = executor.run_shards(self._shards(), sleepy_replication)
        first = next(shard_results)  # fast shard done; slow shard now running
        assert len(first) == 1
        start = time.monotonic()
        shard_results.close()  # GeneratorExit at the yield = the abort path
        elapsed = time.monotonic() - start
        assert elapsed < self.SLOW - 1.0, (
            f"abort took {elapsed:.2f}s — the executor joined the "
            "still-running slow shard instead of abandoning it"
        )

    def test_interrupt_propagates_after_prompt_shutdown(self):
        executor = ParallelExecutor(max_workers=1, shards_per_worker=1)
        shard_results = executor.run_shards(self._shards(), sleepy_replication)
        next(shard_results)
        start = time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            shard_results.throw(KeyboardInterrupt)
        assert time.monotonic() - start < self.SLOW - 1.0
