"""Tests for the content-addressed sqlite ResultStore."""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.dynamics_sweep import dynamics_point_replication
from repro.runtime import ResultStore, ShardPlan, canonical_json, task_key

BASE = {"qualities": (0.8, 0.5), "T": 10, "N": 50}


def make_task(parameters=None, seeds=None, replications=2, seed=0):
    config = ExperimentConfig(
        name="store-test",
        parameters=dict(parameters or BASE),
        replications=replications,
        seed=seed,
    )
    plan = ShardPlan.from_config(config, dynamics_point_replication)
    task = plan.tasks[0]
    if seeds is not None:
        task = type(task)(
            ordinal=task.ordinal,
            point_index=task.point_index,
            name=task.name,
            function_ref=task.function_ref,
            mode=task.mode,
            parameters=task.parameters,
            seeds=tuple(seeds),
            replicate_offset=task.replicate_offset,
        )
    return task


class TestCanonicalJson:
    def test_key_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_tuple_and_list_equivalent(self):
        assert canonical_json({"q": (0.8, 0.5)}) == canonical_json({"q": [0.8, 0.5]})

    def test_numpy_scalars_normalised(self):
        assert canonical_json({"n": np.int64(5)}) == canonical_json({"n": 5})
        assert canonical_json({"x": np.float64(0.5)}) == canonical_json({"x": 0.5})

    def test_numpy_arrays_normalised(self):
        assert canonical_json({"q": np.array([0.8, 0.5])}) == canonical_json(
            {"q": [0.8, 0.5]}
        )

    def test_none_and_bool_supported(self):
        assert canonical_json({"a": None, "b": True}) == '{"a":null,"b":true}'

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="canonical cache key"):
            canonical_json({"bad": object()})

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError, match="parameter names"):
            canonical_json({1: "x"})


class TestTaskKey:
    def test_parameter_order_does_not_change_the_key(self):
        first = make_task({"T": 10, "N": 50, "qualities": (0.8, 0.5)})
        second = make_task({"qualities": (0.8, 0.5), "N": 50, "T": 10})
        assert task_key(first) == task_key(second)

    def test_different_seeds_change_the_key(self):
        assert task_key(make_task(seeds=[1])) != task_key(make_task(seeds=[2]))

    def test_different_parameters_change_the_key(self):
        other = dict(BASE, N=100)
        assert task_key(make_task(BASE)) != task_key(make_task(other))

    def test_code_version_changes_the_key(self):
        task = make_task()
        assert task_key(task, "v1") != task_key(task, "v2")


class TestResultStore:
    def test_miss_then_hit_round_trip(self):
        task = make_task()
        metrics = [{"regret": 0.5}, {"regret": 0.25}]
        with ResultStore() as store:
            key = store.key_for(task)
            assert store.get(key) is None
            store.put(task, metrics)
            assert store.get(key) == metrics
            assert store.hits == 1
            assert store.misses == 1
            assert key in store
            assert len(store) == 1

    def test_contains_does_not_count(self):
        with ResultStore() as store:
            assert store.key_for(make_task()) not in store
            assert store.hits == 0
            assert store.misses == 0

    def test_put_overwrites(self):
        task = make_task()
        with ResultStore() as store:
            store.put(task, [{"a": 1.0}, {"a": 1.0}])
            store.put(task, [{"a": 2.0}, {"a": 2.0}])
            assert len(store) == 1
            assert store.get(store.key_for(task)) == [{"a": 2.0}, {"a": 2.0}]

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "nested" / "results.sqlite"
        task = make_task()
        metrics = [{"regret": 0.125}, {"regret": 0.5}]
        with ResultStore(path) as store:
            store.put(task, metrics)
        with ResultStore(path) as reopened:
            assert reopened.get(reopened.key_for(task)) == metrics

    def test_code_version_isolates_entries(self, tmp_path):
        path = tmp_path / "versioned.sqlite"
        task = make_task()
        with ResultStore(path, code_version="v1") as store:
            store.put(task, [{"a": 1.0}, {"a": 1.0}])
        with ResultStore(path, code_version="v2") as upgraded:
            assert upgraded.get(upgraded.key_for(task)) is None

    def test_put_many_single_transaction(self):
        first = make_task(seeds=[1])
        second = make_task(seeds=[2])
        with ResultStore() as store:
            keys = store.put_many(
                [(first, [{"a": 1.0}]), (second, [{"a": 2.0}])]
            )
            assert len(keys) == 2
            assert len(store) == 2
