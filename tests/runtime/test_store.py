"""Tests for the tiered content-addressed ResultStore."""

import json
import sqlite3
import threading
import time

import numpy as np
import pytest

from repro import __version__
from repro.experiments import ExperimentConfig
from repro.experiments.dynamics_sweep import dynamics_point_replication
from repro.runtime import (
    ResultStore,
    ShardPlan,
    canonical_json,
    canonical_value,
    task_key,
)

BASE = {"qualities": (0.8, 0.5), "T": 10, "N": 50}


def make_task(parameters=None, seeds=None, replications=2, seed=0):
    config = ExperimentConfig(
        name="store-test",
        parameters=dict(parameters or BASE),
        replications=replications,
        seed=seed,
    )
    plan = ShardPlan.from_config(config, dynamics_point_replication)
    task = plan.tasks[0]
    if seeds is not None:
        task = type(task)(
            ordinal=task.ordinal,
            point_index=task.point_index,
            name=task.name,
            function_ref=task.function_ref,
            mode=task.mode,
            parameters=task.parameters,
            seeds=tuple(seeds),
            replicate_offset=task.replicate_offset,
        )
    return task


class TestCanonicalJson:
    def test_key_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_tuple_and_list_equivalent(self):
        assert canonical_json({"q": (0.8, 0.5)}) == canonical_json({"q": [0.8, 0.5]})

    def test_numpy_scalars_normalised(self):
        assert canonical_json({"n": np.int64(5)}) == canonical_json({"n": 5})
        assert canonical_json({"x": np.float64(0.5)}) == canonical_json({"x": 0.5})

    def test_numpy_arrays_normalised(self):
        assert canonical_json({"q": np.array([0.8, 0.5])}) == canonical_json(
            {"q": [0.8, 0.5]}
        )

    def test_none_and_bool_supported(self):
        assert canonical_json({"a": None, "b": True}) == '{"a":null,"b":true}'

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="canonical cache key"):
            canonical_json({"bad": object()})

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError, match="parameter names"):
            canonical_json({1: "x"})


class TestNonFiniteRejection:
    """RFC 8259 has no NaN/Infinity tokens — such keys must be refused loudly.

    The old encoder passed ``float("nan")`` straight to ``json.dumps``, which
    happily emits the non-standard ``NaN`` token; the resulting key could not
    round-trip through any strict JSON parser, and ``NaN != NaN`` made the
    parameter unmatchable anyway.
    """

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), float("-inf")]
    )
    def test_bare_non_finite_rejected(self, value):
        with pytest.raises(ValueError, match="non-finite"):
            canonical_value(value)

    def test_numpy_non_finite_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            canonical_value(np.float64("nan"))

    def test_nested_non_finite_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            canonical_json({"qualities": [0.8, float("inf")], "T": 10})

    def test_finite_floats_still_accepted(self):
        assert canonical_json({"x": 0.5}) == '{"x":0.5}'


class TestTaskKey:
    def test_parameter_order_does_not_change_the_key(self):
        first = make_task({"T": 10, "N": 50, "qualities": (0.8, 0.5)})
        second = make_task({"qualities": (0.8, 0.5), "N": 50, "T": 10})
        assert task_key(first) == task_key(second)

    def test_different_seeds_change_the_key(self):
        assert task_key(make_task(seeds=[1])) != task_key(make_task(seeds=[2]))

    def test_different_parameters_change_the_key(self):
        other = dict(BASE, N=100)
        assert task_key(make_task(BASE)) != task_key(make_task(other))

    def test_code_version_changes_the_key(self):
        task = make_task()
        assert task_key(task, "v1") != task_key(task, "v2")


class TestResultStore:
    def test_miss_then_hit_round_trip(self):
        task = make_task()
        metrics = [{"regret": 0.5}, {"regret": 0.25}]
        with ResultStore() as store:
            key = store.key_for(task)
            assert store.get(key) is None
            store.put(task, metrics)
            assert store.get(key) == metrics
            assert store.hits == 1
            assert store.misses == 1
            assert key in store
            assert len(store) == 1

    def test_contains_does_not_count(self):
        with ResultStore() as store:
            assert store.key_for(make_task()) not in store
            assert store.hits == 0
            assert store.misses == 0

    def test_put_overwrites(self):
        task = make_task()
        with ResultStore() as store:
            store.put(task, [{"a": 1.0}, {"a": 1.0}])
            store.put(task, [{"a": 2.0}, {"a": 2.0}])
            assert len(store) == 1
            assert store.get(store.key_for(task)) == [{"a": 2.0}, {"a": 2.0}]

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "nested" / "results.sqlite"
        task = make_task()
        metrics = [{"regret": 0.125}, {"regret": 0.5}]
        with ResultStore(path) as store:
            store.put(task, metrics)
        with ResultStore(path) as reopened:
            assert reopened.get(reopened.key_for(task)) == metrics

    def test_code_version_isolates_entries(self, tmp_path):
        path = tmp_path / "versioned.sqlite"
        task = make_task()
        with ResultStore(path, code_version="v1") as store:
            store.put(task, [{"a": 1.0}, {"a": 1.0}])
        with ResultStore(path, code_version="v2") as upgraded:
            assert upgraded.get(upgraded.key_for(task)) is None

    def test_put_many_single_transaction(self):
        first = make_task(seeds=[1])
        second = make_task(seeds=[2])
        with ResultStore() as store:
            keys = store.put_many(
                [(first, [{"a": 1.0}]), (second, [{"a": 2.0}])]
            )
            assert len(keys) == 2
            assert len(store) == 2


class TestThreadSafety:
    """Regression: the daemon's worker threads share one store concurrently.

    The old store used a default sqlite connection (``check_same_thread``
    on, no WAL, no busy timeout) and a positional ``INSERT OR REPLACE``, so
    any cross-thread access raised and any schema change silently misaligned
    columns.
    """

    THREADS = 6
    TASKS_PER_THREAD = 25

    def test_concurrent_readers_and_writers(self, tmp_path):
        store = ResultStore(tmp_path / "concurrent.sqlite")
        errors = []
        barrier = threading.Barrier(self.THREADS)

        def hammer(worker):
            try:
                barrier.wait(timeout=10)
                for index in range(self.TASKS_PER_THREAD):
                    task = make_task(
                        parameters={**BASE, "worker": worker, "index": index},
                        seeds=[worker, index],
                    )
                    metrics = [{"metric": float(worker * 1000 + index)}] * 2
                    store.put(task, metrics)
                    assert store.get(store.key_for(task)) == metrics
                    len(store)  # exercises the read path under contention
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert len(store) == self.THREADS * self.TASKS_PER_THREAD
        counters = store.counters()
        assert counters.hits == self.THREADS * self.TASKS_PER_THREAD
        assert counters.misses == 0
        assert counters.hits == counters.hot_hits + counters.cold_hits
        store.close()

    def test_file_store_runs_in_wal_mode(self, tmp_path):
        store = ResultStore(tmp_path / "wal.sqlite")
        mode = store._connection.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        store.close()

    def test_close_is_idempotent_and_marks_closed(self):
        store = ResultStore()
        assert not store.closed
        store.close()
        store.close()  # second close must not raise
        assert store.closed
        with pytest.raises(RuntimeError, match="closed"):
            store.get("anything")

    def test_insert_names_its_columns(self, tmp_path):
        # A new column appended to the schema must not shift the insert's
        # values: named columns keep old writers valid against the wider
        # table.
        path = tmp_path / "wider.sqlite"
        with ResultStore(path) as store:
            store._connection.execute(
                "ALTER TABLE results ADD COLUMN annotation TEXT"
            )
            task = make_task()
            key = store.put(task, [{"metric": 1.0}, {"metric": 2.0}])
            assert store.get(key) == [{"metric": 1.0}, {"metric": 2.0}]


def tiered_store(path, **kwargs):
    """File-backed store with the background thread off (tests drive compact())."""
    kwargs.setdefault("compaction_interval", None)
    return ResultStore(path, **kwargs)


# Awkward floats: accumulated rounding, thirds, pi, a denormal, negative
# zero — bit-identity through the columnar tier means these come back
# exactly, not merely close.
AWKWARD = [0.1 + 0.2, 1.0 / 3.0, float(np.pi), 5e-324, -0.0]


class TestTieredStore:
    def test_put_then_get_is_hot_hit_and_spills_a_segment(self, tmp_path):
        with tiered_store(tmp_path / "tiered.sqlite") as store:
            key = store.put(make_task(), [{"regret": 0.5}, {"regret": 0.25}])
            assert store.get(key) == [{"regret": 0.5}, {"regret": 0.25}]
            counters = store.counters()
            assert counters.hot_hits == 1
            assert counters.cold_hits == 0
            assert counters.spills == 1
            assert store.hot_entries == 1
            assert store.segment_count() == 1
            segments = list((tmp_path / "tiered.sqlite.segments").glob("seg-*.npz"))
            assert len(segments) == 1

    def test_cold_read_after_reopen_is_bit_identical(self, tmp_path):
        path = tmp_path / "cold.sqlite"
        metrics = [{"value": value} for value in AWKWARD]
        task = make_task()
        with tiered_store(path) as store:
            key = store.put(task, metrics)
        with tiered_store(path) as reopened:
            assert reopened.hot_entries == 0
            got = reopened.get(key)
            assert got == metrics
            for row, expected in zip(got, metrics):
                # == would also pass for -0.0 vs 0.0; require the same bits.
                assert np.float64(row["value"]).tobytes() == np.float64(
                    expected["value"]
                ).tobytes()
            counters = reopened.counters()
            assert counters.cold_hits == 1
            assert counters.hot_hits == 0
            # The cold read admits the entry, so the next one is hot.
            assert reopened.get(key) == metrics
            assert reopened.counters().hot_hits == 1

    def test_entry_larger_than_hot_budget_stays_cold(self, tmp_path):
        with tiered_store(
            tmp_path / "big.sqlite", hot_budget_bytes=256
        ) as store:
            oversized = [{"metric": float(i)} for i in range(64)]
            key = store.put(make_task(), oversized)
            assert store.hot_entries == 0
            for _ in range(2):
                assert store.get(key) == oversized
            counters = store.counters()
            # Never admitted: every read is a cold-tier read.
            assert counters.cold_hits == 2
            assert counters.hot_hits == 0
            assert store.hot_entries == 0

    def test_lru_eviction_by_entry_budget(self, tmp_path):
        with tiered_store(
            tmp_path / "lru.sqlite", hot_budget_entries=2
        ) as store:
            keys = [
                store.put(make_task(seeds=[seed]), [{"metric": float(seed)}])
                for seed in range(3)
            ]
            assert store.hot_entries == 2
            assert store.counters().evictions == 1
            # The first entry was evicted; reading it is a cold hit.
            assert store.get(keys[0]) == [{"metric": 0.0}]
            assert store.counters().cold_hits == 1

    def test_non_float_metrics_fall_back_inline(self, tmp_path):
        path = tmp_path / "inline.sqlite"
        metrics = [{"count": 3, "label": "ok", "flag": True, "missing": None}]
        task = make_task()
        with tiered_store(path) as store:
            key = store.put(task, metrics)
            assert store.counters().spills == 0
            assert store.segment_count() == 0
        with tiered_store(path) as reopened:
            got = reopened.get(key)
            assert got == metrics
            assert type(got[0]["count"]) is int
            assert type(got[0]["flag"]) is bool

    def test_compact_merges_segments_and_survives_reopen(self, tmp_path):
        path = tmp_path / "compact.sqlite"
        with tiered_store(path) as store:
            keys = [
                store.put(make_task(seeds=[seed]), [{"metric": float(seed)}])
                for seed in range(4)
            ]
            assert store.segment_count() == 4
            assert store.compact() is True
            assert store.segment_count() == 1
            assert store.counters().compactions == 1
            for seed, key in enumerate(keys):
                assert store.get(key) == [{"metric": float(seed)}]
        with tiered_store(path) as reopened:
            for seed, key in enumerate(keys):
                assert reopened.get(key) == [{"metric": float(seed)}]
            assert reopened.segment_count() == 1

    def test_compact_below_threshold_is_a_noop_without_force(self, tmp_path):
        with tiered_store(tmp_path / "noop.sqlite") as store:
            store.put(make_task(), [{"metric": 1.0}])
            assert store.compact() is False
            assert store.compact(force=True) is True
            assert store.get(store.key_for(make_task())) == [{"metric": 1.0}]

    def test_max_age_eviction_drops_old_entries(self, tmp_path):
        with tiered_store(
            tmp_path / "aged.sqlite", max_age_seconds=0.0
        ) as store:
            store.put(make_task(seeds=[1]), [{"metric": 1.0}])
            store.put(make_task(seeds=[2]), [{"count": 2}])  # inline row
            time.sleep(0.01)
            assert store.compact(force=True) is True
            assert len(store) == 0
            assert store.get(store.key_for(make_task(seeds=[1]))) is None

    def test_cold_budget_evicts_least_recently_used(self, tmp_path):
        with tiered_store(
            tmp_path / "budget.sqlite",
            cold_budget_bytes=1,
            hot_budget_entries=1,
        ) as store:
            old = store.put(make_task(seeds=[1]), [{"metric": 1.0}])
            new = store.put(make_task(seeds=[2]), [{"metric": 2.0}])
            store.get(new)  # refresh recency of the newer entry
            store.compact(force=True)
            remaining = {key for key in (old, new) if key in store}
            # A 1-byte budget keeps nothing resident except what the LRU
            # order says to drop last — the untouched entry goes first.
            assert old not in remaining

    def test_memory_store_never_spills(self):
        with ResultStore() as store:
            key = store.put(make_task(), [{"metric": 1.0}])
            assert store.counters().spills == 0
            assert store.segment_count() == 0
            assert store.get(key) == [{"metric": 1.0}]

    def test_get_many_counts_like_repeated_gets(self, tmp_path):
        path = tmp_path / "bulk.sqlite"
        with tiered_store(path) as store:
            present = [
                store.put(make_task(seeds=[seed]), [{"metric": float(seed)}])
                for seed in range(3)
            ]
        with tiered_store(path) as reopened:
            absent = "0" * 64
            keys = present + [absent, present[0], absent]
            found = reopened.get_many(keys)
            assert set(found) == set(present)
            assert found[present[1]] == [{"metric": 1.0}]
            counters = reopened.counters()
            assert counters.hits == 4  # 3 first reads + 1 duplicate
            assert counters.misses == 2  # the absent key, twice
            assert counters.cold_hits == 3
            assert counters.hot_hits == 1

    def test_invalid_budgets_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="hot_budget_bytes"):
            ResultStore(tmp_path / "bad.sqlite", hot_budget_bytes=0)
        with pytest.raises(ValueError, match="compact_threshold"):
            ResultStore(tmp_path / "bad2.sqlite", compact_threshold=1)


class TestLegacyMigration:
    """Pre-tiered stores (PR-5/PR-6 schema) must open without data loss."""

    LEGACY_SCHEMA = """
    CREATE TABLE results (
        key TEXT PRIMARY KEY,
        function TEXT NOT NULL,
        name TEXT NOT NULL,
        parameters TEXT NOT NULL,
        seeds TEXT NOT NULL,
        code_version TEXT NOT NULL,
        metrics TEXT NOT NULL,
        created_at TEXT NOT NULL
    )
    """

    def make_legacy_store(self, path, task, metrics):
        connection = sqlite3.connect(str(path))
        connection.execute(self.LEGACY_SCHEMA)
        connection.execute(
            "INSERT INTO results VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                task_key(task),
                task.function_ref,
                task.name,
                canonical_json(task.parameters),
                json.dumps(list(task.seeds)),
                __version__,
                json.dumps(metrics),
                "2026-01-01T00:00:00+00:00",
            ),
        )
        connection.commit()
        connection.close()

    def test_legacy_store_opens_and_serves_old_rows(self, tmp_path):
        path = tmp_path / "legacy.sqlite"
        task = make_task()
        metrics = [{"regret": 0.5}, {"regret": 0.25}]
        self.make_legacy_store(path, task, metrics)
        with tiered_store(path) as store:
            assert store.get(store.key_for(task)) == metrics
            assert store.counters().cold_hits == 1

    def test_legacy_store_accepts_new_tiered_writes(self, tmp_path):
        path = tmp_path / "legacy-grow.sqlite"
        old_task = make_task(seeds=[1])
        self.make_legacy_store(path, old_task, [{"regret": 0.5}])
        with tiered_store(path) as store:
            new_key = store.put(make_task(seeds=[2]), [{"regret": 0.25}])
            assert store.counters().spills == 1
            assert store.get(store.key_for(old_task)) == [{"regret": 0.5}]
            assert store.get(new_key) == [{"regret": 0.25}]
        with tiered_store(path) as reopened:
            assert len(reopened) == 2
            assert reopened.get(new_key) == [{"regret": 0.25}]


class TestTierConcurrency:
    def test_concurrent_reads_during_spills(self, tmp_path):
        store = tiered_store(tmp_path / "racing.sqlite")
        seeds = list(range(40))
        keys = {}
        errors = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    for seed, key in list(keys.items()):
                        got = store.get(key)
                        if got is not None:
                            assert got == [{"metric": float(seed)}]
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for seed in seeds:
                keys[seed] = store.put(
                    make_task(seeds=[seed]), [{"metric": float(seed)}]
                )
                if seed % 10 == 9:
                    store.compact(force=True)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors, errors
        for seed, key in keys.items():
            assert store.get(key) == [{"metric": float(seed)}]
        store.close()

    def test_background_thread_compacts_and_closes_cleanly(self, tmp_path):
        store = ResultStore(
            tmp_path / "auto.sqlite",
            compact_threshold=2,
            compaction_interval=0.05,
        )
        try:
            for seed in range(3):
                store.put(make_task(seeds=[seed]), [{"metric": float(seed)}])
            deadline = time.time() + 10
            # Each put can race a merge, so wait for convergence: every
            # spill segment folded into one, with at least one merge done.
            while time.time() < deadline:
                if store.counters().compactions >= 1 and store.segment_count() == 1:
                    break
                time.sleep(0.02)
            assert store.counters().compactions >= 1
            assert store.segment_count() == 1
        finally:
            store.close()
        assert store.closed
