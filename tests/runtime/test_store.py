"""Tests for the content-addressed sqlite ResultStore."""

import threading

import numpy as np
import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.dynamics_sweep import dynamics_point_replication
from repro.runtime import ResultStore, ShardPlan, canonical_json, task_key

BASE = {"qualities": (0.8, 0.5), "T": 10, "N": 50}


def make_task(parameters=None, seeds=None, replications=2, seed=0):
    config = ExperimentConfig(
        name="store-test",
        parameters=dict(parameters or BASE),
        replications=replications,
        seed=seed,
    )
    plan = ShardPlan.from_config(config, dynamics_point_replication)
    task = plan.tasks[0]
    if seeds is not None:
        task = type(task)(
            ordinal=task.ordinal,
            point_index=task.point_index,
            name=task.name,
            function_ref=task.function_ref,
            mode=task.mode,
            parameters=task.parameters,
            seeds=tuple(seeds),
            replicate_offset=task.replicate_offset,
        )
    return task


class TestCanonicalJson:
    def test_key_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_tuple_and_list_equivalent(self):
        assert canonical_json({"q": (0.8, 0.5)}) == canonical_json({"q": [0.8, 0.5]})

    def test_numpy_scalars_normalised(self):
        assert canonical_json({"n": np.int64(5)}) == canonical_json({"n": 5})
        assert canonical_json({"x": np.float64(0.5)}) == canonical_json({"x": 0.5})

    def test_numpy_arrays_normalised(self):
        assert canonical_json({"q": np.array([0.8, 0.5])}) == canonical_json(
            {"q": [0.8, 0.5]}
        )

    def test_none_and_bool_supported(self):
        assert canonical_json({"a": None, "b": True}) == '{"a":null,"b":true}'

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="canonical cache key"):
            canonical_json({"bad": object()})

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError, match="parameter names"):
            canonical_json({1: "x"})


class TestTaskKey:
    def test_parameter_order_does_not_change_the_key(self):
        first = make_task({"T": 10, "N": 50, "qualities": (0.8, 0.5)})
        second = make_task({"qualities": (0.8, 0.5), "N": 50, "T": 10})
        assert task_key(first) == task_key(second)

    def test_different_seeds_change_the_key(self):
        assert task_key(make_task(seeds=[1])) != task_key(make_task(seeds=[2]))

    def test_different_parameters_change_the_key(self):
        other = dict(BASE, N=100)
        assert task_key(make_task(BASE)) != task_key(make_task(other))

    def test_code_version_changes_the_key(self):
        task = make_task()
        assert task_key(task, "v1") != task_key(task, "v2")


class TestResultStore:
    def test_miss_then_hit_round_trip(self):
        task = make_task()
        metrics = [{"regret": 0.5}, {"regret": 0.25}]
        with ResultStore() as store:
            key = store.key_for(task)
            assert store.get(key) is None
            store.put(task, metrics)
            assert store.get(key) == metrics
            assert store.hits == 1
            assert store.misses == 1
            assert key in store
            assert len(store) == 1

    def test_contains_does_not_count(self):
        with ResultStore() as store:
            assert store.key_for(make_task()) not in store
            assert store.hits == 0
            assert store.misses == 0

    def test_put_overwrites(self):
        task = make_task()
        with ResultStore() as store:
            store.put(task, [{"a": 1.0}, {"a": 1.0}])
            store.put(task, [{"a": 2.0}, {"a": 2.0}])
            assert len(store) == 1
            assert store.get(store.key_for(task)) == [{"a": 2.0}, {"a": 2.0}]

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "nested" / "results.sqlite"
        task = make_task()
        metrics = [{"regret": 0.125}, {"regret": 0.5}]
        with ResultStore(path) as store:
            store.put(task, metrics)
        with ResultStore(path) as reopened:
            assert reopened.get(reopened.key_for(task)) == metrics

    def test_code_version_isolates_entries(self, tmp_path):
        path = tmp_path / "versioned.sqlite"
        task = make_task()
        with ResultStore(path, code_version="v1") as store:
            store.put(task, [{"a": 1.0}, {"a": 1.0}])
        with ResultStore(path, code_version="v2") as upgraded:
            assert upgraded.get(upgraded.key_for(task)) is None

    def test_put_many_single_transaction(self):
        first = make_task(seeds=[1])
        second = make_task(seeds=[2])
        with ResultStore() as store:
            keys = store.put_many(
                [(first, [{"a": 1.0}]), (second, [{"a": 2.0}])]
            )
            assert len(keys) == 2
            assert len(store) == 2


class TestThreadSafety:
    """Regression: the daemon's worker threads share one store concurrently.

    The old store used a default sqlite connection (``check_same_thread``
    on, no WAL, no busy timeout) and a positional ``INSERT OR REPLACE``, so
    any cross-thread access raised and any schema change silently misaligned
    columns.
    """

    THREADS = 6
    TASKS_PER_THREAD = 25

    def test_concurrent_readers_and_writers(self, tmp_path):
        store = ResultStore(tmp_path / "concurrent.sqlite")
        errors = []
        barrier = threading.Barrier(self.THREADS)

        def hammer(worker):
            try:
                barrier.wait(timeout=10)
                for index in range(self.TASKS_PER_THREAD):
                    task = make_task(
                        parameters={**BASE, "worker": worker, "index": index},
                        seeds=[worker, index],
                    )
                    metrics = [{"metric": float(worker * 1000 + index)}] * 2
                    store.put(task, metrics)
                    assert store.get(store.key_for(task)) == metrics
                    len(store)  # exercises the read path under contention
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert len(store) == self.THREADS * self.TASKS_PER_THREAD
        hits, misses = store.counters()
        assert hits == self.THREADS * self.TASKS_PER_THREAD
        assert misses == 0
        store.close()

    def test_file_store_runs_in_wal_mode(self, tmp_path):
        store = ResultStore(tmp_path / "wal.sqlite")
        mode = store._connection.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        store.close()

    def test_close_is_idempotent_and_marks_closed(self):
        store = ResultStore()
        assert not store.closed
        store.close()
        store.close()  # second close must not raise
        assert store.closed
        with pytest.raises(RuntimeError, match="closed"):
            store.get("anything")

    def test_insert_names_its_columns(self, tmp_path):
        # A new column appended to the schema must not shift the insert's
        # values: named columns keep old writers valid against the wider
        # table.
        path = tmp_path / "wider.sqlite"
        with ResultStore(path) as store:
            store._connection.execute(
                "ALTER TABLE results ADD COLUMN annotation TEXT"
            )
            task = make_task()
            key = store.put(task, [{"metric": 1.0}, {"metric": 2.0}])
            assert store.get(key) == [{"metric": 1.0}, {"metric": 2.0}]
