"""ExecutionOptions: validation, resolution, and the legacy-kwargs shim."""

from __future__ import annotations

import warnings

import pytest

from repro.experiments import ParameterGrid, run_sweep, sweep_configs
from repro.experiments.dynamics_sweep import dynamics_point_replication
from repro.experiments.runner import run_replications
from repro.runtime import ParallelExecutor, ResultStore, SerialExecutor
from repro.runtime.options import ExecutionOptions, resolve_options
from repro.service import execute_request, sweep_request

BASE = {"qualities": (0.8, 0.5), "T": 6}
GRID = ParameterGrid({"N": [40]})


class TestValidation:
    def test_defaults_are_inactive(self):
        options = ExecutionOptions()
        assert not options.active
        assert options.resolve_executor() is None

    def test_workers_below_one_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ExecutionOptions(workers=0)

    def test_executor_and_workers_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            ExecutionOptions(executor=SerialExecutor(), workers=4)

    def test_frozen(self):
        options = ExecutionOptions()
        with pytest.raises(AttributeError):
            options.workers = 2

    def test_engine_options_are_read_only(self):
        options = ExecutionOptions(engine_options={"backend": "numpy"})
        with pytest.raises(TypeError):
            options.engine_options["backend"] = "torch"

    def test_engine_options_copied_from_the_input(self):
        source = {"backend": "numpy"}
        options = ExecutionOptions(engine_options=source)
        source["backend"] = "torch"
        assert options.engine_options["backend"] == "numpy"


class TestResolution:
    def test_explicit_executor_wins(self):
        executor = SerialExecutor()
        assert ExecutionOptions(executor=executor).resolve_executor() is executor

    def test_workers_build_a_pool(self):
        resolved = ExecutionOptions(workers=2).resolve_executor()
        assert isinstance(resolved, ParallelExecutor)

    def test_store_alone_activates_the_runtime_path(self, tmp_path):
        with ResultStore(tmp_path / "opts.sqlite") as store:
            options = ExecutionOptions(store=store)
            assert options.active
            assert options.resolve_executor() is None

    def test_merged_parameters_layer_engine_options(self):
        options = ExecutionOptions(engine_options={"backend": "numpy"})
        merged = options.merged_parameters({"N": 40})
        assert merged == {"N": 40, "backend": "numpy"}


class TestResolveOptionsShim:
    def test_no_legacy_kwargs_pass_through(self):
        options = ExecutionOptions()
        assert resolve_options(options) is options
        assert resolve_options(None) is None

    def test_legacy_kwargs_warn_and_build_options(self):
        executor = SerialExecutor()
        with pytest.warns(DeprecationWarning, match="deprecated"):
            resolved = resolve_options(None, executor=executor, owner="run_x")
        assert resolved is not None
        assert resolved.executor is executor

    def test_mixing_spellings_is_an_error(self):
        with pytest.raises(ValueError, match="both options="):
            resolve_options(
                ExecutionOptions(), executor=SerialExecutor(), owner="run_x"
            )


class TestBothSpellingsBitIdentical:
    def test_run_sweep(self):
        executor = SerialExecutor()
        new_results, new_table = run_sweep(
            "opts",
            GRID,
            dynamics_point_replication,
            replications=2,
            seed=3,
            base_parameters=BASE,
            options=ExecutionOptions(executor=executor),
        )
        with pytest.warns(DeprecationWarning):
            old_results, old_table = run_sweep(
                "opts",
                GRID,
                dynamics_point_replication,
                replications=2,
                seed=3,
                base_parameters=BASE,
                executor=executor,
            )
        assert [r.metrics for r in old_results] == [r.metrics for r in new_results]
        assert old_table.rows == new_table.rows

    def test_run_replications(self):
        (config,) = sweep_configs(
            "opts", GRID, replications=2, seed=3, base_parameters=BASE
        )
        executor = SerialExecutor()
        new = run_replications(
            config,
            dynamics_point_replication,
            options=ExecutionOptions(executor=executor),
        )
        with pytest.warns(DeprecationWarning):
            old = run_replications(
                config, dynamics_point_replication, executor=executor
            )
        assert old.metrics == new.metrics

    def test_execute_request(self):
        request = sweep_request(
            options=[0.8, 0.5],
            populations=[40],
            horizon=6,
            replications=2,
            engine="loop",
        )
        executor = SerialExecutor()
        new = execute_request(
            request, options=ExecutionOptions(executor=executor)
        )
        with pytest.warns(DeprecationWarning):
            old = execute_request(request, executor=executor)
        assert old.rows == new.rows
        assert old.description == new.description

    def test_new_spelling_does_not_warn(self):
        request = sweep_request(
            options=[0.8, 0.5],
            populations=[40],
            horizon=6,
            replications=2,
            engine="loop",
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            execute_request(
                request, options=ExecutionOptions(executor=SerialExecutor())
            )
