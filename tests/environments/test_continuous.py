"""Tests for the continuous-reward environments and the Ellison-Fudenberg reduction."""

import numpy as np
import pytest
from scipy import stats

from repro.environments import ContinuousRewardEnvironment, EllisonFudenbergEnvironment


class TestContinuousRewardEnvironment:
    def test_implied_qualities_match_survival_function(self):
        env = ContinuousRewardEnvironment.gaussian([1.0, -1.0], scale=1.0, threshold=0.0)
        expected = [stats.norm(1.0, 1.0).sf(0.0), stats.norm(-1.0, 1.0).sf(0.0)]
        np.testing.assert_allclose(env.qualities, expected)

    def test_sample_is_binary(self):
        env = ContinuousRewardEnvironment.gaussian([0.5, -0.5], rng=0)
        rewards = env.sample_many(20)
        assert set(np.unique(rewards)).issubset({0, 1})

    def test_last_raw_rewards_exposed(self):
        env = ContinuousRewardEnvironment.gaussian([0.0], rng=0)
        assert env.last_raw_rewards is None
        env.sample()
        assert env.last_raw_rewards is not None
        assert env.last_raw_rewards.shape == (1,)

    def test_empirical_quality_matches_implied(self):
        env = ContinuousRewardEnvironment.gaussian([0.8], scale=1.0, rng=1)
        rewards = env.sample_many(4000)
        assert rewards.mean() == pytest.approx(env.qualities[0], abs=0.03)

    def test_rejects_non_distribution(self):
        with pytest.raises(TypeError):
            ContinuousRewardEnvironment([object()])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ContinuousRewardEnvironment([])

    def test_gaussian_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            ContinuousRewardEnvironment.gaussian([0.0], scale=0.0)


class TestEllisonFudenbergEnvironment:
    def test_qualities_sum_to_one(self):
        env = EllisonFudenbergEnvironment.gaussian(mean_gap=0.5, rng=0)
        np.testing.assert_allclose(env.qualities.sum(), 1.0)

    def test_better_mean_gives_higher_quality(self):
        env = EllisonFudenbergEnvironment.gaussian(mean_gap=1.0, rng=0)
        assert env.qualities[0] > env.qualities[1]
        assert env.best_option == 0

    def test_rewards_are_one_hot(self):
        env = EllisonFudenbergEnvironment.gaussian(mean_gap=0.5, rng=0)
        rewards = env.sample_many(50)
        np.testing.assert_array_equal(rewards.sum(axis=1), np.ones(50))

    def test_implied_adoption_parameters_ordered(self):
        env = EllisonFudenbergEnvironment.gaussian(mean_gap=0.5, shock_scale=1.0, rng=0)
        alpha, beta = env.implied_adoption_parameters()
        assert 0.0 <= alpha < beta <= 1.0

    def test_zero_gap_gives_even_odds(self):
        env = EllisonFudenbergEnvironment.gaussian(mean_gap=0.0, rng=0)
        assert env.qualities[0] == pytest.approx(0.5, abs=0.02)

    def test_empirical_win_rate_matches_quality(self):
        env = EllisonFudenbergEnvironment.gaussian(mean_gap=0.7, rng=2)
        rewards = env.sample_many(4000)
        assert rewards[:, 0].mean() == pytest.approx(env.qualities[0], abs=0.03)

    def test_rejects_non_distribution(self):
        with pytest.raises(TypeError):
            EllisonFudenbergEnvironment(object(), stats.norm(), stats.norm())

    def test_gaussian_rejects_bad_scales(self):
        with pytest.raises(ValueError):
            EllisonFudenbergEnvironment.gaussian(reward_scale=-1.0)
