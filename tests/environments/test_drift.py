"""Tests for the non-stationary (drifting) environments."""

import numpy as np
import pytest

from repro.environments import PiecewiseConstantDriftEnvironment, RandomWalkDriftEnvironment


class TestPiecewiseConstantDrift:
    def test_phase_switching(self):
        env = PiecewiseConstantDriftEnvironment(
            phases=[[0.9, 0.1], [0.1, 0.9]], phase_length=10, rng=0
        )
        assert env.best_option == 0
        env.sample_many(10)
        assert env.best_option == 1

    def test_last_phase_persists(self):
        env = PiecewiseConstantDriftEnvironment(
            phases=[[0.9, 0.1], [0.1, 0.9]], phase_length=5, rng=0
        )
        env.sample_many(50)
        np.testing.assert_allclose(env.qualities, [0.1, 0.9])

    def test_num_phases(self):
        env = PiecewiseConstantDriftEnvironment(
            phases=[[0.5], [0.6], [0.7]], phase_length=2
        )
        assert env.num_phases == 3

    def test_rewards_track_current_phase(self):
        env = PiecewiseConstantDriftEnvironment(
            phases=[[1.0, 0.0], [0.0, 1.0]], phase_length=20, rng=0
        )
        first_phase = env.sample_many(20)
        second_phase = env.sample_many(20)
        assert np.all(first_phase[:, 0] == 1) and np.all(first_phase[:, 1] == 0)
        assert np.all(second_phase[:, 0] == 0) and np.all(second_phase[:, 1] == 1)

    def test_rejects_mismatched_phase_sizes(self):
        with pytest.raises(ValueError):
            PiecewiseConstantDriftEnvironment(phases=[[0.5, 0.5], [0.5]], phase_length=5)

    def test_rejects_empty_phases(self):
        with pytest.raises(ValueError):
            PiecewiseConstantDriftEnvironment(phases=[], phase_length=5)


class TestRandomWalkDrift:
    def test_qualities_stay_in_bounds(self):
        env = RandomWalkDriftEnvironment(
            [0.5, 0.5], step_scale=0.1, low=0.2, high=0.8, rng=0
        )
        for _ in range(200):
            env.sample()
            qualities = env.qualities
            assert np.all(qualities >= 0.2 - 1e-12)
            assert np.all(qualities <= 0.8 + 1e-12)

    def test_qualities_actually_move(self):
        env = RandomWalkDriftEnvironment([0.5], step_scale=0.05, rng=0)
        initial = env.qualities.copy()
        env.sample_many(50)
        assert not np.allclose(env.qualities, initial)

    def test_reset_restores_initial(self):
        env = RandomWalkDriftEnvironment([0.4, 0.6], step_scale=0.05, rng=0)
        env.sample_many(30)
        env.reset()
        np.testing.assert_allclose(env.qualities, [0.4, 0.6])
        assert env.time == 0

    def test_rejects_initial_outside_bounds(self):
        with pytest.raises(ValueError):
            RandomWalkDriftEnvironment([0.01], low=0.1, high=0.9)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            RandomWalkDriftEnvironment([0.5], low=0.8, high=0.2)

    def test_rejects_non_positive_step(self):
        with pytest.raises(ValueError):
            RandomWalkDriftEnvironment([0.5], step_scale=0.0)

    def test_reflect_keeps_values_inside(self):
        values = np.array([0.05, 0.95, 0.5])
        reflected = RandomWalkDriftEnvironment._reflect(values, 0.1, 0.9)
        assert np.all(reflected >= 0.1) and np.all(reflected <= 0.9)
