"""Tests for recorded/replayable reward sequences."""

import numpy as np
import pytest

from repro.environments import BernoulliEnvironment, RecordedRewardSequence, record_rewards


class TestRecordRewards:
    def test_shape(self):
        env = BernoulliEnvironment([0.5, 0.5], rng=0)
        rewards = record_rewards(env, 25)
        assert rewards.shape == (25, 2)

    def test_advances_environment_clock(self):
        env = BernoulliEnvironment([0.5], rng=0)
        record_rewards(env, 10)
        assert env.time == 10


class TestRecordedRewardSequence:
    def test_replays_exact_matrix(self):
        matrix = np.array([[1, 0], [0, 1], [1, 1]])
        sequence = RecordedRewardSequence(matrix)
        replayed = sequence.sample_many(3)
        np.testing.assert_array_equal(replayed, matrix)

    def test_from_environment_keeps_true_qualities(self):
        env = BernoulliEnvironment([0.8, 0.2], rng=0)
        sequence = RecordedRewardSequence.from_environment(env, 30)
        np.testing.assert_allclose(sequence.qualities, [0.8, 0.2])
        assert sequence.horizon == 30

    def test_default_qualities_are_empirical_means(self):
        matrix = np.array([[1, 0], [1, 0], [1, 1], [1, 0]])
        sequence = RecordedRewardSequence(matrix)
        np.testing.assert_allclose(sequence.qualities, [1.0, 0.25])

    def test_exhaustion_raises(self):
        sequence = RecordedRewardSequence(np.array([[1], [0]]))
        sequence.sample_many(2)
        with pytest.raises(RuntimeError):
            sequence.sample()

    def test_remaining(self):
        sequence = RecordedRewardSequence(np.array([[1], [0], [1]]))
        sequence.sample()
        assert sequence.remaining() == 2

    def test_reset_allows_replay_again(self):
        matrix = np.array([[1, 0], [0, 1]])
        sequence = RecordedRewardSequence(matrix)
        first = sequence.sample_many(2)
        sequence.reset()
        second = sequence.sample_many(2)
        np.testing.assert_array_equal(first, second)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            RecordedRewardSequence(np.array([[0.5, 0.5]]))

    def test_rejects_wrong_quality_length(self):
        with pytest.raises(ValueError):
            RecordedRewardSequence(np.array([[1, 0]]), qualities=[0.5])

    def test_rewards_property_returns_copy(self):
        matrix = np.array([[1, 0]])
        sequence = RecordedRewardSequence(matrix)
        sequence.rewards[0, 0] = 0
        assert sequence.rewards[0, 0] == 1
