"""Tests for the Bernoulli environment and the RewardEnvironment base behaviour."""

import numpy as np
import pytest

from repro.environments import BernoulliEnvironment


class TestConstruction:
    def test_qualities_preserved(self):
        env = BernoulliEnvironment([0.7, 0.3])
        np.testing.assert_allclose(env.qualities, [0.7, 0.3])

    def test_num_options(self):
        env = BernoulliEnvironment([0.5, 0.5, 0.5])
        assert env.num_options == 3

    def test_best_option_and_quality(self):
        env = BernoulliEnvironment([0.2, 0.9, 0.5])
        assert env.best_option == 1
        assert env.best_quality == pytest.approx(0.9)

    def test_quality_gap(self):
        env = BernoulliEnvironment([0.8, 0.5, 0.3])
        assert env.quality_gap() == pytest.approx(0.3)

    def test_single_option_gap_is_zero(self):
        assert BernoulliEnvironment([0.5]).quality_gap() == 0.0

    def test_rejects_out_of_range_quality(self):
        with pytest.raises(ValueError):
            BernoulliEnvironment([0.5, 1.5])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BernoulliEnvironment([])

    def test_qualities_returns_copy(self):
        env = BernoulliEnvironment([0.5, 0.5])
        env.qualities[0] = 0.0
        assert env.qualities[0] == 0.5


class TestSampling:
    def test_sample_shape_and_binary(self):
        env = BernoulliEnvironment([0.5, 0.5], rng=0)
        rewards = env.sample()
        assert rewards.shape == (2,)
        assert set(np.unique(rewards)).issubset({0, 1})

    def test_sample_many_shape(self):
        env = BernoulliEnvironment([0.5, 0.5, 0.5], rng=0)
        rewards = env.sample_many(50)
        assert rewards.shape == (50, 3)

    def test_time_advances(self):
        env = BernoulliEnvironment([0.5], rng=0)
        env.sample_many(5)
        assert env.time == 5

    def test_reset_clears_time(self):
        env = BernoulliEnvironment([0.5], rng=0)
        env.sample_many(5)
        env.reset()
        assert env.time == 0

    def test_deterministic_given_seed(self):
        a = BernoulliEnvironment([0.5, 0.5], rng=3).sample_many(20)
        b = BernoulliEnvironment([0.5, 0.5], rng=3).sample_many(20)
        np.testing.assert_array_equal(a, b)

    def test_extreme_qualities(self):
        env = BernoulliEnvironment([1.0, 0.0], rng=0)
        rewards = env.sample_many(30)
        assert np.all(rewards[:, 0] == 1)
        assert np.all(rewards[:, 1] == 0)

    def test_empirical_mean_close_to_quality(self):
        env = BernoulliEnvironment([0.7, 0.2], rng=0)
        rewards = env.sample_many(5000)
        np.testing.assert_allclose(rewards.mean(axis=0), [0.7, 0.2], atol=0.03)

    def test_sample_many_rejects_non_positive(self):
        env = BernoulliEnvironment([0.5])
        with pytest.raises(ValueError):
            env.sample_many(0)


class TestConvenienceConstructors:
    def test_with_gap_structure(self):
        env = BernoulliEnvironment.with_gap(5, best_quality=0.8, gap=0.3)
        qualities = env.qualities
        assert qualities[0] == pytest.approx(0.8)
        np.testing.assert_allclose(qualities[1:], 0.5)

    def test_with_gap_rejects_gap_above_best(self):
        with pytest.raises(ValueError):
            BernoulliEnvironment.with_gap(3, best_quality=0.4, gap=0.5)

    def test_random_instance_respects_min_gap(self):
        env = BernoulliEnvironment.random_instance(4, min_gap=0.2, rng=0)
        qualities = np.sort(env.qualities)[::-1]
        assert qualities[0] - qualities[1] >= 0.2

    def test_random_instance_single_option(self):
        env = BernoulliEnvironment.random_instance(1, rng=0)
        assert env.num_options == 1


class TestRowwiseBernoulliEnvironment:
    def _environment(self, rng=0):
        from repro.environments import RowwiseBernoulliEnvironment

        qualities = np.array([[0.9, 0.1, 0.5], [0.2, 0.8, 0.5]])
        return RowwiseBernoulliEnvironment(qualities, rng=rng), qualities

    def test_per_row_properties(self):
        env, qualities = self._environment()
        assert env.num_rows == 2
        assert env.num_options == 3
        np.testing.assert_array_equal(env.qualities, qualities)
        np.testing.assert_array_equal(env.best_option, [0, 1])
        np.testing.assert_allclose(env.best_quality, [0.9, 0.8])
        np.testing.assert_allclose(env.quality_gap(), [0.4, 0.3])

    def test_sample_batch_marginals_follow_each_row(self):
        env, qualities = self._environment(rng=1)
        draws = np.stack([env.sample_batch(2) for _ in range(4000)])
        np.testing.assert_allclose(draws.mean(axis=0), qualities, atol=0.03)
        assert env.time == 4000

    def test_sample_batch_requires_exact_row_count(self):
        env, _ = self._environment()
        with pytest.raises(ValueError):
            env.sample_batch(3)

    def test_single_replicate_interface_unavailable(self):
        env, _ = self._environment()
        with pytest.raises(RuntimeError):
            env.sample()
        with pytest.raises(RuntimeError):
            env.sample_many(5)

    def test_from_points_repeats_each_vector(self):
        from repro.environments import RowwiseBernoulliEnvironment

        env = RowwiseBernoulliEnvironment.from_points(
            [[0.9, 0.1], [0.2, 0.8]], replications=3, rng=0
        )
        assert env.num_rows == 6
        np.testing.assert_array_equal(env.qualities[:3], np.tile([0.9, 0.1], (3, 1)))
        np.testing.assert_array_equal(env.qualities[3:], np.tile([0.2, 0.8], (3, 1)))

    def test_from_points_rejects_ragged_vectors(self):
        from repro.environments import RowwiseBernoulliEnvironment

        with pytest.raises(ValueError):
            RowwiseBernoulliEnvironment.from_points([[0.9, 0.1], [0.2]], replications=2)

    def test_rejects_bad_matrices(self):
        from repro.environments import RowwiseBernoulliEnvironment

        with pytest.raises(ValueError):
            RowwiseBernoulliEnvironment(np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            RowwiseBernoulliEnvironment(np.array([[0.5, 1.5]]))

    def test_quality_gap_single_option(self):
        from repro.environments import RowwiseBernoulliEnvironment

        env = RowwiseBernoulliEnvironment(np.array([[0.5], [0.9]]))
        np.testing.assert_array_equal(env.quality_gap(), [0.0, 0.0])

    def test_degenerate_qualities_exact(self):
        from repro.environments import RowwiseBernoulliEnvironment

        env = RowwiseBernoulliEnvironment(np.array([[1.0, 0.0]]), rng=0)
        draws = np.stack([env.sample_batch(1) for _ in range(50)])
        assert np.all(draws[:, 0, 0] == 1)
        assert np.all(draws[:, 0, 1] == 0)


class TestRowwisePrecision:
    """The rowwise environment stores qualities at the engine's precision."""

    def _environment(self, precision=None, rng=0):
        from repro.environments import RowwiseBernoulliEnvironment

        qualities = np.array([[0.9, 0.1, 0.5], [0.2, 0.8, 0.5]])
        return RowwiseBernoulliEnvironment(qualities, rng=rng, precision=precision)

    def test_default_precision_keeps_float64_storage(self):
        assert self._environment().qualities.dtype == np.float64

    def test_float32_narrows_the_stored_matrix(self):
        env = self._environment(precision="float32")
        assert env.qualities.dtype == np.float32

    def test_from_points_threads_precision(self):
        from repro.environments import RowwiseBernoulliEnvironment

        env = RowwiseBernoulliEnvironment.from_points(
            [[0.9, 0.1]], replications=2, rng=0, precision="float32"
        )
        assert env.qualities.dtype == np.float32

    def test_validation_happens_before_narrowing(self):
        from repro.environments import RowwiseBernoulliEnvironment

        with pytest.raises(ValueError):
            RowwiseBernoulliEnvironment(
                np.array([[0.5, 1.5]]), precision="float32"
            )

    def test_float32_draws_follow_the_stored_thresholds(self):
        env = self._environment(precision="float32", rng=3)
        draws = np.stack([env.sample_batch(2) for _ in range(3000)])
        np.testing.assert_allclose(
            draws.mean(axis=0), env.qualities.astype(np.float64), atol=0.04
        )
