"""Tests for correlated-option environments."""

import numpy as np
import pytest

from repro.environments import CorrelatedOptionsEnvironment, ExactlyOneGoodEnvironment


class TestExactlyOneGood:
    def test_rewards_are_one_hot(self):
        env = ExactlyOneGoodEnvironment([0.5, 0.3, 0.2], rng=0)
        rewards = env.sample_many(100)
        np.testing.assert_array_equal(rewards.sum(axis=1), np.ones(100))

    def test_marginals_match_win_probabilities(self):
        env = ExactlyOneGoodEnvironment([0.6, 0.4], rng=0)
        rewards = env.sample_many(5000)
        np.testing.assert_allclose(rewards.mean(axis=0), [0.6, 0.4], atol=0.03)

    def test_qualities_equal_win_probabilities(self):
        env = ExactlyOneGoodEnvironment([0.7, 0.2, 0.1])
        np.testing.assert_allclose(env.qualities, [0.7, 0.2, 0.1])

    def test_rejects_non_distribution(self):
        with pytest.raises(ValueError):
            ExactlyOneGoodEnvironment([0.5, 0.3])


class TestCorrelatedOptions:
    def test_marginals_preserved(self):
        env = CorrelatedOptionsEnvironment([0.7, 0.3], correlation=0.6, rng=0)
        rewards = env.sample_many(6000)
        np.testing.assert_allclose(rewards.mean(axis=0), [0.7, 0.3], atol=0.03)

    def test_positive_correlation_induced(self):
        env = CorrelatedOptionsEnvironment([0.5, 0.5], correlation=0.9, rng=0)
        rewards = env.sample_many(4000).astype(float)
        correlation = np.corrcoef(rewards[:, 0], rewards[:, 1])[0, 1]
        assert correlation > 0.4

    def test_zero_correlation_close_to_independent(self):
        env = CorrelatedOptionsEnvironment([0.5, 0.5], correlation=0.0, rng=0)
        rewards = env.sample_many(4000).astype(float)
        correlation = np.corrcoef(rewards[:, 0], rewards[:, 1])[0, 1]
        assert abs(correlation) < 0.1

    def test_degenerate_qualities_honoured(self):
        env = CorrelatedOptionsEnvironment([1.0, 0.0, 0.5], correlation=0.5, rng=0)
        rewards = env.sample_many(50)
        assert np.all(rewards[:, 0] == 1)
        assert np.all(rewards[:, 1] == 0)

    def test_rejects_correlation_of_one(self):
        with pytest.raises(ValueError):
            CorrelatedOptionsEnvironment([0.5, 0.5], correlation=1.0)

    def test_correlation_property(self):
        env = CorrelatedOptionsEnvironment([0.5, 0.5], correlation=0.25)
        assert env.correlation == pytest.approx(0.25)
