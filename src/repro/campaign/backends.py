"""Backend selection for ``repro campaign --backend inproc|pool|broker``."""

from __future__ import annotations

from typing import Any, Optional

from repro.campaign.broker import DEFAULT_ADDRESS, BrokerBackend
from repro.runtime.executors import ParallelExecutor, SerialExecutor

BACKEND_NAMES = ("inproc", "pool", "broker")
"""The campaign backend spellings the CLI accepts."""


def make_backend(
    name: str,
    *,
    workers: Optional[int] = None,
    brokers: Optional[str] = None,
    min_brokers: int = 1,
    timeout: float = 30.0,
) -> Any:
    """Build the named campaign :class:`~repro.runtime.backend.Backend`.

    ``inproc`` is the in-process :class:`SerialExecutor` (debugging, and the
    bit-identity reference); ``pool`` the multi-process
    :class:`ParallelExecutor` (``workers`` processes); ``broker`` a
    :class:`BrokerBackend` coordinator bound to the ``brokers``
    ``tcp://host:port`` endpoint, waiting for ``min_brokers`` brokers.  All
    three produce bit-identical campaign results — see
    :mod:`repro.campaign.broker`.
    """
    if name == "inproc":
        return SerialExecutor()
    if name == "pool":
        return ParallelExecutor(workers)
    if name == "broker":
        return BrokerBackend(
            brokers if brokers is not None else DEFAULT_ADDRESS,
            min_brokers=min_brokers,
            timeout=timeout,
        )
    raise ValueError(
        f"unknown campaign backend {name!r}; expected one of "
        f"{', '.join(BACKEND_NAMES)}"
    )
