"""Ready-set campaign scheduling over pluggable execution backends.

:class:`CampaignScheduler` walks a validated
:class:`~repro.campaign.graph.Campaign` and runs each node the moment its
dependencies have merged — ready-*set* dispatch, not phase barriers, so an
``analyse`` node over one finished sweep runs while an unrelated ``simulate``
node is still queued.  Nodes of different kinds execute very differently:

* ``simulate`` nodes expand into the request's
  :class:`~repro.runtime.shard.ShardPlan` tasks and run them through
  :func:`~repro.service.requests.execute_request` on the scheduler's
  :class:`~repro.runtime.backend.Backend` — in-process
  :class:`~repro.runtime.executors.SerialExecutor`, the multi-process
  :class:`~repro.runtime.executors.ParallelExecutor`, or the socket
  :class:`~repro.campaign.broker.BrokerBackend` — with every merge passing
  through the scheduler's content-addressed
  :class:`~repro.runtime.store.ResultStore`.  Seed derivation is untouched
  (the plan derives seeds from the request alone), so the metric rows are
  bit-identical on every backend, and a warm store short-circuits the whole
  node without dispatching a single task — which is what makes a killed
  campaign resumable: re-run it against the same store and only the missing
  shards compute.
* ``analyse`` nodes run in the scheduler process: they pool the upstream
  simulate rows and summarise each metric column
  (:func:`~repro.analysis.statistics.summarize_replications`).
* ``report`` nodes collate upstream rows into one node-tagged table plus a
  rendered text report.

The scheduler always routes simulate nodes through the runtime path (a
:class:`SerialExecutor` when no backend is given) rather than the in-process
fused engines, so backend choice can never change a campaign's numbers —
the cross-backend bit-identity contract of ``repro campaign --backend``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.statistics import summarize_replications
from repro.campaign.graph import (
    ANALYSE,
    REPORT,
    SIMULATE,
    Campaign,
    CampaignError,
    CampaignNode,
)
from repro.obs.trace import resolve_tracer
from repro.runtime.executors import SerialExecutor
from repro.runtime.options import ExecutionOptions
from repro.service.requests import execute_request

#: Dispatch order among simultaneously-ready nodes.  Cheap in-process
#: aggregation (analyse/report) drains before the next expensive simulate
#: node starts, so partial results surface as early as possible.  Ties break
#: on topological index, keeping execution order deterministic.
KIND_PRIORITY: Dict[str, int] = {ANALYSE: 0, REPORT: 1, SIMULATE: 2}


@dataclass(frozen=True)
class NodeResult:
    """The merged output of one executed campaign node.

    ``rows`` is the node's result table (plain dicts — the JSON the daemon
    returns); ``text`` is the rendered report for ``report`` nodes.
    """

    node_id: str
    kind: str
    rows: Tuple[Dict[str, Any], ...]
    description: str
    text: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "id": self.node_id,
            "kind": self.kind,
            "description": self.description,
            "rows": [dict(row) for row in self.rows],
        }
        if self.text is not None:
            payload["text"] = self.text
        return payload


@dataclass
class CampaignResult:
    """All node results of one campaign run, in execution order."""

    campaign: Campaign
    node_results: Dict[str, NodeResult] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)

    def __getitem__(self, node_id: str) -> NodeResult:
        return self.node_results[node_id]

    def reports(self) -> List[NodeResult]:
        """The report-node results, in execution order."""
        return [
            self.node_results[node_id]
            for node_id in self.order
            if self.node_results[node_id].kind == REPORT
        ]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (the ``/v1/campaigns`` job result payload)."""
        return {
            "campaign": self.campaign.name,
            "key": self.campaign.key(),
            "order": list(self.order),
            "nodes": [
                self.node_results[node_id].to_dict() for node_id in self.order
            ],
        }


def _numeric_columns(rows: List[Dict[str, Any]]) -> List[str]:
    """Column names holding a number in *every* row, in first-row order."""
    if not rows:
        return []
    names = [
        name
        for name, value in rows[0].items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    ]
    for row in rows[1:]:
        names = [
            name
            for name in names
            if isinstance(row.get(name), (int, float))
            and not isinstance(row.get(name), bool)
        ]
    return names


class CampaignScheduler:
    """Execute a campaign graph on one backend, merging through one store.

    Parameters
    ----------
    backend:
        Any :class:`~repro.runtime.backend.Backend` — ``SerialExecutor``
        (default), ``ParallelExecutor`` or
        :class:`~repro.campaign.broker.BrokerBackend`.  Only simulate nodes
        touch it; analyse/report always run in this process.
    store:
        Optional :class:`~repro.runtime.store.ResultStore`.  With a store,
        completed shards are flushed as they finish and warm entries
        short-circuit recomputation — kill the campaign, re-run it against
        the same store, and it completes from cache.
    on_node:
        Optional ``callback(node, result)`` invoked after each node merges
        (progress reporting).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` (defaults to the process
        tracer, a no-op unless installed).  With tracing on, each run opens
        one ``campaign`` root span keyed by the campaign's content address
        and one ``campaign_node`` span per node — carrying its kind and
        input edges, with shard spans nesting under the simulate nodes —
        so a trace reconstructs the full DAG with per-node latency.
    """

    def __init__(
        self,
        backend: Any = None,
        *,
        store: Any = None,
        on_node: Optional[Callable[[CampaignNode, NodeResult], None]] = None,
        tracer: Any = None,
    ) -> None:
        self._backend = backend if backend is not None else SerialExecutor()
        self._store = store
        self._on_node = on_node
        self._tracer = tracer  # resolved per run, so set_tracer() applies

    def run(self, campaign: Campaign) -> CampaignResult:
        """Run every node of ``campaign``; returns the merged results.

        Dispatch is ready-set: a node enters the ready heap the moment its
        last dependency merges, ordered by :data:`KIND_PRIORITY` then
        topological index — deterministic, and never blocked on an
        unrelated "phase".
        """
        tracer = resolve_tracer(self._tracer)
        traced = bool(getattr(tracer, "enabled", False))
        campaign_key = campaign.key() if traced else ""
        topo_index = {node.id: index for index, node in enumerate(campaign.nodes)}
        waiting = {node.id: len(node.inputs) for node in campaign.nodes}
        dependents = campaign.dependents()
        ready: List[Tuple[int, int, str]] = []
        for node in campaign.nodes:
            if waiting[node.id] == 0:
                heapq.heappush(
                    ready, (KIND_PRIORITY[node.kind], topo_index[node.id], node.id)
                )
        result = CampaignResult(campaign=campaign)
        with tracer.span(
            "campaign",
            campaign_key,
            attributes={"name": campaign.name, "nodes": len(campaign.nodes)},
        ):
            while ready:
                _, _, node_id = heapq.heappop(ready)
                node = campaign.node(node_id)
                # The node span key extends the campaign's content address,
                # so node span ids are deterministic across runs/backends
                # and the recorded `inputs` edges reconstruct the DAG.
                with tracer.span(
                    "campaign_node",
                    f"{campaign_key}/{node_id}",
                    attributes={
                        "node": node_id,
                        "kind": node.kind,
                        "inputs": list(node.inputs),
                    },
                ) as node_span:
                    node_result = self._run_node(
                        node, result, tracer if traced else None
                    )
                    if traced:
                        node_span.set_attribute("rows", len(node_result.rows))
                result.node_results[node_id] = node_result
                result.order.append(node_id)
                if self._on_node is not None:
                    self._on_node(node, node_result)
                for downstream in dependents[node_id]:
                    waiting[downstream] -= 1
                    if waiting[downstream] == 0:
                        kind = campaign.node(downstream).kind
                        heapq.heappush(
                            ready,
                            (KIND_PRIORITY[kind], topo_index[downstream], downstream),
                        )
        return result

    def _run_node(
        self, node: CampaignNode, result: CampaignResult, tracer: Any = None
    ) -> NodeResult:
        if node.kind == SIMULATE:
            return self._run_simulate(node, tracer)
        upstream = [result.node_results[input_id] for input_id in node.inputs]
        if node.kind == ANALYSE:
            return self._run_analyse(node, upstream)
        return self._run_report(node, upstream)

    def _run_simulate(self, node: CampaignNode, tracer: Any = None) -> NodeResult:
        assert node.request is not None
        # Always hand execute_request an executor: the runtime per-point
        # path is the one every backend shares, so in-process, pool and
        # broker runs of the same node are bit-identical by construction.
        options = ExecutionOptions(
            executor=self._backend, store=self._store, tracer=tracer
        )
        request_result = execute_request(node.request, options=options)
        return NodeResult(
            node_id=node.id,
            kind=SIMULATE,
            rows=tuple(request_result.rows),
            description=request_result.description,
        )

    def _run_analyse(
        self, node: CampaignNode, upstream: List[NodeResult]
    ) -> NodeResult:
        pooled: List[Dict[str, Any]] = [
            dict(row) for dep in upstream for row in dep.rows
        ]
        if node.metrics is not None:
            metrics = list(node.metrics)
            for metric in metrics:
                missing = [
                    dep.node_id
                    for dep in upstream
                    if any(metric not in row for row in dep.rows)
                ]
                if missing:
                    raise CampaignError(
                        f"analyse node {node.id!r} asks for metric {metric!r} "
                        f"which is missing from rows of {missing}"
                    )
        else:
            metrics = _numeric_columns(pooled)
            if not metrics:
                raise CampaignError(
                    f"analyse node {node.id!r} found no shared numeric "
                    f"columns in its {len(pooled)} upstream rows"
                )
        rows: List[Dict[str, Any]] = []
        for metric in metrics:
            summary = summarize_replications([float(row[metric]) for row in pooled])
            row: Dict[str, Any] = {"metric": metric}
            row.update(summary.as_dict())
            rows.append(row)
        description = (
            f"analyse over {len(upstream)} input node(s): "
            f"{len(metrics)} metric(s) x {len(pooled)} rows"
        )
        return NodeResult(
            node_id=node.id, kind=ANALYSE, rows=tuple(rows), description=description
        )

    def _run_report(
        self, node: CampaignNode, upstream: List[NodeResult]
    ) -> NodeResult:
        rows: List[Dict[str, Any]] = []
        for dep in upstream:
            for row in dep.rows:
                tagged = {"node": dep.node_id}
                tagged.update(row)
                rows.append(tagged)
        title = node.title or f"Report {node.id}"
        lines = [title, "=" * len(title)]
        for dep in upstream:
            lines.append("")
            lines.append(f"[{dep.kind}] {dep.node_id}: {dep.description}")
            for row in dep.rows:
                cells = ", ".join(f"{key}={value}" for key, value in row.items())
                lines.append(f"  {cells}")
        description = f"report over {len(upstream)} input node(s): {len(rows)} rows"
        return NodeResult(
            node_id=node.id,
            kind=REPORT,
            rows=tuple(rows),
            description=description,
            text="\n".join(lines),
        )


def run_campaign(
    campaign: Campaign,
    *,
    backend: Any = None,
    store: Any = None,
    on_node: Optional[Callable[[CampaignNode, NodeResult], None]] = None,
    tracer: Any = None,
) -> CampaignResult:
    """Convenience wrapper: schedule ``campaign`` on ``backend`` with ``store``."""
    scheduler = CampaignScheduler(backend, store=store, on_node=on_node, tracer=tracer)
    return scheduler.run(campaign)
