"""Socket coordinator/broker backend: shard execution across hosts.

The third campaign backend scales a :class:`~repro.runtime.shard.ShardPlan`
past one machine with nothing but the stdlib.  Topology and handshake:

* The **coordinator** (:class:`BrokerBackend`, created by ``repro campaign
  --backend broker --brokers tcp://HOST:PORT``) binds the given TCP endpoint
  and waits for brokers.
* Each **broker** (``repro broker --coordinator tcp://HOST:PORT``, i.e.
  :func:`run_broker`) dials the coordinator — retrying while it boots — and
  introduces itself with a ``hello`` frame carrying its worker count.
* The coordinator serialises task refs + parameters (:func:`task_to_wire`)
  and streams one ``shard`` frame at a time to each idle broker; the broker
  executes the shard's tasks — in-process, or fanned across a local
  ``ProcessPoolExecutor`` when started with ``--workers K`` — and streams a
  ``result`` frame back.  On ``close()`` the coordinator sends every broker
  a ``shutdown`` frame.

Framing is length-prefixed JSON: a 4-byte big-endian payload length followed
by one UTF-8 JSON object.  Tasks survive the JSON round trip because the
result store canonicalises tuples and lists identically — a broker-computed
row merges under the same content address as a local one — and the
coordinator pairs returned rows with its *own* :class:`Task` objects (by
shard id and task order), so nothing the wire could mangle ever reaches the
store keys.

Fault containment: a broker that crashes or drops its connection forfeits
exactly the one shard it was running — the coordinator requeues that shard
for the next idle broker and carries on.  An ``error`` frame (the task
itself raised) aborts the run instead: tasks are deterministic, so retrying
elsewhere would fail the same way.

Determinism: brokers run the same :func:`~repro.runtime.shard.execute_task`
compute path as every other backend and tasks are execution-invariant, so a
broker campaign is bit-identical to a ``SerialExecutor`` run — at any broker
count, with any shard-to-broker assignment, crashes included.
"""

from __future__ import annotations

import json
import selectors
import socket
import struct
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, get_registry
from repro.obs.trace import current_context, get_tracer, set_ambient_context
from repro.runtime.backend import check_resolvable
from repro.runtime.executors import (
    ShardResults,
    ShardTiming,
    _execute_shard,
    _repro_import_root,
    _worker_initializer,
    resolve_replication,
)
from repro.runtime.shard import Task, execute_task
from repro.utils.logging import get_logger

logger = get_logger("campaign.broker")

_LENGTH = struct.Struct(">I")
MAX_FRAME_BYTES = 64 * 1024 * 1024
"""Upper bound on one frame; a length beyond this means a corrupt stream."""

DEFAULT_ADDRESS = "tcp://127.0.0.1:0"


class BrokerError(RuntimeError):
    """The broker run cannot make progress (no brokers, or a task failed)."""


class BrokerProtocolError(BrokerError):
    """A peer sent bytes that are not valid protocol frames."""


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``tcp://host:port`` into ``(host, port)``."""
    if not address.startswith("tcp://"):
        raise ValueError(f"broker addresses look like tcp://host:port, got {address!r}")
    host, _, port = address[len("tcp://") :].rpartition(":")
    if not host or not port:
        raise ValueError(f"broker addresses look like tcp://host:port, got {address!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"invalid port in broker address {address!r}") from None


def task_to_wire(task: Task) -> Dict[str, Any]:
    """The JSON-able form of one task (what a ``shard`` frame carries)."""
    return {
        "ordinal": task.ordinal,
        "point_index": task.point_index,
        "name": task.name,
        "function_ref": task.function_ref,
        "mode": task.mode,
        "parameters": dict(task.parameters),
        "seeds": list(task.seeds),
        "replicate_offset": task.replicate_offset,
    }


def task_from_wire(payload: Dict[str, Any]) -> Task:
    """Rebuild a :class:`Task` on the broker side of the wire."""
    try:
        return Task(
            ordinal=int(payload["ordinal"]),
            point_index=int(payload["point_index"]),
            name=str(payload["name"]),
            function_ref=str(payload["function_ref"]),
            mode=str(payload["mode"]),
            parameters=dict(payload["parameters"]),
            seeds=tuple(int(seed) for seed in payload["seeds"]),
            replicate_offset=int(payload["replicate_offset"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise BrokerProtocolError(f"malformed task frame: {error}") from None


def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one length-prefixed JSON frame (blocking)."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    blocking = sock.getblocking()
    sock.setblocking(True)
    try:
        sock.sendall(_LENGTH.pack(len(payload)) + payload)
    finally:
        sock.setblocking(blocking)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks: List[bytes] = []
    while count > 0:
        chunk = sock.recv(count)
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Dict[str, Any]:
    """Read one length-prefixed JSON frame (blocking)."""
    length = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))[0]
    if length > MAX_FRAME_BYTES:
        raise BrokerProtocolError(f"frame of {length} bytes exceeds the protocol cap")
    payload = _recv_exact(sock, length)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise BrokerProtocolError(f"frame is not valid JSON: {error}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise BrokerProtocolError(f"frame is not a typed message: {message!r}")
    return message


class _BrokerConnection:
    """Coordinator-side state of one connected broker."""

    def __init__(self, sock: socket.socket, peer: str) -> None:
        self.sock = sock
        self.peer = peer
        self.buffer = b""
        self.ready = False  # hello received
        self.workers = 1
        self.in_flight: Optional[int] = None  # shard id being executed
        self.dispatched_at: float = 0.0  # perf_counter at shard send

    def feed(self) -> List[Dict[str, Any]]:
        """Drain readable bytes; return complete frames (EOF raises)."""
        while True:
            try:
                chunk = self.sock.recv(65536)
            except BlockingIOError:
                break
            if not chunk:
                raise ConnectionError(f"broker {self.peer} closed the connection")
            self.buffer += chunk
            if len(chunk) < 65536:
                break
        frames: List[Dict[str, Any]] = []
        while len(self.buffer) >= _LENGTH.size:
            length = _LENGTH.unpack(self.buffer[: _LENGTH.size])[0]
            if length > MAX_FRAME_BYTES:
                raise BrokerProtocolError(
                    f"frame of {length} bytes from {self.peer} exceeds the "
                    "protocol cap"
                )
            if len(self.buffer) < _LENGTH.size + length:
                break
            payload = self.buffer[_LENGTH.size : _LENGTH.size + length]
            self.buffer = self.buffer[_LENGTH.size + length :]
            try:
                message = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise BrokerProtocolError(
                    f"frame from {self.peer} is not valid JSON: {error}"
                ) from None
            if not isinstance(message, dict) or "type" not in message:
                raise BrokerProtocolError(
                    f"frame from {self.peer} is not a typed message: {message!r}"
                )
            frames.append(message)
        return frames


class BrokerBackend:
    """Coordinator side of the socket backend (a runtime ``Backend``).

    Parameters
    ----------
    address:
        ``tcp://host:port`` endpoint to bind; port ``0`` picks an ephemeral
        port (read the resolved endpoint back from :attr:`address` — tests
        and the CLI print it for brokers to dial).
    num_shards:
        Dispatch granularity — how many shards a plan's pending tasks are
        chunked into.  Finer shards balance better across brokers and bound
        the loss from a broker crash to a smaller slice; it never changes
        results.
    min_brokers:
        Wait for this many connected brokers before dispatching the first
        shard, so a campaign doesn't funnel everything through whichever
        broker happened to dial first.
    timeout:
        Seconds to wait with work pending but **zero** connected brokers
        (at start-up, or after every broker died) before raising
        :class:`BrokerError`.

    The backend accepts brokers at any moment — late brokers join the
    current run mid-stream — and connections persist across ``run_shards``
    calls, so one fleet of brokers serves every simulate node of a campaign.
    Call :meth:`close` (or use the backend as a context manager) to send
    brokers a ``shutdown`` frame and release the listening socket.
    """

    def __init__(
        self,
        address: str = DEFAULT_ADDRESS,
        *,
        num_shards: int = 16,
        min_brokers: int = 1,
        timeout: float = 30.0,
    ) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if min_brokers <= 0:
            raise ValueError(f"min_brokers must be positive, got {min_brokers}")
        host, port = parse_address(address)
        self.num_shards = num_shards
        self.min_brokers = min_brokers
        self.timeout = timeout
        self._listener = socket.create_server((host, port))
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        self._brokers: List[_BrokerConnection] = []
        self._closed = False
        #: Broker-measured timing of the most recently yielded shard (read
        #: by the driver right after each ``run_shards`` yield).
        self.last_shard_timing: Optional[ShardTiming] = None
        registry = get_registry()
        self._in_flight_gauge = registry.gauge(
            "repro_shards_in_flight",
            "Shards currently submitted to an execution backend.",
        )
        self._completed_counter = registry.counter(
            "repro_shards_completed_total",
            "Shards completed, by execution backend.",
        )
        self._requeue_counter = registry.counter(
            "repro_broker_requeues_total",
            "Shards requeued after a broker dropped its connection.",
        )
        self._dispatch_histogram = registry.histogram(
            "repro_shard_dispatch_overhead_seconds",
            "Parent-side shard latency minus worker-measured wall time "
            "(pickling, pool queueing, result transfer).",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )

    @property
    def address(self) -> str:
        """The bound ``tcp://host:port`` endpoint brokers should dial."""
        host, port = self._listener.getsockname()[:2]
        return f"tcp://{host}:{port}"

    def __enter__(self) -> "BrokerBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut down connected brokers and release the listening socket."""
        if self._closed:
            return
        self._closed = True
        # _drop mutates self._brokers; iterate over a copy or every other
        # broker is skipped and never told to shut down.
        for broker in list(self._brokers):
            try:
                send_frame(broker.sock, {"type": "shutdown"})
            except OSError:
                pass
            self._drop(broker)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        self._selector.close()

    def _drop(self, broker: _BrokerConnection) -> None:
        try:
            self._selector.unregister(broker.sock)
        except (KeyError, ValueError):
            pass
        try:
            broker.sock.close()
        except OSError:
            pass
        if broker in self._brokers:
            self._brokers.remove(broker)

    def _accept(self) -> None:
        try:
            sock, peer_address = self._listener.accept()
        except (BlockingIOError, OSError):
            return
        sock.setblocking(False)
        broker = _BrokerConnection(sock, f"{peer_address[0]}:{peer_address[1]}")
        self._selector.register(sock, selectors.EVENT_READ, broker)
        self._brokers.append(broker)

    def _ready_brokers(self) -> List[_BrokerConnection]:
        return [
            broker
            for broker in self._brokers
            if broker.ready and broker.in_flight is None
        ]

    def run_shards(
        self, shards: Sequence[Sequence[Task]], replication: Callable
    ) -> Iterator[ShardResults]:
        """Stream shards to idle brokers, yielding each result as it lands.

        A broker that disconnects mid-shard forfeits exactly that shard —
        it returns to the queue for the next idle broker.  Result rows are
        paired with this process's own :class:`Task` objects, so the store
        merge never depends on wire round-trip fidelity.
        """
        if self._closed:
            raise BrokerError("this BrokerBackend is closed")
        if not shards:
            return
        check_resolvable(replication, "BrokerBackend")
        # A broker still marked busy here belongs to an abandoned earlier
        # run; its eventual result frame would be misattributed, so drop it
        # (its run_broker loop sees the hang-up and exits cleanly).
        for broker in list(self._brokers):
            if broker.in_flight is not None:
                self._drop(broker)
        shard_tasks: Dict[int, List[Task]] = {
            shard_id: list(shard) for shard_id, shard in enumerate(shards)
        }
        pending: Deque[int] = deque(shard_tasks)
        outstanding = len(shard_tasks)
        # The min_brokers gate only delays the *first* dispatch; once enough
        # brokers have shown up it stays open for the rest of the run even
        # if some of them later die.
        gate_open = self._ready_count() >= self.min_brokers
        last_progress = time.monotonic()
        while outstanding > 0:
            if not gate_open and self._ready_count() >= self.min_brokers:
                gate_open = True
                last_progress = time.monotonic()
            if gate_open:
                self._dispatch(pending, shard_tasks)
            in_flight = sum(
                1 for broker in self._brokers if broker.in_flight is not None
            )
            if in_flight == 0 and time.monotonic() - last_progress > self.timeout:
                raise BrokerError(
                    f"no broker progress for {self.timeout:.0f}s with "
                    f"{outstanding} shard(s) outstanding "
                    f"({self._ready_count()} broker(s) connected, "
                    f"{self.min_brokers} required); start brokers with "
                    f"`repro broker --coordinator {self.address}`"
                )
            for key, _ in self._selector.select(timeout=0.05):
                if key.data is None:
                    self._accept()
                    continue
                broker: _BrokerConnection = key.data
                try:
                    frames = broker.feed()
                except (ConnectionError, OSError):
                    # At most this broker's one in-flight shard is lost;
                    # requeue it and keep going on the survivors.
                    if broker.in_flight is not None:
                        pending.appendleft(broker.in_flight)
                        self._in_flight_gauge.dec(backend="broker")
                        self._record_requeue(broker, broker.in_flight)
                    self._drop(broker)
                    continue
                for frame in frames:
                    done = self._handle(broker, frame, shard_tasks)
                    if done is not None:
                        outstanding -= 1
                        last_progress = time.monotonic()
                        yield done

    def _ready_count(self) -> int:
        return sum(1 for broker in self._brokers if broker.ready)

    def _record_requeue(self, broker: _BrokerConnection, shard_id: int) -> None:
        """Structured accounting of one dropped-connection shard requeue."""
        in_flight = sum(
            1 for other in self._brokers if other.in_flight is not None
        )
        self._requeue_counter.inc()
        logger.warning(
            "broker_requeue broker=%s shard=%s in_flight=%d",
            broker.peer,
            shard_id,
            in_flight,
        )
        tracer = get_tracer()
        if getattr(tracer, "enabled", False):
            tracer.event(
                "broker_requeue",
                {"broker": broker.peer, "shard": shard_id, "in_flight": in_flight},
            )

    def _dispatch(
        self, pending: Deque[int], shard_tasks: Dict[int, List[Task]]
    ) -> None:
        # The coordinator's span context rides in every shard frame so
        # broker-side events join the campaign trace.
        context = current_context()
        for broker in self._ready_brokers():
            if not pending:
                return
            shard_id = pending.popleft()
            message = {
                "type": "shard",
                "shard": shard_id,
                "tasks": [task_to_wire(task) for task in shard_tasks[shard_id]],
            }
            if context is not None:
                message["trace"] = {
                    "trace_id": context.trace_id,
                    "span_id": context.span_id,
                }
            try:
                send_frame(broker.sock, message)
            except OSError:
                pending.appendleft(shard_id)
                self._record_requeue(broker, shard_id)
                self._drop(broker)
                continue
            broker.in_flight = shard_id
            broker.dispatched_at = time.perf_counter()
            self._in_flight_gauge.inc(backend="broker")

    def _handle(
        self,
        broker: _BrokerConnection,
        frame: Dict[str, Any],
        shard_tasks: Dict[int, List[Task]],
    ) -> Optional[ShardResults]:
        kind = frame.get("type")
        if kind == "hello":
            broker.ready = True
            broker.workers = max(1, int(frame.get("workers", 1)))
            return None
        if kind == "error":
            raise BrokerError(
                f"broker {broker.peer} failed shard {frame.get('shard')}: "
                f"{frame.get('message')}"
            )
        if kind != "result":
            raise BrokerProtocolError(
                f"unexpected {kind!r} frame from broker {broker.peer}"
            )
        shard_id = frame.get("shard")
        if shard_id != broker.in_flight:
            raise BrokerProtocolError(
                f"broker {broker.peer} answered shard {shard_id!r} but was "
                f"running {broker.in_flight!r}"
            )
        broker.in_flight = None
        self._in_flight_gauge.dec(backend="broker")
        self._completed_counter.inc(backend="broker")
        elapsed = time.perf_counter() - broker.dispatched_at
        timing = frame.get("timing")
        if isinstance(timing, dict) and "wall_s" in timing:
            # Broker-measured compute time; the remainder of the round trip
            # is wire + scheduling overhead.
            self.last_shard_timing = {
                "wall_s": float(timing.get("wall_s", 0.0)),
                "cpu_s": float(timing.get("cpu_s", 0.0)),
            }
            self._dispatch_histogram.observe(
                max(0.0, elapsed - self.last_shard_timing["wall_s"]),
                backend="broker",
            )
        else:
            self.last_shard_timing = {"wall_s": elapsed, "cpu_s": 0.0}
            self._dispatch_histogram.observe(0.0, backend="broker")
        tasks = shard_tasks[shard_id]
        rows_per_task = frame.get("rows")
        if not isinstance(rows_per_task, list) or len(rows_per_task) != len(tasks):
            raise BrokerProtocolError(
                f"broker {broker.peer} returned "
                f"{len(rows_per_task) if isinstance(rows_per_task, list) else '?'} "
                f"row blocks for the {len(tasks)} tasks of shard {shard_id}"
            )
        return [
            (task, [dict(row) for row in rows])
            for task, rows in zip(tasks, rows_per_task)
        ]


def run_broker(
    coordinator: str,
    *,
    workers: int = 1,
    max_shards: Optional[int] = None,
    connect_timeout: float = 30.0,
    on_shard: Optional[Callable[[int, int], None]] = None,
) -> int:
    """Dial ``coordinator`` and execute shards until told to shut down.

    This is the ``repro broker`` entry point.  With ``workers > 1`` the
    shard's tasks fan out across a local ``ProcessPoolExecutor``; otherwise
    they run in this process.  ``max_shards`` makes the broker drop its
    connection after that many shards — the deterministic stand-in for a
    crash that the fault-tolerance tests (and chaos drills) use.  Returns
    the number of shards executed.
    """
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    host, port = parse_address(coordinator)
    deadline = time.monotonic() + connect_timeout
    sock: Optional[socket.socket] = None
    while sock is None:
        try:
            sock = socket.create_connection((host, port), timeout=connect_timeout)
        except OSError:
            if time.monotonic() >= deadline:
                raise BrokerError(
                    f"could not reach coordinator at {coordinator} within "
                    f"{connect_timeout:.0f}s"
                ) from None
            time.sleep(0.05)
    pool: Optional[ProcessPoolExecutor] = None
    if workers > 1:
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_initializer,
            initargs=((_repro_import_root(),),),
        )
    executed = 0
    try:
        send_frame(sock, {"type": "hello", "workers": workers})
        while True:
            try:
                message = recv_frame(sock)
            except ConnectionError:
                return executed  # coordinator went away; nothing in flight
            kind = message.get("type")
            if kind == "shutdown":
                return executed
            if kind != "shard":
                raise BrokerProtocolError(f"unexpected {kind!r} frame from coordinator")
            trace = message.get("trace")
            if isinstance(trace, dict):
                # Adopt the coordinator's span context so events emitted on
                # this side of the wire join the campaign trace.
                set_ambient_context(trace.get("trace_id"), trace.get("span_id"))
            tasks = [task_from_wire(payload) for payload in message["tasks"]]
            wall_start = time.perf_counter()
            cpu_start = time.process_time()
            try:
                rows_per_task = _execute_tasks(tasks, pool)
            except Exception as error:  # noqa: BLE001 - forwarded to coordinator
                send_frame(
                    sock,
                    {
                        "type": "error",
                        "shard": message["shard"],
                        "message": f"{type(error).__name__}: {error}",
                    },
                )
                return executed
            send_frame(
                sock,
                {
                    "type": "result",
                    "shard": message["shard"],
                    "rows": rows_per_task,
                    "timing": {
                        "wall_s": time.perf_counter() - wall_start,
                        "cpu_s": time.process_time() - cpu_start,
                    },
                },
            )
            executed += 1
            if on_shard is not None:
                on_shard(executed, len(tasks))
            if max_shards is not None and executed >= max_shards:
                # Simulated crash: vanish without a goodbye, exactly like a
                # dropped connection.  The coordinator requeues nothing (the
                # last result was already sent) or at most one shard.
                return executed
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        try:
            sock.close()
        except OSError:
            pass


def _execute_tasks(
    tasks: List[Task], pool: Optional[ProcessPoolExecutor]
) -> List[List[Dict[str, float]]]:
    """Run one shard's tasks (in-process or on the local pool), in order."""
    if pool is None:
        return [
            execute_task(task, resolve_replication(task.function_ref))
            for task in tasks
        ]
    futures = [pool.submit(_execute_shard, [task]) for task in tasks]
    return [future.result()[0][1] for future in futures]
