"""Campaign compute graphs: DAG scheduling over pluggable backends.

A campaign represents a whole paper reproduction — every simulate workload,
the analyses over their outputs and the reports collating them — as one
typed compute DAG (:mod:`repro.campaign.graph`) scheduled with ready-set
dispatch (:mod:`repro.campaign.scheduler`) over any
:class:`~repro.runtime.backend.Backend`: in-process, the multi-process pool,
or the multi-host socket coordinator/broker backend
(:mod:`repro.campaign.broker`).  All backends merge through the same
content-addressed :class:`~repro.runtime.store.ResultStore` and produce
bit-identical results; a warm store short-circuits completed nodes, making
kill-and-resume campaign-wide.

Entry points: ``repro campaign --spec FILE --backend inproc|pool|broker``,
``repro broker --coordinator tcp://HOST:PORT``, and ``POST /v1/campaigns``
on the service daemon.
"""

from repro.campaign.backends import BACKEND_NAMES, make_backend
from repro.campaign.broker import (
    BrokerBackend,
    BrokerError,
    BrokerProtocolError,
    parse_address,
    run_broker,
)
from repro.campaign.graph import (
    ALLOWED_INPUT_KINDS,
    NODE_KINDS,
    Campaign,
    CampaignError,
    CampaignNode,
    campaign_from_spec,
)
from repro.campaign.scheduler import (
    CampaignResult,
    CampaignScheduler,
    NodeResult,
    run_campaign,
)

__all__ = [
    "ALLOWED_INPUT_KINDS",
    "BACKEND_NAMES",
    "BrokerBackend",
    "BrokerError",
    "BrokerProtocolError",
    "Campaign",
    "CampaignError",
    "CampaignNode",
    "CampaignResult",
    "CampaignScheduler",
    "NODE_KINDS",
    "NodeResult",
    "campaign_from_spec",
    "make_backend",
    "parse_address",
    "run_broker",
    "run_campaign",
]
