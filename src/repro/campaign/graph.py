"""Typed compute DAG of an experiment campaign.

A *campaign* is a whole reproduction run — many simulate workloads, the
analyses over their outputs and the reports that collate the analyses — as
one dependency-aware graph instead of a flat list of jobs.  Three node kinds
exist, and the edges they may draw are part of the type:

``simulate``
    A leaf workload: one validated
    :class:`~repro.service.requests.SimulationRequest` (the exact payload a
    ``POST /v1/jobs`` submission carries).  Takes no inputs; at execution
    time it expands into the request's
    :class:`~repro.runtime.shard.ShardPlan` tasks.
``analyse``
    Aggregates the result rows of one or more upstream ``simulate`` nodes
    into per-metric summary statistics.
``report``
    Collates upstream ``analyse`` (or raw ``simulate``) outputs into one
    tagged table plus a rendered text report.

:func:`campaign_from_spec` builds a validated :class:`Campaign` from plain
JSON-able data (the ``POST /v1/campaigns`` payload and the ``repro campaign
--spec`` file format), normalising simulate requests through the shared
request layer so equivalent campaigns share one content address
(:meth:`Campaign.key`) — which is what lets the daemon's job queue
deduplicate identical in-flight campaign submissions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.runtime.store import canonical_json
from repro.service.requests import (
    RequestError,
    SimulationRequest,
    request_from_dict,
)

SIMULATE = "simulate"
ANALYSE = "analyse"
REPORT = "report"

NODE_KINDS = (SIMULATE, ANALYSE, REPORT)

#: Which upstream kinds each node kind may depend on.  ``simulate`` nodes are
#: sources; ``analyse`` digests raw simulation output; ``report`` collates
#: analyses (or taps raw output directly).  Because no kind may depend on
#: ``report`` and ``simulate`` accepts no inputs, every well-typed campaign
#: is acyclic by construction — the explicit cycle check in
#: :func:`campaign_from_spec` guards future kinds, not today's.
ALLOWED_INPUT_KINDS: Dict[str, Tuple[str, ...]] = {
    SIMULATE: (),
    ANALYSE: (SIMULATE,),
    REPORT: (SIMULATE, ANALYSE),
}

_NODE_FIELDS: Dict[str, Tuple[str, ...]] = {
    SIMULATE: ("id", "kind", "request"),
    ANALYSE: ("id", "kind", "inputs", "metrics"),
    REPORT: ("id", "kind", "inputs", "title"),
}


class CampaignError(ValueError):
    """A campaign spec is malformed or names an impossible graph."""


@dataclass(frozen=True)
class CampaignNode:
    """One typed node of a campaign graph.

    ``request`` is set for ``simulate`` nodes (already validated and
    canonicalised), ``metrics`` optionally restricts an ``analyse`` node to
    named columns, and ``title`` labels a ``report``.
    """

    id: str
    kind: str
    inputs: Tuple[str, ...] = ()
    request: Optional[SimulationRequest] = None
    metrics: Optional[Tuple[str, ...]] = None
    title: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """The canonical JSON-able form of this node (spec round-trip)."""
        payload: Dict[str, Any] = {"id": self.id, "kind": self.kind}
        if self.kind == SIMULATE:
            assert self.request is not None
            payload["request"] = self.request.to_dict()
        else:
            payload["inputs"] = list(self.inputs)
            if self.metrics is not None:
                payload["metrics"] = list(self.metrics)
            if self.title is not None:
                payload["title"] = self.title
        return payload


@dataclass(frozen=True)
class Campaign:
    """A validated campaign: named, typed, acyclic, content-addressed.

    ``nodes`` are stored in topological order (inputs before dependents), so
    iterating them *is* a valid serial schedule; the ready-set scheduler
    only improves on it, never needs to re-sort.
    """

    name: str
    nodes: Tuple[CampaignNode, ...]

    #: Job-queue routing tag (mirrors ``SimulationRequest.kind``).
    kind = "campaign"

    def node(self, node_id: str) -> CampaignNode:
        """The node with ``node_id`` (:class:`KeyError` when absent)."""
        for node in self.nodes:
            if node.id == node_id:
                return node
        raise KeyError(node_id)

    def dependents(self) -> Dict[str, Tuple[str, ...]]:
        """Node id -> ids of the nodes that consume its output."""
        downstream: Dict[str, List[str]] = {node.id: [] for node in self.nodes}
        for node in self.nodes:
            for upstream in node.inputs:
                downstream[upstream].append(node.id)
        return {key: tuple(value) for key, value in downstream.items()}

    def simulate_nodes(self) -> Tuple[CampaignNode, ...]:
        """The campaign's simulate nodes, in topological (= spec) order."""
        return tuple(node for node in self.nodes if node.kind == SIMULATE)

    def to_dict(self) -> Dict[str, Any]:
        """The canonical spec that round-trips through :func:`campaign_from_spec`."""
        return {
            "name": self.name,
            "nodes": [node.to_dict() for node in self.nodes],
        }

    def key(self) -> str:
        """Content address: SHA-256 of the canonical spec JSON.

        Simulate requests inside the spec are canonicalised exactly as
        stand-alone job submissions are, so two spellings of the same
        campaign (reordered fields, default values made explicit) share one
        key and deduplicate onto one running job.
        """
        payload = canonical_json({"kind": self.kind, "spec": self.to_dict()})
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self.nodes)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CampaignError(message)


def _string_list(name: str, values: Any, *, minimum: int = 1) -> List[str]:
    _require(
        isinstance(values, (list, tuple))
        and len(values) >= minimum
        and all(isinstance(value, str) and value for value in values),
        f"{name} must be a list of at least {minimum} non-empty strings, "
        f"got {values!r}",
    )
    return [str(value) for value in values]


def _parse_node(index: int, payload: Any) -> CampaignNode:
    _require(
        isinstance(payload, Mapping),
        f"node #{index} must be a JSON object, got {payload!r}",
    )
    fields = dict(payload)
    node_id = fields.get("id")
    _require(
        isinstance(node_id, str) and bool(node_id),
        f"node #{index} needs a non-empty string 'id', got {node_id!r}",
    )
    kind = fields.get("kind")
    _require(
        kind in NODE_KINDS,
        f"node {node_id!r} has unknown kind {kind!r}; "
        f"expected one of {', '.join(NODE_KINDS)}",
    )
    allowed = _NODE_FIELDS[kind]
    unknown = sorted(name for name in fields if name not in allowed)
    _require(
        not unknown,
        f"node {node_id!r} has unknown fields {unknown}; "
        f"allowed for {kind}: {', '.join(allowed)}",
    )
    if kind == SIMULATE:
        _require(
            isinstance(fields.get("request"), Mapping),
            f"simulate node {node_id!r} needs a 'request' object "
            "(the same payload POST /v1/jobs accepts)",
        )
        try:
            request = request_from_dict(fields["request"])
        except RequestError as error:
            raise CampaignError(
                f"simulate node {node_id!r} has an invalid request: {error}"
            ) from None
        return CampaignNode(id=node_id, kind=SIMULATE, request=request)
    inputs = tuple(
        _string_list(f"{kind} node {node_id!r} 'inputs'", fields.get("inputs"))
    )
    _require(
        len(set(inputs)) == len(inputs),
        f"{kind} node {node_id!r} lists duplicate inputs {list(inputs)}",
    )
    metrics: Optional[Tuple[str, ...]] = None
    if kind == ANALYSE and fields.get("metrics") is not None:
        metrics = tuple(
            _string_list(f"analyse node {node_id!r} 'metrics'", fields["metrics"])
        )
    title: Optional[str] = None
    if kind == REPORT and fields.get("title") is not None:
        _require(
            isinstance(fields["title"], str),
            f"report node {node_id!r} 'title' must be a string",
        )
        title = fields["title"]
    return CampaignNode(
        id=node_id, kind=kind, inputs=inputs, metrics=metrics, title=title
    )


def _topological_order(nodes: List[CampaignNode]) -> List[CampaignNode]:
    """Kahn's algorithm, stable in spec order; raises on a cycle."""
    by_id = {node.id: node for node in nodes}
    remaining = {node.id: len(node.inputs) for node in nodes}
    dependents: Dict[str, List[str]] = {node.id: [] for node in nodes}
    for node in nodes:
        for upstream in node.inputs:
            dependents[upstream].append(node.id)
    ready = [node.id for node in nodes if remaining[node.id] == 0]
    order: List[CampaignNode] = []
    while ready:
        node_id = ready.pop(0)
        order.append(by_id[node_id])
        for downstream in dependents[node_id]:
            remaining[downstream] -= 1
            if remaining[downstream] == 0:
                ready.append(downstream)
    if len(order) != len(nodes):
        stuck = sorted(node_id for node_id, count in remaining.items() if count > 0)
        raise CampaignError(f"campaign graph has a cycle involving {stuck}")
    return order


def campaign_from_spec(payload: Any) -> Campaign:
    """Build a validated :class:`Campaign` from a JSON-able spec.

    The spec is ``{"name": <str>, "nodes": [<node>, ...]}``; each node is
    ``{"id", "kind", ...}`` with the kind-specific fields documented on
    :class:`CampaignNode`.  Unknown fields anywhere are rejected — a
    silently-dropped typo would run a different campaign than the one
    submitted.  Raises :class:`CampaignError` (a ``ValueError``) on any
    problem, which the daemon maps to HTTP 400.
    """
    _require(isinstance(payload, Mapping), "campaign spec must be a JSON object")
    fields = dict(payload)
    unknown = sorted(name for name in fields if name not in ("name", "nodes"))
    _require(
        not unknown,
        f"unknown campaign fields {unknown}; allowed: name, nodes",
    )
    name = fields.get("name", "campaign")
    _require(
        isinstance(name, str) and bool(name),
        f"campaign 'name' must be a non-empty string, got {name!r}",
    )
    raw_nodes = fields.get("nodes")
    _require(
        isinstance(raw_nodes, (list, tuple)) and len(raw_nodes) > 0,
        "campaign 'nodes' must be a non-empty list",
    )
    nodes = [_parse_node(index, node) for index, node in enumerate(raw_nodes)]
    seen: Dict[str, str] = {}
    for node in nodes:
        _require(node.id not in seen, f"duplicate node id {node.id!r}")
        seen[node.id] = node.kind
    for node in nodes:
        for upstream in node.inputs:
            _require(
                upstream in seen,
                f"{node.kind} node {node.id!r} depends on unknown node "
                f"{upstream!r}",
            )
            _require(
                upstream != node.id,
                f"node {node.id!r} cannot depend on itself",
            )
            _require(
                seen[upstream] in ALLOWED_INPUT_KINDS[node.kind],
                f"{node.kind} node {node.id!r} cannot consume "
                f"{seen[upstream]} node {upstream!r}; allowed input kinds: "
                f"{', '.join(ALLOWED_INPUT_KINDS[node.kind]) or 'none'}",
            )
    return Campaign(name=name, nodes=tuple(_topological_order(nodes)))
