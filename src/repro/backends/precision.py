"""Dtype discipline for the vectorised engines: the :class:`Precision` config.

A :class:`Precision` names the storage dtypes of an engine's hot state — the
``(R, m)`` count matrices, the ``(R, N)`` choice matrices and the recorded
trajectory tensors.  Two presets exist:

* ``float64`` (the default) — ``float64`` floats, ``int64`` counts.  This is
  bit-identical to the historical behaviour: the golden fixtures pass
  unchanged.
* ``float32`` — ``float32`` floats, ``int32`` counts.  Roughly halves the
  per-cell footprint of every stored state matrix (17 bytes per recorded
  trajectory cell-step drop to 9; see ``benchmarks/test_bench_backends.py``).

The dtype contract (documented in the README's "Backends & precision"
section): *random draws always consume the generator stream in float64*,
regardless of precision — only what the engines **store** changes dtype.
Consequently the dynamics themselves are unchanged under ``float32``; what is
rounded is the recorded popularity trajectory (and, for the rowwise sweep
environment, the stored quality matrix, whose rounding perturbs reward
thresholds at the 1e-7 level).  Statistical equivalence between the two
precisions is pinned by ``tests/property/test_dtype_invariance.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np


@dataclass(frozen=True)
class Precision:
    """Storage dtypes for one engine instance.

    Attributes
    ----------
    name:
        The canonical spelling used by ``--dtype`` flags and request specs.
    float_dtype:
        Dtype of stored popularity / quality matrices.
    int_dtype:
        Dtype of stored count / choice matrices.
    """

    name: str
    float_dtype: np.dtype
    int_dtype: np.dtype

    @property
    def is_default(self) -> bool:
        """Whether this is the bit-identical historical precision."""
        return self.name == "float64"

    def check_count_value(self, value: int, name: str) -> int:
        """Validate that ``value`` fits the integer storage dtype.

        Raises :class:`OverflowError` otherwise — an ``int32`` engine must
        refuse a population it cannot count rather than silently wrap.
        """
        value = int(value)
        limit = int(np.iinfo(self.int_dtype).max)
        if value > limit:
            raise OverflowError(
                f"{name}={value} exceeds the {np.dtype(self.int_dtype).name} "
                f"storage limit {limit}; use the float64/int64 precision"
            )
        return value


DEFAULT_PRECISION = Precision(
    name="float64", float_dtype=np.dtype(np.float64), int_dtype=np.dtype(np.int64)
)

PRECISIONS = {
    "float64": DEFAULT_PRECISION,
    "float32": Precision(
        name="float32", float_dtype=np.dtype(np.float32), int_dtype=np.dtype(np.int32)
    ),
}
"""Registered precisions, keyed by their ``--dtype`` spelling."""

PrecisionLike = Union[None, str, Precision]
"""Anything :func:`resolve_precision` accepts."""


def resolve_precision(precision: PrecisionLike = None) -> Precision:
    """Normalise ``None`` / a name / a :class:`Precision` to a :class:`Precision`."""
    if precision is None:
        return DEFAULT_PRECISION
    if isinstance(precision, Precision):
        return precision
    if isinstance(precision, str):
        try:
            return PRECISIONS[precision]
        except KeyError:
            raise ValueError(
                f"unknown precision {precision!r}; expected one of "
                f"{', '.join(sorted(PRECISIONS))}"
            ) from None
    raise TypeError(
        f"precision must be None, a name or a Precision; got {type(precision).__name__}"
    )
