"""The array-namespace seam: one :class:`ArrayBackend` per array library.

The vectorised engines never import an accelerator library directly; they go
through a backend object (Array-API pattern) that bundles

* ``xp`` — the array namespace itself (``numpy``, ``cupy`` or ``torch``'s
  numpy-compatible layer), used for the hot-path array ops;
* :meth:`ArrayBackend.rng` — a seeded generator honouring the repository's
  :mod:`repro.utils.rng` seeding contract (an integer seed reproduces the
  same stream on every run of the same backend);
* :meth:`ArrayBackend.asarray` / :meth:`ArrayBackend.to_numpy` — the device
  boundary, so trajectories and metric rows always come back as NumPy.

The default :class:`~repro.backends.numpy_backend.NumpyBackend` is a pure
pass-through (``xp is numpy`` and ``rng`` *is* :func:`repro.utils.rng.ensure_rng`),
which is what keeps the refactored engines bit-identical to their pre-seam
behaviour.  Optional backends are import-guarded: constructing one without
the library installed raises :class:`BackendUnavailableError` with an
actionable message, and nothing in the default path imports them.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.utils.rng import RngLike


class BackendUnavailableError(RuntimeError):
    """A named backend's library is not importable in this environment."""


class ArrayBackend(abc.ABC):
    """One array library, wrapped behind the seam the engines call through."""

    #: Canonical spelling used by ``--backend`` flags and request specs.
    name: str = ""

    @property
    @abc.abstractmethod
    def xp(self) -> Any:
        """The array namespace module (``numpy``-compatible)."""

    @abc.abstractmethod
    def rng(self, rng: RngLike = None):
        """A seeded generator for this backend.

        Accepts the :data:`~repro.utils.rng.RngLike` union.  For the NumPy
        backend this is exactly :func:`~repro.utils.rng.ensure_rng`; other
        backends accept integer seeds (and ``None``) and derive their device
        stream from them, so a stored integer seed reproduces the run on the
        same backend.
        """

    @abc.abstractmethod
    def asarray(self, array: Any, dtype: Any = None) -> Any:
        """Move/convert ``array`` into this backend's namespace."""

    @abc.abstractmethod
    def to_numpy(self, array: Any) -> np.ndarray:
        """Copy ``array`` back to host NumPy (no-op for the NumPy backend)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
