"""Backend lookup: ``get_namespace(name)`` and availability reporting."""

from __future__ import annotations

from typing import Dict, List, Union

from repro.backends.base import ArrayBackend, BackendUnavailableError
from repro.backends.numpy_backend import NumpyBackend

BACKENDS = ("numpy", "cupy", "torch")
"""The backend names ``--backend`` accepts (optional ones may be unavailable)."""

DEFAULT_BACKEND_NAME = "numpy"

_instances: Dict[str, ArrayBackend] = {}

BackendLike = Union[None, str, ArrayBackend]
"""Anything :func:`get_namespace` accepts."""


def get_namespace(backend: BackendLike = None) -> ArrayBackend:
    """Resolve a backend name (or instance, or ``None``) to an :class:`ArrayBackend`.

    ``None`` and ``"numpy"`` return the shared NumPy backend.  Optional
    backends are imported lazily and cached; naming one whose library is not
    installed raises :class:`~repro.backends.base.BackendUnavailableError`
    (never an :class:`ImportError` mid-simulation).
    """
    if isinstance(backend, ArrayBackend):
        return backend
    if backend is None:
        backend = DEFAULT_BACKEND_NAME
    if not isinstance(backend, str):
        raise TypeError(
            f"backend must be None, a name or an ArrayBackend; got "
            f"{type(backend).__name__}"
        )
    if backend in _instances:
        return _instances[backend]
    if backend == "numpy":
        instance: ArrayBackend = NumpyBackend()
    elif backend == "cupy":
        from repro.backends.cupy_backend import CupyBackend

        instance = CupyBackend()
    elif backend == "torch":
        from repro.backends.torch_backend import TorchBackend

        instance = TorchBackend()
    else:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    _instances[backend] = instance
    return instance


def available_backends() -> List[str]:
    """The subset of :data:`BACKENDS` whose libraries import in this environment."""
    names = []
    for name in BACKENDS:
        try:
            get_namespace(name)
        except BackendUnavailableError:
            continue
        names.append(name)
    return names
