"""The default backend: plain NumPy, bit-identical to the pre-seam engines."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backends.base import ArrayBackend
from repro.utils.rng import RngLike, ensure_rng


class NumpyBackend(ArrayBackend):
    """Pass-through backend over :mod:`numpy`.

    ``xp`` is the ``numpy`` module itself and :meth:`rng` is exactly
    :func:`repro.utils.rng.ensure_rng`, so an engine constructed on this
    backend consumes the random stream identically to the pre-seam code —
    the property the golden-fixture tests pin.
    """

    name = "numpy"

    @property
    def xp(self) -> Any:
        return np

    def rng(self, rng: RngLike = None) -> np.random.Generator:
        return ensure_rng(rng)

    def asarray(self, array: Any, dtype: Any = None) -> np.ndarray:
        return np.asarray(array, dtype=dtype)

    def to_numpy(self, array: Any) -> np.ndarray:
        return np.asarray(array)
