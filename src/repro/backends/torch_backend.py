"""Optional PyTorch backend (import-guarded; CPU or CUDA tensors).

The module imports cleanly without torch — :data:`HAS_TORCH` is then
``False`` and constructing :class:`TorchBackend` raises
:class:`~repro.backends.base.BackendUnavailableError`.  Nothing in the
default NumPy path touches this module.

Determinism caveat (also in the README): torch's Philox generator differs
from NumPy's PCG64, so equal integer seeds give *different* streams than the
NumPy backend — reproducibility holds per backend, not across backends.
Count distributions the engines need (``multinomial`` counts, array-``p``
``binomial``) have no vectorised torch equivalent, so they are drawn on the
host from an identically-seeded NumPy generator and transferred; the hot
array math runs on torch tensors (``device`` selects CPU or CUDA).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backends.base import ArrayBackend, BackendUnavailableError
from repro.utils.rng import RngLike, ensure_rng

try:  # pragma: no cover - exercised only where torch is installed
    import torch

    HAS_TORCH = True
except ImportError:  # torch is an optional accelerator dependency
    torch = None
    HAS_TORCH = False


class _TorchRng:  # pragma: no cover - requires torch
    """NumPy-``Generator``-shaped adapter over a ``torch.Generator``.

    Uniform and integer draws run through torch; the count distributions
    fall back to an identically-seeded host NumPy generator and transfer.
    """

    def __init__(self, seed: RngLike, device: str) -> None:
        self._host = ensure_rng(seed)
        self._device = device
        self._generator = torch.Generator(device=device)
        self._generator.manual_seed(int(self._host.integers(0, 2**63 - 1)))

    def random(self, size=None):
        shape = (size,) if isinstance(size, int) else tuple(size or ())
        return torch.rand(
            shape, generator=self._generator, device=self._device
        )

    def integers(self, low, high=None, size=None, dtype=None):
        if high is None:
            low, high = 0, low
        shape = (size,) if isinstance(size, int) else tuple(size or ())
        return torch.randint(
            int(low),
            int(high),
            shape,
            generator=self._generator,
            device=self._device,
        )

    def multinomial(self, n, pvals):
        return torch.as_tensor(
            self._host.multinomial(n, np.asarray(pvals)), device=self._device
        )

    def binomial(self, n, p):
        return torch.as_tensor(
            self._host.binomial(np.asarray(n), np.asarray(p)),
            device=self._device,
        )


class TorchBackend(ArrayBackend):
    """Backend over :mod:`torch` tensors (CPU by default, CUDA via ``device``)."""

    name = "torch"

    def __init__(self, device: str = "cpu") -> None:
        if not HAS_TORCH:
            raise BackendUnavailableError(
                "the torch backend needs the 'torch' package; install it or "
                "use --backend numpy"
            )
        self._device = device  # pragma: no cover - requires torch

    @property
    def xp(self) -> Any:  # pragma: no cover - requires torch
        return torch

    def rng(self, rng: RngLike = None):  # pragma: no cover - requires torch
        return _TorchRng(rng, self._device)

    def asarray(self, array: Any, dtype: Any = None):  # pragma: no cover
        return torch.as_tensor(array, dtype=dtype, device=self._device)

    def to_numpy(self, array: Any) -> np.ndarray:  # pragma: no cover
        return array.detach().cpu().numpy()
