"""Optional CuPy backend (import-guarded; requires a CUDA-capable install).

The module imports cleanly without CuPy — :data:`HAS_CUPY` is then ``False``
and constructing :class:`CupyBackend` raises
:class:`~repro.backends.base.BackendUnavailableError`.  Nothing in the
default NumPy path touches this module.

Determinism caveat (also in the README): CuPy's ``Generator`` is a different
bit generator than NumPy's PCG64, so equal integer seeds give *different*
streams than the NumPy backend — reproducibility holds per backend, not
across backends.  Distribution families NumPy's ``Generator`` offers but
CuPy's lacks (vectorised ``multinomial``/``binomial`` with array parameters)
are drawn on the host from a NumPy generator seeded identically and
transferred; the hot array math stays on the device.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backends.base import ArrayBackend, BackendUnavailableError
from repro.utils.rng import RngLike, ensure_rng

try:  # pragma: no cover - exercised only where cupy is installed
    import cupy

    HAS_CUPY = True
except ImportError:  # cupy is an optional accelerator dependency
    cupy = None
    HAS_CUPY = False


class _CupyRng:  # pragma: no cover - requires a CUDA device
    """NumPy-``Generator``-shaped adapter over a CuPy device stream.

    Uniform and integer draws run on the device; ``multinomial``/``binomial``
    (which CuPy's ``Generator`` does not vectorise over array parameters)
    fall back to an identically-seeded host generator and transfer.
    """

    def __init__(self, seed: RngLike) -> None:
        self._host = ensure_rng(seed)
        device_seed = int(self._host.integers(0, 2**63 - 1))
        self._device = cupy.random.default_rng(device_seed)

    def random(self, size=None):
        return self._device.random(size)

    def integers(self, low, high=None, size=None, dtype=np.int64):
        return self._device.integers(low, high, size=size, dtype=dtype)

    def multinomial(self, n, pvals):
        return cupy.asarray(self._host.multinomial(n, cupy.asnumpy(pvals)))

    def binomial(self, n, p):
        return cupy.asarray(
            self._host.binomial(cupy.asnumpy(n), cupy.asnumpy(p))
        )


class CupyBackend(ArrayBackend):
    """CUDA backend over :mod:`cupy` (GPU-resident hot state)."""

    name = "cupy"

    def __init__(self) -> None:
        if not HAS_CUPY:
            raise BackendUnavailableError(
                "the cupy backend needs the 'cupy' package (a CUDA build "
                "matching your driver); install it or use --backend numpy"
            )

    @property
    def xp(self) -> Any:  # pragma: no cover - requires a CUDA device
        return cupy

    def rng(self, rng: RngLike = None):  # pragma: no cover - requires a CUDA device
        return _CupyRng(rng)

    def asarray(self, array: Any, dtype: Any = None):  # pragma: no cover
        return cupy.asarray(array, dtype=dtype)

    def to_numpy(self, array: Any) -> np.ndarray:  # pragma: no cover
        return cupy.asnumpy(array)
