"""Multi-backend array engine: the Array-API seam and dtype discipline.

Public surface:

* :func:`get_namespace` / :data:`BACKENDS` / :func:`available_backends` —
  backend lookup (NumPy default; CuPy/torch optional and import-guarded);
* :class:`ArrayBackend` / :class:`BackendUnavailableError` — the seam's
  abstract interface and its unavailability signal;
* :class:`Precision` / :func:`resolve_precision` / :data:`PRECISIONS` —
  the storage-dtype discipline threaded through the vectorised engines.
"""

from repro.backends.base import ArrayBackend, BackendUnavailableError
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.precision import (
    DEFAULT_PRECISION,
    PRECISIONS,
    Precision,
    PrecisionLike,
    resolve_precision,
)
from repro.backends.registry import (
    BACKENDS,
    DEFAULT_BACKEND_NAME,
    BackendLike,
    available_backends,
    get_namespace,
)

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "NumpyBackend",
    "Precision",
    "PrecisionLike",
    "PRECISIONS",
    "DEFAULT_PRECISION",
    "resolve_precision",
    "BACKENDS",
    "DEFAULT_BACKEND_NAME",
    "BackendLike",
    "available_backends",
    "get_namespace",
]
