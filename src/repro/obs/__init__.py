"""Observability: metrics registry, deterministic tracing, trace summaries.

Stdlib-only.  :mod:`repro.obs.metrics` holds the thread-safe
:class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges, fixed-bucket
histograms, Prometheus text exposition); :mod:`repro.obs.trace` holds the
content-address-derived :class:`~repro.obs.trace.Tracer` with its JSONL and
in-memory sinks; :mod:`repro.obs.summary` turns a JSONL trace into a
per-phase latency table.  The defaults — a process-wide registry and a
null tracer — make instrumentation zero-cost until explicitly enabled.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_sample,
    freeze_labels,
    get_registry,
)
from repro.obs.summary import (
    PhaseSummary,
    load_records,
    render_summary,
    summarize_records,
    summarize_trace_file,
)
from repro.obs.trace import (
    EVENT,
    NULL_TRACER,
    SPAN_END,
    SPAN_START,
    TRACE_OUT_ENV,
    JsonlSink,
    MemorySink,
    NullTracer,
    Span,
    SpanContext,
    TeeSink,
    Tracer,
    current_context,
    get_tracer,
    resolve_tracer,
    set_ambient_context,
    set_tracer,
    span_id_for,
    trace_id_for_key,
    tracer_from_env,
    validate_record,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_sample",
    "freeze_labels",
    "get_registry",
    "PhaseSummary",
    "load_records",
    "render_summary",
    "summarize_records",
    "summarize_trace_file",
    "EVENT",
    "NULL_TRACER",
    "SPAN_END",
    "SPAN_START",
    "TRACE_OUT_ENV",
    "JsonlSink",
    "MemorySink",
    "NullTracer",
    "Span",
    "SpanContext",
    "TeeSink",
    "Tracer",
    "current_context",
    "get_tracer",
    "resolve_tracer",
    "set_ambient_context",
    "set_tracer",
    "span_id_for",
    "trace_id_for_key",
    "tracer_from_env",
    "validate_record",
]
