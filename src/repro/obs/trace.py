"""Deterministic tracing: spans, content-derived ids, JSONL/memory sinks.

A **span** is one timed unit of work (a shard, a campaign node, a job); a
**trace** is the tree of spans hanging off one root.  Unlike wall-clock-id
tracers, every id here is a pure function of *content*:

* ``trace_id_for_key(key)`` hashes the root's content address (a task/
  request/campaign SHA-256), and
* child span ids hash ``(trace_id, parent_span_id, name, key)``.

Two runs of the same workload — on any backend, any worker count, any cache
state — therefore produce the *same* span ids, which makes traces diffable
and keeps instrumentation out of the determinism contract: nothing
downstream of a simulation can observe a timestamp through its ids.
Timestamps appear only as observational fields (``ts``, ``wall_s``,
``cpu_s``) on the emitted records.

Records are flat JSON objects (one per line in the JSONL sink)::

    {"event": "span_start", "ts": ..., "trace": ..., "span": ...,
     "parent": ... | null, "name": ..., "key": ..., "attributes": {...}}
    {"event": "span_end",   ... same ids ..., "wall_s": ..., "cpu_s": ...,
     "attributes": {...}}
    {"event": "event", "ts": ..., "trace": ..., "span": ..., "name": ...,
     "attributes": {...}}

The **null tracer** (:data:`NULL_TRACER`, the process default) makes
instrumentation zero-cost-when-off: ``span()`` hands back one shared no-op
context manager and ``event()``/``record_span()`` return immediately — no
ids are computed, nothing is allocated per call.  Enable tracing by
installing a real :class:`Tracer` (:func:`set_tracer`), passing one through
:class:`~repro.runtime.options.ExecutionOptions`, or exporting
``REPRO_TRACE_OUT=trace.jsonl`` (the CLI's ``--trace-out`` flag).

Context propagates three ways:

* in-process via a :mod:`contextvars` current-span variable (``with
  tracer.span(...):`` nests children automatically, per thread);
* into ``ParallelExecutor`` worker processes via the pool initializer, which
  calls :func:`set_ambient_context` so worker-side spans join the parent
  trace; and
* across the broker wire protocol as a ``trace`` field on shard frames
  (:mod:`repro.campaign.broker`).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from contextvars import ContextVar
from typing import Any, Dict, List, Optional, Tuple

TRACE_OUT_ENV = "REPRO_TRACE_OUT"
"""Environment variable naming a JSONL trace output path (the CLI default)."""

SPAN_START = "span_start"
SPAN_END = "span_end"
EVENT = "event"

RECORD_KINDS = (SPAN_START, SPAN_END, EVENT)


def trace_id_for_key(key: str) -> str:
    """Deterministic 128-bit trace id derived from a content address."""
    return hashlib.sha256(f"repro.trace:{key}".encode("utf-8")).hexdigest()[:32]


def span_id_for(trace_id: str, parent_id: Optional[str], name: str, key: str) -> str:
    """Deterministic 64-bit span id from (trace, parent, name, content key)."""
    material = f"{trace_id}/{parent_id or ''}/{name}/{key}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


class SpanContext(Tuple[str, str]):
    """An immutable ``(trace_id, span_id)`` pair — what propagates across hops."""

    __slots__ = ()

    def __new__(cls, trace_id: str, span_id: str) -> "SpanContext":
        return tuple.__new__(cls, (trace_id, span_id))

    @property
    def trace_id(self) -> str:
        return self[0]

    @property
    def span_id(self) -> str:
        return self[1]


_CURRENT: "ContextVar[Optional[SpanContext]]" = ContextVar(
    "repro_current_span", default=None
)

# Ambient fallback for execution contexts that cannot inherit the parent's
# contextvars: ParallelExecutor worker processes (set by the pool
# initializer) and broker processes (set from the shard frame's trace field).
_AMBIENT: Optional[SpanContext] = None


def set_ambient_context(
    trace_id: Optional[str], span_id: Optional[str]
) -> None:
    """Install (or clear, with ``None``) the process-level fallback context."""
    global _AMBIENT
    if trace_id is None or span_id is None:
        _AMBIENT = None
    else:
        _AMBIENT = SpanContext(str(trace_id), str(span_id))


def current_context() -> Optional[SpanContext]:
    """The active span context: the contextvar, else the ambient fallback."""
    context = _CURRENT.get()
    return context if context is not None else _AMBIENT


def validate_record(record: Any) -> List[str]:
    """Schema-check one trace record; returns the violations (empty = valid)."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"record is not an object: {record!r}"]
    kind = record.get("event")
    if kind not in RECORD_KINDS:
        problems.append(f"unknown event kind {kind!r}")
        return problems
    for field, types in (
        ("ts", (int, float)),
        ("trace", str),
        ("span", str),
        ("name", str),
    ):
        if not isinstance(record.get(field), types):
            problems.append(f"{kind} record missing/invalid {field!r}")
    if "attributes" in record and not isinstance(record["attributes"], dict):
        problems.append(f"{kind} record has non-object attributes")
    if kind in (SPAN_START, SPAN_END):
        parent = record.get("parent")
        if parent is not None and not isinstance(parent, str):
            problems.append(f"{kind} record has non-string parent")
        if not isinstance(record.get("key"), str):
            problems.append(f"{kind} record missing/invalid 'key'")
    if kind == SPAN_END:
        for field in ("wall_s", "cpu_s"):
            if not isinstance(record.get(field), (int, float)):
                problems.append(f"span_end record missing/invalid {field!r}")
    return problems


class JsonlSink:
    """Append trace records to a JSONL file, one object per line, thread-safe."""

    def __init__(self, path: Any) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        directory = os.path.dirname(os.path.abspath(self.path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def emit(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class MemorySink:
    """Bounded in-memory record buffer, grouped by trace id.

    The daemon keeps one of these so ``GET /v1/jobs/<id>/trace`` can return a
    job's span tree without any file configured.  Oldest traces are evicted
    once ``max_traces`` accumulate; each trace keeps at most ``max_records``
    records (a ``truncated`` marker is set past that).
    """

    def __init__(self, max_traces: int = 256, max_records: int = 4096) -> None:
        if max_traces <= 0 or max_records <= 0:
            raise ValueError("MemorySink bounds must be positive")
        self.max_traces = max_traces
        self.max_records = max_records
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    def emit(self, record: Dict[str, Any]) -> None:
        trace_id = record.get("trace")
        if not isinstance(trace_id, str):
            return
        with self._lock:
            entry = self._traces.get(trace_id)
            if entry is None:
                entry = {"records": [], "truncated": False}
                self._traces[trace_id] = entry
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
            if len(entry["records"]) >= self.max_records:
                entry["truncated"] = True
                return
            entry["records"].append(record)

    def records(self, trace_id: str) -> List[Dict[str, Any]]:
        with self._lock:
            entry = self._traces.get(trace_id)
            return list(entry["records"]) if entry is not None else []

    def truncated(self, trace_id: str) -> bool:
        with self._lock:
            entry = self._traces.get(trace_id)
            return bool(entry["truncated"]) if entry is not None else False

    def close(self) -> None:  # symmetric with JsonlSink
        with self._lock:
            self._traces.clear()


class TeeSink:
    """Fan one record out to several sinks (memory buffer + JSONL file)."""

    def __init__(self, *sinks: Any) -> None:
        self.sinks = tuple(sink for sink in sinks if sink is not None)

    def emit(self, record: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class Span:
    """One active span; use via ``with tracer.span(...) as span:``."""

    __slots__ = (
        "tracer",
        "name",
        "key",
        "context",
        "parent_id",
        "attributes",
        "_token",
        "_wall_start",
        "_cpu_start",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        key: str,
        context: SpanContext,
        parent_id: Optional[str],
        attributes: Optional[Dict[str, Any]],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.key = key
        self.context = context
        self.parent_id = parent_id
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self._token = None
        self._wall_start = 0.0
        self._cpu_start = 0.0

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        return self.context.span_id

    def set_attribute(self, name: str, value: Any) -> None:
        """Attach ``name=value`` to the span's end record."""
        self.attributes[name] = value

    def event(self, name: str, attributes: Optional[Dict[str, Any]] = None) -> None:
        """Emit a point event inside this span."""
        self.tracer._emit_event(name, attributes, self.context)

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self.context)
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        self.tracer._emit(
            {
                "event": SPAN_START,
                "ts": time.time(),
                "trace": self.trace_id,
                "span": self.span_id,
                "parent": self.parent_id,
                "name": self.name,
                "key": self.key,
                "attributes": dict(self.attributes),
            }
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._wall_start
        cpu = time.process_time() - self._cpu_start
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self.tracer._emit(
            {
                "event": SPAN_END,
                "ts": time.time(),
                "trace": self.trace_id,
                "span": self.span_id,
                "parent": self.parent_id,
                "name": self.name,
                "key": self.key,
                "wall_s": wall,
                "cpu_s": cpu,
                "attributes": dict(self.attributes),
            }
        )


class _NullSpan:
    """Shared no-op span: every method returns immediately."""

    __slots__ = ()

    trace_id = ""
    span_id = ""
    context = None
    attributes: Dict[str, Any] = {}

    def set_attribute(self, name: str, value: Any) -> None:
        pass

    def event(self, name: str, attributes: Optional[Dict[str, Any]] = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: no ids computed, nothing emitted, ever."""

    enabled = False

    def span(self, name: str, key: str = "", **_: Any) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, *args: Any, **kwargs: Any) -> None:
        pass

    def event(self, *args: Any, **kwargs: Any) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Emit deterministic spans and events into a sink.

    ``sink`` is anything with ``emit(record)`` (:class:`JsonlSink`,
    :class:`MemorySink`, :class:`TeeSink`).  Spans opened without an explicit
    parent attach to the current context (contextvar, then ambient); a span
    with no context anywhere becomes a trace root whose trace id derives
    from its own content key.
    """

    enabled = True

    def __init__(self, sink: Any) -> None:
        self.sink = sink

    # -- internals ----------------------------------------------------------

    def _emit(self, record: Dict[str, Any]) -> None:
        self.sink.emit(record)

    def _emit_event(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]],
        context: Optional[SpanContext],
    ) -> None:
        context = context if context is not None else current_context()
        if context is None:
            # An event with no enclosing span still records, under a trace
            # id derived from its own name so sinks can group it.
            context = SpanContext(trace_id_for_key(f"event:{name}"), "")
        self._emit(
            {
                "event": EVENT,
                "ts": time.time(),
                "trace": context.trace_id,
                "span": context.span_id,
                "name": name,
                "attributes": dict(attributes or {}),
            }
        )

    def _derive(
        self, name: str, key: str, parent: Optional[SpanContext]
    ) -> Tuple[SpanContext, Optional[str]]:
        parent = parent if parent is not None else current_context()
        if parent is None:
            trace_id = trace_id_for_key(key)
            return SpanContext(trace_id, span_id_for(trace_id, None, name, key)), None
        span_id = span_id_for(parent.trace_id, parent.span_id, name, key)
        return SpanContext(parent.trace_id, span_id), parent.span_id

    # -- public api ---------------------------------------------------------

    def span(
        self,
        name: str,
        key: str = "",
        *,
        attributes: Optional[Dict[str, Any]] = None,
        parent: Optional[SpanContext] = None,
    ) -> Span:
        """A context manager timing one unit of work named ``name``.

        ``key`` is the content address the span's deterministic id derives
        from — a store task key, request key or campaign key.
        """
        context, parent_id = self._derive(name, key, parent)
        return Span(self, name, key, context, parent_id, attributes)

    def record_span(
        self,
        name: str,
        key: str,
        *,
        wall_s: float,
        cpu_s: float = 0.0,
        attributes: Optional[Dict[str, Any]] = None,
        parent: Optional[SpanContext] = None,
    ) -> SpanContext:
        """Record an already-measured span (start + end emitted back to back).

        Used for work that completed elsewhere — a shard measured in a
        worker process or behind the broker wire — where the caller learns
        the timings only on completion.
        """
        context, parent_id = self._derive(name, key, parent)
        now = time.time()
        base = {
            "trace": context.trace_id,
            "span": context.span_id,
            "parent": parent_id,
            "name": name,
            "key": key,
        }
        self._emit(
            {"event": SPAN_START, "ts": now - wall_s, "attributes": {}, **base}
        )
        self._emit(
            {
                "event": SPAN_END,
                "ts": now,
                "wall_s": float(wall_s),
                "cpu_s": float(cpu_s),
                "attributes": dict(attributes or {}),
                **base,
            }
        )
        return context

    def event(
        self, name: str, attributes: Optional[Dict[str, Any]] = None
    ) -> None:
        """Emit a point event attached to the current span context."""
        self._emit_event(name, attributes, None)

    def close(self) -> None:
        close = getattr(self.sink, "close", None)
        if close is not None:
            close()


_TRACER_LOCK = threading.Lock()
_TRACER: Any = NULL_TRACER


def get_tracer() -> Any:
    """The process-wide tracer (:data:`NULL_TRACER` unless one was installed)."""
    return _TRACER


def set_tracer(tracer: Optional[Any]) -> Any:
    """Install ``tracer`` process-wide (``None`` restores the null tracer).

    Returns the previous tracer so callers can restore it.
    """
    global _TRACER
    with _TRACER_LOCK:
        previous = _TRACER
        _TRACER = tracer if tracer is not None else NULL_TRACER
        return previous


def tracer_from_env() -> Any:
    """A JSONL tracer for ``$REPRO_TRACE_OUT``, else the null tracer."""
    path = os.environ.get(TRACE_OUT_ENV)
    if path:
        return Tracer(JsonlSink(path))
    return NULL_TRACER


def resolve_tracer(tracer: Optional[Any]) -> Any:
    """``tracer`` if given, else the installed process tracer."""
    return tracer if tracer is not None else _TRACER
