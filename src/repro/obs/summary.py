"""Per-phase latency breakdown from a JSONL trace file.

Powers ``repro trace summarize PATH``: read every ``span_end`` record,
group by span name (the phase — ``shard``, ``campaign_node``, ``job`` …),
and render a fixed-width table of count / total / mean / p50 / p95 wall
time plus total CPU time.  Pure functions over parsed records, so the
daemon and tests can reuse the aggregation without touching the CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

from repro.obs.trace import SPAN_END


@dataclass(frozen=True)
class PhaseSummary:
    """Aggregated wall/CPU statistics for one span name."""

    name: str
    count: int
    total_wall_s: float
    mean_wall_s: float
    p50_wall_s: float
    p95_wall_s: float
    max_wall_s: float
    total_cpu_s: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "total_wall_s": self.total_wall_s,
            "mean_wall_s": self.mean_wall_s,
            "p50_wall_s": self.p50_wall_s,
            "p95_wall_s": self.p95_wall_s,
            "max_wall_s": self.max_wall_s,
            "total_cpu_s": self.total_cpu_s,
        }


def _percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


def load_records(path: Any) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file; raises ``ValueError`` on a malformed line."""
    records: List[Dict[str, Any]] = []
    with open(str(path), "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: not valid JSON: {error}") from None
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{number}: record is not an object")
            records.append(record)
    return records


def summarize_records(records: Iterable[Dict[str, Any]]) -> List[PhaseSummary]:
    """Group ``span_end`` records by name; heaviest total wall time first."""
    walls: Dict[str, List[float]] = {}
    cpus: Dict[str, float] = {}
    for record in records:
        if record.get("event") != SPAN_END:
            continue
        name = record.get("name")
        wall = record.get("wall_s")
        if not isinstance(name, str) or not isinstance(wall, (int, float)):
            continue
        walls.setdefault(name, []).append(float(wall))
        cpu = record.get("cpu_s")
        if isinstance(cpu, (int, float)):
            cpus[name] = cpus.get(name, 0.0) + float(cpu)
    summaries: List[PhaseSummary] = []
    for name, values in walls.items():
        values.sort()
        total = sum(values)
        summaries.append(
            PhaseSummary(
                name=name,
                count=len(values),
                total_wall_s=total,
                mean_wall_s=total / len(values),
                p50_wall_s=_percentile(values, 0.50),
                p95_wall_s=_percentile(values, 0.95),
                max_wall_s=values[-1],
                total_cpu_s=cpus.get(name, 0.0),
            )
        )
    summaries.sort(key=lambda summary: (-summary.total_wall_s, summary.name))
    return summaries


def _format_seconds(value: float) -> str:
    if value >= 100.0:
        return f"{value:.1f}s"
    if value >= 0.1:
        return f"{value:.3f}s"
    return f"{value * 1000.0:.2f}ms"


def render_summary(
    summaries: List[PhaseSummary], *, total_events: int = 0
) -> str:
    """Fixed-width text table of the per-phase breakdown."""
    if not summaries:
        return "no span_end records found"
    headers = ("phase", "count", "total", "mean", "p50", "p95", "max", "cpu")
    rows: List[Tuple[str, ...]] = []
    for summary in summaries:
        rows.append(
            (
                summary.name,
                str(summary.count),
                _format_seconds(summary.total_wall_s),
                _format_seconds(summary.mean_wall_s),
                _format_seconds(summary.p50_wall_s),
                _format_seconds(summary.p95_wall_s),
                _format_seconds(summary.max_wall_s),
                _format_seconds(summary.total_cpu_s),
            )
        )
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in rows))
        for column in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if total_events:
        span_count = sum(summary.count for summary in summaries)
        lines.append("")
        lines.append(f"{span_count} spans over {total_events} records")
    return "\n".join(lines)


def summarize_trace_file(path: Any) -> str:
    """Load ``path`` and render the per-phase breakdown table."""
    records = load_records(path)
    summaries = summarize_records(records)
    return render_summary(summaries, total_events=len(records))
