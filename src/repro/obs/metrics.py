"""Thread-safe metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a named collection of metric families.  Every
mutation — :meth:`Counter.inc`, :meth:`Gauge.set`, :meth:`Histogram.observe`
— serialises on one registry lock, so concurrent writers (the daemon's job
workers, the runtime driver, HTTP threads) can share a registry without torn
reads: a hammer of N threads x M increments lands on exactly ``N * M``.

Labels are **frozen tuples** of ``(name, value)`` pairs, sorted by name, so
``{"a": 1, "b": 2}`` and ``{"b": 2, "a": 1}`` address the same series.  Each
metric family therefore maps label tuples to scalar series, exactly like the
Prometheus data model.

Two read paths:

* :meth:`MetricsRegistry.snapshot` — a plain-dict view for programmatic
  assertions and the job queue's quantile lookups; and
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text exposition
  format (``# HELP``/``# TYPE`` headers, ``_bucket``/``_sum``/``_count``
  histogram series) the daemon serves at ``GET /v1/metrics``.

Registries also accept **collectors** — callables returning sample lines at
exposition time.  The daemon bridges the result store's
:class:`~repro.runtime.store.StoreCounters` through a collector, so the
store counters in ``/v1/metrics`` are read from the very same
``store.counters()`` snapshot ``/v1/stats`` serves and the two endpoints can
never structurally disagree.

A process-wide default registry (:func:`get_registry`) collects runtime-side
metrics (shard throughput, dispatch latency, requeues); components that need
isolation (one per daemon, one per test) construct their own.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

LabelPairs = Tuple[Tuple[str, str], ...]
"""Canonical label form: a name-sorted tuple of (label, value) string pairs."""

DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)
"""Seconds-scale histogram buckets covering sub-ms dispatch to minute-long jobs."""


def freeze_labels(labels: Optional[Dict[str, Any]]) -> LabelPairs:
    """Canonicalise a label dict into the frozen, name-sorted tuple form."""
    if not labels:
        return ()
    return tuple(sorted((str(name), str(value)) for name, value in labels.items()))


def _validate_name(name: str) -> str:
    if not name or not all(ch.isalnum() or ch == "_" for ch in name):
        raise ValueError(
            f"metric names are [a-zA-Z0-9_]+ (prometheus-safe), got {name!r}"
        )
    return name


def _format_value(value: float) -> str:
    """Prometheus sample rendering: integers bare, floats via repr, +Inf spelled."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_sample(name: str, labels: LabelPairs, value: float) -> str:
    """One exposition line: ``name{label="value",...} value``."""
    if labels:
        rendered = ",".join(
            f'{label}="{_escape_label_value(value_)}"' for label, value_ in labels
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class _Metric:
    """Shared bookkeeping of one metric family; mutation goes via the registry lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        self.name = _validate_name(name)
        self.help = help_text
        self._lock = lock

    def _sample_lines(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count, one series per label tuple."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        super().__init__(name, help_text, lock)
        self._values: Dict[LabelPairs, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the series selected by ``labels``."""
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        key = freeze_labels(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        key = freeze_labels(labels)
        with self._lock:
            return self._values.get(key, 0)

    def _sample_lines(self) -> List[str]:
        return [
            format_sample(self.name, labels, value)
            for labels, value in sorted(self._values.items())
        ]


class Gauge(_Metric):
    """A value that can go up and down (in-flight shards, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        super().__init__(name, help_text, lock)
        self._values: Dict[LabelPairs, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[freeze_labels(labels)] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = freeze_labels(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        key = freeze_labels(labels)
        with self._lock:
            return self._values.get(key, 0)

    def _sample_lines(self) -> List[str]:
        return [
            format_sample(self.name, labels, value)
            for labels, value in sorted(self._values.items())
        ]


class Histogram(_Metric):
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are the finite upper bounds, strictly increasing; a final
    ``+Inf`` bucket is implicit.  Observations accumulate into every bucket
    whose bound is >= the value (cumulative), plus ``_sum`` and ``_count``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, lock)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one finite bucket bound")
        if any(not math.isfinite(bound) for bound in bounds):
            raise ValueError(f"bucket bounds must be finite, got {bounds}")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.buckets = bounds
        self._counts: Dict[LabelPairs, List[int]] = {}
        self._sums: Dict[LabelPairs, float] = {}
        self._totals: Dict[LabelPairs, int] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the series selected by ``labels``."""
        value = float(value)
        key = freeze_labels(labels)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
            counts[-1] += 1  # the implicit +Inf bucket
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: Any) -> int:
        with self._lock:
            return self._totals.get(freeze_labels(labels), 0)

    def sum(self, **labels: Any) -> float:
        with self._lock:
            return self._sums.get(freeze_labels(labels), 0.0)

    def quantile(self, q: float, **labels: Any) -> Optional[float]:
        """Bucket-resolution quantile estimate (linear within the bucket).

        Returns ``None`` with no observations.  The estimate interpolates
        inside the bucket containing the ``q``-th observation, using the
        previous bound as the bucket floor (0 for the first bucket); values
        beyond the last finite bound clamp to that bound — fixed buckets
        cannot resolve further.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        key = freeze_labels(labels)
        with self._lock:
            counts = self._counts.get(key)
            total = self._totals.get(key, 0)
            if not counts or total == 0:
                return None
            rank = q * total
            previous_bound = 0.0
            previous_count = 0
            for index, bound in enumerate(self.buckets):
                cumulative = counts[index]
                if cumulative >= rank:
                    in_bucket = cumulative - previous_count
                    if in_bucket == 0:
                        return bound
                    fraction = (rank - previous_count) / in_bucket
                    return previous_bound + fraction * (bound - previous_bound)
                previous_bound = bound
                previous_count = cumulative
            return self.buckets[-1]

    def _sample_lines(self) -> List[str]:
        lines: List[str] = []
        for labels in sorted(self._counts):
            counts = self._counts[labels]
            for index, bound in enumerate(self.buckets):
                bucket_labels = labels + (("le", _format_value(bound)),)
                lines.append(
                    format_sample(f"{self.name}_bucket", bucket_labels, counts[index])
                )
            lines.append(
                format_sample(
                    f"{self.name}_bucket", labels + (("le", "+Inf"),), counts[-1]
                )
            )
            lines.append(
                format_sample(f"{self.name}_sum", labels, self._sums[labels])
            )
            lines.append(
                format_sample(f"{self.name}_count", labels, self._totals[labels])
            )
        return lines


CollectorSample = Tuple[str, str, str, Dict[str, Any], float]
"""One collector sample: ``(name, kind, help, labels, value)``."""

Collector = Callable[[], Iterable[CollectorSample]]


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking again for
    an existing name returns the existing family (so independent call sites
    share series), but asking with a *different* kind — or different buckets
    for a histogram — is a programming error and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Metric]" = {}
        self._collectors: List[Collector] = []

    def _get_or_create(self, cls: type, name: str, help_text: str, **kwargs) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}"  # type: ignore[attr-defined]
                    )
                buckets = kwargs.get("buckets")
                if buckets is not None and tuple(
                    float(bound) for bound in buckets
                ) != getattr(existing, "buckets", None):
                    raise ValueError(
                        f"histogram {name!r} is already registered with "
                        f"buckets {existing.buckets}"  # type: ignore[attr-defined]
                    )
                return existing
            metric = cls(name, help_text, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, buckets=buckets)

    def register_collector(self, collector: Collector) -> Collector:
        """Add an exposition-time sample source; returns it (for unregister)."""
        with self._lock:
            self._collectors.append(collector)
        return collector

    def unregister_collector(self, collector: Collector) -> None:
        with self._lock:
            if collector in self._collectors:
                self._collectors.remove(collector)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict view of every registered series (not collector samples)."""
        with self._lock:
            metrics = list(self._metrics.values())
        out: Dict[str, Dict[str, Any]] = {}
        for metric in metrics:
            if isinstance(metric, Histogram):
                with self._lock:
                    out[metric.name] = {
                        "kind": metric.kind,
                        "buckets": metric.buckets,
                        "counts": {
                            labels: list(counts)
                            for labels, counts in metric._counts.items()
                        },
                        "sum": dict(metric._sums),
                        "count": dict(metric._totals),
                    }
            else:
                with self._lock:
                    out[metric.name] = {
                        "kind": metric.kind,
                        "values": dict(metric._values),  # type: ignore[attr-defined]
                    }
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition of every metric plus collector samples."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda metric: metric.name)
            collectors = list(self._collectors)
        lines: List[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            with self._lock:
                lines.extend(metric._sample_lines())
        for collector in collectors:
            for name, kind, help_text, labels, value in collector():
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
                lines.append(format_sample(name, freeze_labels(labels), value))
        return "\n".join(lines) + "\n"


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (runtime/executor/broker metrics)."""
    return _REGISTRY
