"""Pluggable shard executors: in-process serial and multi-process parallel.

Both executors consume shards (lists of :class:`~repro.runtime.shard.Task`)
and yield ``(task, metrics)`` pairs one completed shard at a time, so the
driver can flush each shard to the :class:`~repro.runtime.store.ResultStore`
the moment it finishes — that per-shard flush is what makes interrupted runs
resumable.  Because every task runs through the same
:func:`~repro.runtime.shard.execute_task` compute path and depends only on
its own ``(function, parameters, seeds)``, the two executors (at any worker
count) produce bit-identical metrics; only wall-clock differs.

:class:`ParallelExecutor` ships tasks to ``ProcessPoolExecutor`` workers as
plain picklable data.  Workers resolve the replication function from its
``module:qualname`` reference and construct engines on their side, so the
parent process never pickles engines, environments or closures.  The
replication function must therefore live at module level; closures fall back
to :class:`SerialExecutor` (or raise, with a pointer, under the parallel
executor).
"""

from __future__ import annotations

import importlib
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from functools import lru_cache
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, get_registry
from repro.obs.trace import current_context, set_ambient_context
from repro.runtime.shard import Task, execute_task

ShardResults = List[Tuple[Task, List[Dict[str, float]]]]
"""One completed shard: each task paired with its per-seed metric rows."""

ShardTiming = Dict[str, float]
"""Worker-measured timings for one shard: ``wall_s`` and ``cpu_s``."""


@lru_cache(maxsize=64)
def resolve_replication(reference: str) -> Callable:
    """Import the replication function behind a ``module:qualname`` reference."""
    module_name, _, qualified_name = reference.partition(":")
    if not module_name or not qualified_name:
        raise ValueError(f"malformed function reference {reference!r}")
    module = importlib.import_module(module_name)
    target = module
    for part in qualified_name.split("."):
        target = getattr(target, part)
    return target


def _worker_initializer(
    extra_sys_path: Sequence[str],
    trace_context: Optional[Tuple[str, str]] = None,
) -> None:
    """Make the parent's package importable in spawn-started workers.

    Also installs the parent's trace context as the worker's ambient span
    context, so any events the worker emits join the parent trace.
    """
    for entry in extra_sys_path:  # pragma: no cover - runs in worker processes
        if entry not in sys.path:
            sys.path.insert(0, entry)
    if trace_context is not None:  # pragma: no cover - runs in worker processes
        set_ambient_context(trace_context[0], trace_context[1])


def _execute_shard(tasks: Sequence[Task]) -> ShardResults:
    """Worker-side entry point: run one shard and return its results."""
    return [
        (task, execute_task(task, resolve_replication(task.function_ref)))
        for task in tasks
    ]


def _execute_shard_timed(
    tasks: Sequence[Task],
) -> Tuple[ShardResults, ShardTiming]:
    """Run one shard and report worker-measured wall and CPU seconds.

    The timings are measured where the work happens, so the parent can
    attribute the remainder of a shard's parent-side latency to dispatch
    (pickling, queueing, result transfer) rather than compute.
    """
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    results = _execute_shard(tasks)
    return results, {
        "wall_s": time.perf_counter() - wall_start,
        "cpu_s": time.process_time() - cpu_start,
    }


class SerialExecutor:
    """Zero-dependency in-process executor (the default).

    ``num_shards`` only sets the flush granularity when a store is attached;
    it never changes results.
    """

    def __init__(self, num_shards: int = 8) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.num_shards = num_shards
        #: Timing of the most recently yielded shard (read by the driver
        #: right after each ``run_shards`` yield to label shard spans).
        self.last_shard_timing: Optional[ShardTiming] = None

    def run_shards(
        self, shards: Sequence[Sequence[Task]], replication: Callable
    ) -> Iterator[ShardResults]:
        """Run each shard in order, yielding it as soon as it completes."""
        for shard in shards:
            wall_start = time.perf_counter()
            cpu_start = time.process_time()
            results = [(task, execute_task(task, replication)) for task in shard]
            self.last_shard_timing = {
                "wall_s": time.perf_counter() - wall_start,
                "cpu_s": time.process_time() - cpu_start,
            }
            yield results


class ParallelExecutor:
    """``ProcessPoolExecutor``-backed executor with chunked shard dispatch.

    Parameters
    ----------
    max_workers:
        Worker process count (default: ``os.cpu_count()``).
    shards_per_worker:
        Dispatch granularity — the plan's pending tasks are chunked into
        ``max_workers * shards_per_worker`` shards so slow tasks cannot
        starve the pool and store flushes happen throughout the run.
    mp_context:
        Optional :mod:`multiprocessing` context; the platform default
        (``fork`` on Linux) keeps worker start-up cheap, while ``spawn``
        workers re-import the library via the recorded ``sys.path``.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        shards_per_worker: int = 4,
        mp_context=None,
    ) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        if shards_per_worker <= 0:
            raise ValueError(
                f"shards_per_worker must be positive, got {shards_per_worker}"
            )
        self.max_workers = max_workers
        self.shards_per_worker = shards_per_worker
        self.mp_context = mp_context
        #: Worker-measured timing of the most recently yielded shard.
        self.last_shard_timing: Optional[ShardTiming] = None

    @property
    def num_shards(self) -> int:
        """Default number of dispatch chunks for a plan's pending tasks."""
        return self.max_workers * self.shards_per_worker

    def _check_resolvable(self, replication: Callable) -> None:
        # Imported lazily: repro.runtime.backend imports this module.
        from repro.runtime.backend import check_resolvable

        check_resolvable(replication, "ParallelExecutor")

    def run_shards(
        self, shards: Sequence[Sequence[Task]], replication: Callable
    ) -> Iterator[ShardResults]:
        """Run shards across the pool, yielding each as it completes.

        Completion order is arbitrary; the driver reassembles results by
        task ordinal, so ordering here is irrelevant to correctness.
        """
        if not shards:
            return
        self._check_resolvable(replication)
        # Workers started with "spawn" know nothing of the parent's
        # sys.path; record the library location so they can re-import it.
        # The parent's span context rides along so worker-side events join
        # the parent trace.
        package_root = _repro_import_root()
        context = current_context()
        trace_context = (context.trace_id, context.span_id) if context else None
        registry = get_registry()
        in_flight = registry.gauge(
            "repro_shards_in_flight",
            "Shards currently submitted to an execution backend.",
        )
        dispatch = registry.histogram(
            "repro_shard_dispatch_overhead_seconds",
            "Parent-side shard latency minus worker-measured wall time "
            "(pickling, pool queueing, result transfer).",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        completed = registry.counter(
            "repro_shards_completed_total",
            "Shards completed, by execution backend.",
        )
        pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=self.mp_context,
            initializer=_worker_initializer,
            initargs=((package_root,), trace_context),
        )
        try:
            submitted = time.perf_counter()
            pending = {
                pool.submit(_execute_shard_timed, list(shard)) for shard in shards
            }
            in_flight.inc(len(pending), backend="parallel")
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    results, timing = future.result()
                    in_flight.dec(backend="parallel")
                    completed.inc(backend="parallel")
                    elapsed = time.perf_counter() - submitted
                    dispatch.observe(
                        max(0.0, elapsed - timing["wall_s"]), backend="parallel"
                    )
                    self.last_shard_timing = timing
                    yield results
        except BaseException:
            # Abort path (worker crash, KeyboardInterrupt, abandoned
            # generator): drop every not-yet-started shard and return
            # *without* joining the pool — a `with pool:` exit would block
            # until in-flight shards finish, hanging a Ctrl-C for as long as
            # the slowest running shard.  Workers still running their
            # current shard exit on their own once it completes.
            in_flight.dec(len(pending), backend="parallel")
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)


def _repro_import_root() -> str:
    """Directory that must be on ``sys.path`` for ``import repro`` to work."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
