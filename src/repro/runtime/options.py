"""One frozen options object for everything that configures *how* a run executes.

Before this module the execution knobs travelled as a sprawl of keyword
arguments — ``run_sweep(..., executor=..., store=...)``,
``run_replications(..., executor=..., store=...)``,
``execute_request(..., executor=..., store=...)`` — with each front end
re-deriving executors from worker counts on its own.  :class:`ExecutionOptions`
collapses them into one value the CLI, the service daemon and the campaign
scheduler all build once and thread through every layer:

``executor``
    A ready-made execution backend (anything satisfying
    :class:`repro.runtime.backend.Backend` — serial, process pool, socket
    broker).  Mutually exclusive with a non-default ``workers``.
``workers``
    Shorthand for "build me a :class:`ParallelExecutor` with this many
    processes" (``1`` means in-process serial execution).
``store``
    A :class:`~repro.runtime.store.ResultStore` serving cache hits and
    persisting completed shards for resume.
``engine_options``
    Extra per-point parameters (e.g. ``{"backend": "torch", "dtype":
    "float32"}``) merged over every grid point's parameter dict — they ride
    into result rows and content-address keys like any other parameter.
``tracer``
    An optional :class:`~repro.obs.trace.Tracer`.  When set, execution
    routes through the runtime path and every shard/node records a span;
    trace ids derive from content addresses, so enabling tracing never
    perturbs results.

The legacy keyword arguments keep working but emit ``DeprecationWarning``;
:func:`resolve_options` is the single place that folds them in, so every
entry point deprecates identically and both spellings are bit-identical.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict, Mapping, Optional

from repro.runtime.executors import ParallelExecutor


@dataclass(frozen=True)
class ExecutionOptions:
    """How a workload executes: backend/executor, store, workers, engine options.

    Frozen and side-effect free: building one never opens a store or starts
    a process pool — :meth:`resolve_executor` materialises the executor at
    the moment of use.
    """

    executor: Any = None
    store: Any = None
    workers: int = 1
    engine_options: Mapping[str, Any] = field(default_factory=dict)
    tracer: Any = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be at least 1, got {self.workers}")
        if self.executor is not None and self.workers != 1:
            raise ValueError(
                "pass either a ready-made executor or a workers count, not both"
            )
        object.__setattr__(
            self, "engine_options", MappingProxyType(dict(self.engine_options))
        )

    @property
    def active(self) -> bool:
        """Whether these options route execution through the parallel runtime."""
        return (
            self.executor is not None
            or self.store is not None
            or self.workers > 1
            or self.tracer is not None
        )

    def resolve_executor(self) -> Any:
        """The executor to run with: the given one, a pool, or ``None`` (serial)."""
        if self.executor is not None:
            return self.executor
        if self.workers > 1:
            return ParallelExecutor(self.workers)
        return None

    def merged_parameters(
        self, parameters: Optional[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        """``parameters`` with :attr:`engine_options` layered on top."""
        merged = dict(parameters or {})
        merged.update(self.engine_options)
        return merged


def resolve_options(
    options: Optional[ExecutionOptions],
    *,
    executor: Any = None,
    store: Any = None,
    owner: str = "this function",
) -> Optional[ExecutionOptions]:
    """Fold legacy ``executor=``/``store=`` kwargs into an options object.

    The one shared deprecation shim: when a caller still passes the
    pre-:class:`ExecutionOptions` keyword arguments, warn once per call site
    and build the equivalent options value, so old and new spellings run the
    exact same code path (and therefore produce bit-identical results).
    Mixing both spellings is an error — silently preferring one would make
    the other a no-op.
    """
    if executor is None and store is None:
        return options
    if options is not None:
        raise ValueError(
            f"{owner} got both options= and the deprecated executor=/store= "
            "keyword arguments; pass everything through options="
        )
    warnings.warn(
        f"the executor=/store= keyword arguments of {owner} are deprecated; "
        "pass options=ExecutionOptions(executor=..., store=...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return ExecutionOptions(executor=executor, store=store)
