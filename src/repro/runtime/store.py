"""Content-addressed result store: stdlib ``sqlite3`` + JSON rows.

Every :class:`~repro.runtime.shard.Task` has a canonical **cache key** — the
SHA-256 of the canonical JSON encoding of::

    {"function": <module:qualname>, "parameters": {...},
     "seeds": [...], "code_version": <repro.__version__>}

Two tasks share a key exactly when they would compute the same metrics:
same replication function, same parameters (order-insensitive, tuples and
numpy scalars normalised), same seed list, same code version.  Sweep names,
shard layout and worker counts are deliberately *not* part of the key, so a
result computed by any execution strategy serves every other one.

The store keeps one row per key with the metrics as a JSON array (one object
per seed).  Results are written only from the opening process — workers
return results to the parent, which flushes each completed shard — but that
process may be multi-threaded: the API daemon's worker threads read and
write one shared store concurrently.  Access is therefore serialised behind
an internal lock (one connection, ``check_same_thread=False``), and
file-backed stores run in WAL mode with a busy timeout so a second *process*
pointing at the same file (a CLI run next to a daemon) blocks briefly
instead of failing with ``database is locked``.  ``hits``/``misses`` count
:meth:`get` outcomes for reporting; :meth:`counters` snapshots both
atomically so callers can attribute deltas to a span of work.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro import __version__
from repro.runtime.shard import Task

PathLike = Union[str, Path]

_BUSY_TIMEOUT_SECONDS = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key TEXT PRIMARY KEY,
    function TEXT NOT NULL,
    name TEXT NOT NULL,
    parameters TEXT NOT NULL,
    seeds TEXT NOT NULL,
    code_version TEXT NOT NULL,
    metrics TEXT NOT NULL,
    created_at TEXT NOT NULL
)
"""

# Naming the columns keeps the insert valid (or loudly broken) if the schema
# ever gains a column; a positional VALUES (?,...) would silently misalign.
_INSERT = """
INSERT OR REPLACE INTO results
    (key, function, name, parameters, seeds, code_version, metrics, created_at)
VALUES (?, ?, ?, ?, ?, ?, ?, ?)
"""


def canonical_value(value: Any) -> Any:
    """Normalise ``value`` for canonical JSON encoding.

    Mappings are key-sorted, sequences become lists, numpy scalars and
    0-d arrays become Python scalars.  Unsupported types raise ``TypeError``
    rather than falling back to ``str`` — a silent fallback could make two
    different parameterisations collide on one key.
    """
    if isinstance(value, dict):
        normalized = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise TypeError(
                    f"cache-key parameter names must be strings, got {key!r}"
                )
            normalized[key] = canonical_value(value[key])
        return normalized
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, np.ndarray):
        return [canonical_value(item) for item in value.tolist()]
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot build a canonical cache key from {type(value).__name__} "
        f"value {value!r}; use scalars, strings, sequences or mappings"
    )


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(canonical_value(value), sort_keys=True, separators=(",", ":"))


def task_key(task: Task, code_version: str = __version__) -> str:
    """The content-addressed cache key of ``task``."""
    payload = canonical_json(
        {
            "function": task.function_ref,
            "parameters": task.parameters,
            "seeds": list(task.seeds),
            "code_version": code_version,
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultStore:
    """A persistent, content-addressed cache of task metrics.

    Parameters
    ----------
    path:
        Sqlite database file (created, with parents, if missing) or
        ``":memory:"`` for an ephemeral store.
    code_version:
        Version string mixed into every key (default: ``repro.__version__``),
        so upgrading the library naturally invalidates old entries.

    Thread safety: all statements run on one connection serialised behind an
    internal lock, so a store instance may be shared freely between threads
    (the API daemon shares one store across its whole worker pool).  Sharing
    one *file* between processes is also safe — WAL mode plus a
    30-second busy timeout — though hit/miss counters are per-instance.
    """

    def __init__(
        self, path: PathLike = ":memory:", *, code_version: str = __version__
    ) -> None:
        self.path = path if path == ":memory:" else Path(path)
        self.code_version = code_version
        self.hits = 0
        self.misses = 0
        self._lock = threading.RLock()
        if isinstance(self.path, Path):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._connection: Optional[sqlite3.Connection] = sqlite3.connect(
            str(self.path),
            timeout=_BUSY_TIMEOUT_SECONDS,
            check_same_thread=False,
        )
        # WAL lets a concurrent reader proceed during a write (it is a no-op
        # "memory" mode for :memory: stores); the busy timeout makes a second
        # writer on the same file wait instead of raising "database is
        # locked".
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute(
            f"PRAGMA busy_timeout={int(_BUSY_TIMEOUT_SECONDS * 1000)}"
        )
        self._connection.execute(_SCHEMA)
        self._connection.commit()

    def _require_connection(self) -> sqlite3.Connection:
        if self._connection is None:
            raise RuntimeError(f"result store {self.path} is closed")
        return self._connection

    def key_for(self, task: Task) -> str:
        """Cache key of ``task`` under this store's code version."""
        return task_key(task, self.code_version)

    def get(self, key: str) -> Optional[List[Dict[str, float]]]:
        """Stored metrics for ``key``, or ``None`` (counts hits/misses)."""
        with self._lock:
            row = self._require_connection().execute(
                "SELECT metrics FROM results WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
            self.hits += 1
        return json.loads(row[0])

    def put(self, task: Task, metrics: List[Dict[str, float]]) -> str:
        """Store ``metrics`` for ``task``; returns the key."""
        return self.put_many([(task, metrics)])[0]

    def put_many(
        self, entries: Iterable[Tuple[Task, List[Dict[str, float]]]]
    ) -> List[str]:
        """Store a batch of results in one transaction (a shard flush)."""
        keys: List[str] = []
        now = datetime.now(timezone.utc).isoformat()
        rows = []
        for task, metrics in entries:
            key = self.key_for(task)
            keys.append(key)
            rows.append(
                (
                    key,
                    task.function_ref,
                    task.name,
                    canonical_json(task.parameters),
                    json.dumps(list(task.seeds)),
                    self.code_version,
                    json.dumps(metrics),
                    now,
                )
            )
        with self._lock:
            connection = self._require_connection()
            connection.executemany(_INSERT, rows)
            connection.commit()
        return keys

    def counters(self) -> Tuple[int, int]:
        """Atomic ``(hits, misses)`` snapshot of this instance's counters."""
        with self._lock:
            return self.hits, self.misses

    def __contains__(self, key: str) -> bool:
        with self._lock:
            row = self._require_connection().execute(
                "SELECT 1 FROM results WHERE key = ?", (key,)
            ).fetchone()
        return row is not None

    def __len__(self) -> int:
        with self._lock:
            row = self._require_connection().execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
        return int(row[0])

    def close(self) -> None:
        """Close the underlying sqlite connection (idempotent)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._connection is None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
