"""Tiered, content-addressed result store: hot LRU tier + columnar cold tier.

Every :class:`~repro.runtime.shard.Task` has a canonical **cache key** — the
SHA-256 of the canonical JSON encoding of::

    {"function": <module:qualname>, "parameters": {...},
     "seeds": [...], "code_version": <repro.__version__>}

Two tasks share a key exactly when they would compute the same metrics:
same replication function, same parameters (order-insensitive, tuples and
numpy scalars normalised), same seed list, same code version.  Sweep names,
shard layout and worker counts are deliberately *not* part of the key, so a
result computed by any execution strategy serves every other one.  The key
derivation is unchanged from the original single-file store — existing
stores keep addressing the same entries bit-identically.

The store itself is **tiered**, in the spirit of hot/cold KV-cache placement
with LSM-style background compaction:

hot tier
    An in-memory LRU map of decoded metric rows with a configurable byte and
    entry budget (``hot_budget_bytes``/``hot_budget_entries``).  Every
    ``put`` and every cold read admits the entry here; over-budget entries
    are evicted least-recently-used first, and an entry larger than the
    whole budget is never admitted (it is served from the cold tier on every
    read instead of thrashing the LRU).
cold tier
    The durable home of every entry.  Bulk payloads are written as **binary
    columnar segments** — ``.npz`` files holding one float64 value matrix
    plus presence masks per spilled batch, instead of per-row JSON blobs —
    in a ``<path>.segments/`` directory next to the sqlite file.  Sqlite is
    kept as the **key → location index**: a row either carries its metrics
    inline as JSON (legacy rows from pre-tiered stores, ``:memory:`` stores,
    and the fallback for non-float metric values, which columnar float64
    storage could not round-trip bit-identically) or points at
    ``(segment, entry)`` in a segment file.
compaction
    A background thread merges small spill segments into one large segment
    once ``compact_threshold`` of them accumulate, and applies the optional
    eviction policies (``max_age_seconds`` drops entries by age;
    ``cold_budget_bytes`` drops least-recently-used segment entries once the
    cold tier outgrows the budget — both default to ``None`` = never drop).
    Readers are never blocked: segments are immutable, the index flips to
    the merged segment in one transaction, and a reader that raced a
    just-deleted file simply re-resolves the key through the index.

Writes happen only from the opening process — workers return results to the
parent, which flushes each completed shard — but that process may be
multi-threaded: the API daemon's worker threads read and write one shared
store concurrently.  Index and hot-tier access is therefore serialised
behind an internal lock (one connection, ``check_same_thread=False``),
segment file I/O runs outside it, and file-backed stores run in WAL mode
with a busy timeout so a second *process* pointing at the same file (a CLI
run next to a daemon) blocks briefly instead of failing with ``database is
locked``.  ``hits``/``misses`` count :meth:`get` outcomes as before;
:meth:`counters` snapshots the full tier breakdown (hot hits, cold hits,
spills, evictions, compactions) atomically so callers can attribute deltas
to a span of work.
"""

from __future__ import annotations

import hashlib
import json
import math
import sqlite3
import threading
import time
import uuid
from collections import OrderedDict
from datetime import datetime, timedelta, timezone
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro import __version__
from repro.runtime.shard import Task

PathLike = Union[str, Path]

_BUSY_TIMEOUT_SECONDS = 30.0

DEFAULT_HOT_BUDGET_BYTES = 64 * 2**20
"""Default in-memory hot-tier budget (64 MiB of estimated decoded rows)."""

DEFAULT_COMPACT_THRESHOLD = 8
"""Spill segments that accumulate before the background thread merges them."""

DEFAULT_COMPACTION_INTERVAL = 30.0
"""Fallback wake interval of the compaction thread (it is also event-woken)."""

_SEGMENT_DIR_SUFFIX = ".segments"
_SEGMENT_CACHE_SIZE = 2
_ORPHAN_GRACE_SECONDS = 60.0
_SELECT_CHUNK = 500

# ``segment``/``entry`` locate a row in a columnar cold segment; both are
# NULL (and ``metrics`` carries inline JSON) for legacy and fallback rows.
# Pre-tiered stores are migrated in place by ALTER TABLE on open — existing
# rows keep their inline JSON, so no data is lost.
_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key TEXT PRIMARY KEY,
    function TEXT NOT NULL,
    name TEXT NOT NULL,
    parameters TEXT NOT NULL,
    seeds TEXT NOT NULL,
    code_version TEXT NOT NULL,
    metrics TEXT NOT NULL,
    created_at TEXT NOT NULL,
    segment TEXT,
    entry INTEGER
)
"""

# Naming the columns keeps the insert valid (or loudly broken) if the schema
# ever gains a column; a positional VALUES (?,...) would silently misalign.
_INSERT = """
INSERT OR REPLACE INTO results
    (key, function, name, parameters, seeds, code_version, metrics,
     created_at, segment, entry)
VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
"""


def canonical_value(value: Any) -> Any:
    """Normalise ``value`` for canonical JSON encoding.

    Mappings are key-sorted, sequences become lists, numpy scalars and
    0-d arrays become Python scalars.  Unsupported types raise ``TypeError``
    rather than falling back to ``str`` — a silent fallback could make two
    different parameterisations collide on one key.  Non-finite floats raise
    ``ValueError``: RFC 8259 JSON has no ``NaN``/``Infinity`` tokens, so a
    key built from them could not round-trip through other JSON parsers
    (and ``NaN != NaN`` makes such a parameter unmatchable anyway).
    """
    if isinstance(value, dict):
        normalized = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise TypeError(
                    f"cache-key parameter names must be strings, got {key!r}"
                )
            normalized[key] = canonical_value(value[key])
        return normalized
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, np.ndarray):
        return [canonical_value(item) for item in value.tolist()]
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return canonical_value(value.item())
    if isinstance(value, float) and not math.isfinite(value):
        raise ValueError(
            f"non-finite float {value!r} cannot appear in a cache key: "
            "JSON (RFC 8259) has no NaN/Infinity tokens, so the key would "
            "not round-trip; replace it with a finite sentinel value"
        )
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot build a canonical cache key from {type(value).__name__} "
        f"value {value!r}; use scalars, strings, sequences or mappings"
    )


def canonical_json(value: Any) -> str:
    """Deterministic, RFC-compliant JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(
        canonical_value(value), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def task_key(task: Task, code_version: str = __version__) -> str:
    """The content-addressed cache key of ``task``."""
    payload = canonical_json(
        {
            "function": task.function_ref,
            "parameters": task.parameters,
            "seeds": list(task.seeds),
            "code_version": code_version,
        }
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class StoreCounters(NamedTuple):
    """Atomic snapshot of a store's tier counters.

    ``hits``/``misses`` keep their original meaning (every :meth:`ResultStore.get`
    outcome); ``hits == hot_hits + cold_hits`` always.  ``spills`` counts
    entries written to cold-tier segment files, ``evictions`` counts entries
    dropped from the hot tier by the LRU budget, and ``compactions`` counts
    completed segment merges.
    """

    hits: int
    misses: int
    hot_hits: int
    cold_hits: int
    spills: int
    evictions: int
    compactions: int

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (the daemon's ``/stats`` payload)."""
        return dict(self._asdict())


Metrics = List[Dict[str, float]]


def _estimate_entry_bytes(metrics: Sequence[Dict[str, Any]]) -> int:
    """Cheap size estimate of decoded metric rows for the hot-tier budget."""
    total = 88
    for row in metrics:
        total += 72
        for name in row:
            total += 72 + len(name)
    return total


def _columnar_eligible(metrics: Sequence[Any]) -> bool:
    """Whether ``metrics`` round-trips bit-identically through float64 columns.

    Only rows whose values are genuine Python floats qualify; ints, bools,
    strings or None would come back as float64 (or not at all), so such
    entries fall back to inline JSON in the index.
    """
    if not isinstance(metrics, (list, tuple)):
        return False
    for row in metrics:
        if not isinstance(row, dict):
            return False
        for name, value in row.items():
            if not isinstance(name, str) or type(value) is not float:
                return False
    return True


def _encode_segment(
    entries: Sequence[Tuple[str, Metrics]],
) -> Dict[str, np.ndarray]:
    """Columnar arrays for one segment: keys, row offsets, value/mask matrices."""
    keys = np.array([key for key, _ in entries])
    offsets = np.zeros(len(entries) + 1, dtype=np.int64)
    names: List[str] = []
    positions: Dict[str, int] = {}
    rows: List[Dict[str, float]] = []
    for index, (_, metrics) in enumerate(entries):
        offsets[index + 1] = offsets[index] + len(metrics)
        for row in metrics:
            rows.append(row)
            for name in row:
                if name not in positions:
                    positions[name] = len(names)
                    names.append(name)
    values = np.zeros((len(rows), len(names)), dtype=np.float64)
    present = np.zeros((len(rows), len(names)), dtype=bool)
    for row_index, row in enumerate(rows):
        for name, value in row.items():
            column = positions[name]
            values[row_index, column] = value
            present[row_index, column] = True
    return {
        "keys": keys,
        "offsets": offsets,
        "names": np.array(names) if names else np.array([], dtype="<U1"),
        "values": values,
        "present": present,
    }


def _decode_entry(arrays: Dict[str, np.ndarray], entry: int) -> Metrics:
    """Rebuild one entry's metric rows from a loaded segment (bit-identical)."""
    offsets = arrays["offsets"]
    names = [str(name) for name in arrays["names"]]
    values = arrays["values"]
    present = arrays["present"]
    metrics: Metrics = []
    for row_index in range(int(offsets[entry]), int(offsets[entry + 1])):
        row: Dict[str, float] = {}
        for column, name in enumerate(names):
            if present[row_index, column]:
                row[name] = float(values[row_index, column])
        metrics.append(row)
    return metrics


class _HotTier:
    """In-memory LRU of decoded entries; the caller holds the store lock."""

    def __init__(
        self, budget_bytes: int, budget_entries: Optional[int] = None
    ) -> None:
        self.budget_bytes = budget_bytes
        self.budget_entries = budget_entries
        self.bytes = 0
        self._entries: "OrderedDict[str, Tuple[Tuple[Dict[str, Any], ...], int]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[Tuple[Dict[str, Any], ...]]:
        found = self._entries.get(key)
        if found is None:
            return None
        self._entries.move_to_end(key)
        return found[0]

    def admit(self, key: str, metrics: Sequence[Dict[str, Any]]) -> int:
        """Insert ``key`` (copying the rows); returns the number of evictions.

        An entry larger than the whole byte budget is not admitted at all —
        caching it would evict everything else for a single resident.
        """
        size = _estimate_entry_bytes(metrics)
        if size > self.budget_bytes:
            self.discard(key)
            return 0
        self.discard(key)
        self._entries[key] = (tuple(dict(row) for row in metrics), size)
        self.bytes += size
        evicted = 0
        while self.bytes > self.budget_bytes or (
            self.budget_entries is not None and len(self._entries) > self.budget_entries
        ):
            victim, (_, victim_size) = self._entries.popitem(last=False)
            self.bytes -= victim_size
            if victim != key:
                evicted += 1
        return evicted

    def discard(self, key: str) -> None:
        found = self._entries.pop(key, None)
        if found is not None:
            self.bytes -= found[1]


class ResultStore:
    """A persistent, tiered, content-addressed cache of task metrics.

    Parameters
    ----------
    path:
        Sqlite index file (created, with parents, if missing) or
        ``":memory:"`` for an ephemeral store.  File-backed stores keep
        their columnar cold segments in a sibling ``<path>.segments/``
        directory; ``:memory:`` stores hold every entry inline (no files,
        no compaction thread).
    code_version:
        Version string mixed into every key (default: ``repro.__version__``),
        so upgrading the library naturally invalidates old entries.
    hot_budget_bytes / hot_budget_entries:
        Hot-tier LRU budget (estimated decoded bytes / entry count).
    compact_threshold:
        Spill segments that trigger a background merge.
    compaction_interval:
        Fallback wake interval of the compaction thread in seconds;
        ``None`` or ``0`` disables the thread (call :meth:`compact`
        explicitly — tests do).
    cold_budget_bytes / max_age_seconds:
        Optional cold-tier eviction policies applied during compaction:
        drop least-recently-used segment entries once the cold tier exceeds
        the byte budget, and drop any entry older than the age limit.  Both
        default to ``None`` — by default the store never discards data.

    Thread safety: index and hot-tier operations run behind one internal
    lock (a single sqlite connection, ``check_same_thread=False``), so a
    store instance may be shared freely between threads (the API daemon
    shares one store across its whole worker pool); segment file I/O runs
    outside the lock so compaction never blocks readers.  Sharing one *file*
    between processes is safe for reads and writes — WAL mode plus a
    30-second busy timeout — though counters are per-instance and only one
    process should run compaction at a time.
    """

    def __init__(
        self,
        path: PathLike = ":memory:",
        *,
        code_version: str = __version__,
        hot_budget_bytes: int = DEFAULT_HOT_BUDGET_BYTES,
        hot_budget_entries: Optional[int] = None,
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
        compaction_interval: Optional[float] = DEFAULT_COMPACTION_INTERVAL,
        cold_budget_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
    ) -> None:
        if hot_budget_bytes <= 0:
            raise ValueError(
                f"hot_budget_bytes must be positive, got {hot_budget_bytes}"
            )
        if compact_threshold < 2:
            raise ValueError(
                f"compact_threshold must be at least 2, got {compact_threshold}"
            )
        self.path = path if path == ":memory:" else Path(path)
        self.code_version = code_version
        self.hits = 0
        self.misses = 0
        self.hot_hits = 0
        self.cold_hits = 0
        self.spills = 0
        self.evictions = 0
        self.compactions = 0
        self.compaction_error: Optional[BaseException] = None
        self._hot = _HotTier(hot_budget_bytes, hot_budget_entries)
        self._compact_threshold = compact_threshold
        self._cold_budget_bytes = cold_budget_bytes
        self._max_age_seconds = max_age_seconds
        self._lock = threading.RLock()
        self._compact_lock = threading.Lock()
        self._segment_cache: "OrderedDict[str, Dict[str, np.ndarray]]" = OrderedDict()
        self._segment_cache_lock = threading.Lock()
        self._inflight_segments: set = set()
        self._access_clock = 0
        self._last_access: Dict[str, int] = {}
        if isinstance(self.path, Path):
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.segments_dir: Optional[Path] = Path(
                str(self.path) + _SEGMENT_DIR_SUFFIX
            )
        else:
            self.segments_dir = None
        self._connection: Optional[sqlite3.Connection] = sqlite3.connect(
            str(self.path),
            timeout=_BUSY_TIMEOUT_SECONDS,
            check_same_thread=False,
        )
        # WAL lets a concurrent reader proceed during a write (it is a no-op
        # "memory" mode for :memory: stores); the busy timeout makes a second
        # writer on the same file wait instead of raising "database is
        # locked".
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute(
            f"PRAGMA busy_timeout={int(_BUSY_TIMEOUT_SECONDS * 1000)}"
        )
        self._connection.execute(_SCHEMA)
        self._migrate_legacy_schema()
        self._connection.commit()
        self._closing = threading.Event()
        self._compaction_wake = threading.Event()
        self._compaction_thread: Optional[threading.Thread] = None
        if self.segments_dir is not None and compaction_interval:
            self._compaction_thread = threading.Thread(
                target=self._compaction_loop,
                args=(float(compaction_interval),),
                name="repro-store-compaction",
                daemon=True,
            )
            self._compaction_thread.start()

    def _migrate_legacy_schema(self) -> None:
        """Add the tier location columns to a pre-tiered store, in place.

        Legacy rows keep their inline JSON metrics (``segment`` stays NULL),
        so opening an old store loses nothing; new writes spill to segments
        alongside them.
        """
        columns = {
            row[1] for row in self._connection.execute("PRAGMA table_info(results)")
        }
        if "segment" not in columns:
            self._connection.execute("ALTER TABLE results ADD COLUMN segment TEXT")
        if "entry" not in columns:
            self._connection.execute("ALTER TABLE results ADD COLUMN entry INTEGER")

    def _require_connection(self) -> sqlite3.Connection:
        if self._connection is None:
            raise RuntimeError(f"result store {self.path} is closed")
        return self._connection

    def key_for(self, task: Task) -> str:
        """Cache key of ``task`` under this store's code version."""
        return task_key(task, self.code_version)

    # -- read path -----------------------------------------------------------

    def _touch(self, key: str) -> None:
        # LRU recency for the cold-eviction policy; only tracked when the
        # policy is configured (the dict would otherwise grow unbounded).
        if self._cold_budget_bytes is not None:
            self._access_clock += 1
            self._last_access[key] = self._access_clock

    def _copy(self, rows: Sequence[Dict[str, Any]]) -> Metrics:
        # Callers get fresh row dicts so nobody can mutate the hot tier.
        return [dict(row) for row in rows]

    def get(self, key: str) -> Optional[Metrics]:
        """Stored metrics for ``key``, or ``None`` (counts hits/misses)."""
        while True:
            with self._lock:
                self._require_connection()
                hot = self._hot.get(key)
                if hot is not None:
                    self.hits += 1
                    self.hot_hits += 1
                    self._touch(key)
                    return self._copy(hot)
                row = (
                    self._require_connection()
                    .execute(
                        "SELECT metrics, segment, entry FROM results WHERE key = ?",
                        (key,),
                    )
                    .fetchone()
                )
                if row is None:
                    self.misses += 1
                    return None
                metrics_json, segment, entry = row
                if segment is None:
                    metrics = json.loads(metrics_json)
                    self._admit(key, metrics)
                    self.hits += 1
                    self.cold_hits += 1
                    self._touch(key)
                    return metrics
            arrays = self._load_segment(segment)
            if arrays is None:
                # A compaction deleted the segment after we read the index;
                # the index already points at the merged segment — retry.
                continue
            metrics = _decode_entry(arrays, int(entry))
            with self._lock:
                self._admit(key, metrics)
                self.hits += 1
                self.cold_hits += 1
                self._touch(key)
            return metrics

    def get_many(self, keys: Sequence[str]) -> Dict[str, Metrics]:
        """Bulk lookup: metrics for every stored key in ``keys``.

        One index query per 500 keys instead of one per key — the fast path
        for store-bound replay of large plans.  Counts hits/misses per key
        occurrence exactly as per-key :meth:`get` calls would.
        """
        found: Dict[str, Metrics] = {}
        pending: List[str] = []
        seen: set = set()
        with self._lock:
            self._require_connection()
            for key in keys:
                if key in seen or key in found:
                    continue
                hot = self._hot.get(key)
                if hot is not None:
                    found[key] = self._copy(hot)
                    self.hits += 1
                    self.hot_hits += 1
                    self._touch(key)
                else:
                    seen.add(key)
                    pending.append(key)
            connection = self._require_connection()
            located: List[Tuple[str, Optional[str], Optional[int], Optional[str]]] = []
            for start in range(0, len(pending), _SELECT_CHUNK):
                chunk = pending[start : start + _SELECT_CHUNK]
                placeholders = ",".join("?" for _ in chunk)
                located.extend(
                    connection.execute(
                        "SELECT key, segment, entry, metrics FROM results "
                        f"WHERE key IN ({placeholders})",
                        chunk,
                    ).fetchall()
                )
            by_segment: Dict[str, List[Tuple[str, int]]] = {}
            for key, segment, entry, metrics_json in located:
                if segment is None:
                    metrics = json.loads(metrics_json)
                    self._admit(key, metrics)
                    found[key] = metrics
                    self.hits += 1
                    self.cold_hits += 1
                    self._touch(key)
                else:
                    by_segment.setdefault(segment, []).append((key, int(entry)))
            resolved = {key for key, *_ in located}
            for key in pending:
                if key not in resolved:
                    self.misses += 1
        for segment, members in by_segment.items():
            arrays = self._load_segment(segment)
            if arrays is None:
                # Segment merged away mid-lookup: re-resolve those keys.
                for key, _ in members:
                    metrics = self.get(key)
                    if metrics is not None:
                        found[key] = metrics
                continue
            with self._lock:
                for key, entry in members:
                    metrics = _decode_entry(arrays, entry)
                    self._admit(key, metrics)
                    found[key] = metrics
                    self.hits += 1
                    self.cold_hits += 1
                    self._touch(key)
        # Count duplicate occurrences exactly as repeated get() calls would:
        # later occurrences of a found key are hot hits (the first occurrence
        # admitted the entry), of an absent key further misses.
        first_seen: set = set()
        duplicate_hits = 0
        duplicate_misses = 0
        for key in keys:
            if key in first_seen:
                if key in found:
                    duplicate_hits += 1
                else:
                    duplicate_misses += 1
            else:
                first_seen.add(key)
        if duplicate_hits or duplicate_misses:
            with self._lock:
                self.hits += duplicate_hits
                self.hot_hits += duplicate_hits
                self.misses += duplicate_misses
        return found

    def _admit(self, key: str, metrics: Sequence[Dict[str, Any]]) -> None:
        # Caller holds the lock.
        self.evictions += self._hot.admit(key, metrics)

    def _load_segment(self, segment: str) -> Optional[Dict[str, np.ndarray]]:
        """Decoded arrays of ``segment`` (cached), or ``None`` if the file is gone."""
        with self._segment_cache_lock:
            cached = self._segment_cache.get(segment)
            if cached is not None:
                self._segment_cache.move_to_end(segment)
                return cached
        if self.segments_dir is None:
            return None
        try:
            with np.load(self.segments_dir / segment) as payload:
                arrays = {name: payload[name] for name in payload.files}
        except FileNotFoundError:
            return None
        with self._segment_cache_lock:
            self._segment_cache[segment] = arrays
            self._segment_cache.move_to_end(segment)
            while len(self._segment_cache) > _SEGMENT_CACHE_SIZE:
                self._segment_cache.popitem(last=False)
        return arrays

    # -- write path ----------------------------------------------------------

    def put(self, task: Task, metrics: Metrics) -> str:
        """Store ``metrics`` for ``task``; returns the key."""
        return self.put_many([(task, metrics)])[0]

    def put_many(self, entries: Iterable[Tuple[Task, Metrics]]) -> List[str]:
        """Store a batch of results in one transaction (a shard flush).

        Columnar-eligible entries (all-float rows) spill together as one
        ``.npz`` segment; the rest (and every entry of a ``:memory:`` store)
        are stored inline in the index.  All entries are admitted to the hot
        tier, so a put followed by a get is a hot hit.
        """
        entries = list(entries)
        with self._lock:
            self._require_connection()
        now = datetime.now(timezone.utc).isoformat()
        keyed: List[Tuple[str, Task, Metrics]] = [
            (self.key_for(task), task, metrics) for task, metrics in entries
        ]
        spilled: List[Tuple[str, Metrics]] = []
        segment_name: Optional[str] = None
        if self.segments_dir is not None:
            # Last occurrence of a duplicate key wins (INSERT OR REPLACE
            # semantics), so only spill that occurrence.
            last_index = {key: index for index, (key, _, _) in enumerate(keyed)}
            spilled = [
                (key, metrics)
                for index, (key, _, metrics) in enumerate(keyed)
                if _columnar_eligible(metrics) and last_index[key] == index
            ]
        if spilled:
            segment_name = f"seg-{uuid.uuid4().hex[:12]}.npz"
            self._write_segment(segment_name, spilled)
        entry_index = {key: index for index, (key, _) in enumerate(spilled)}
        rows = []
        for key, task, metrics in keyed:
            in_segment = segment_name is not None and key in entry_index
            rows.append(
                (
                    key,
                    task.function_ref,
                    task.name,
                    canonical_json(task.parameters),
                    json.dumps(list(task.seeds)),
                    self.code_version,
                    "" if in_segment else json.dumps(metrics),
                    now,
                    segment_name if in_segment else None,
                    entry_index[key] if in_segment else None,
                )
            )
        with self._lock:
            connection = self._require_connection()
            connection.executemany(_INSERT, rows)
            connection.commit()
            for key, _, metrics in keyed:
                self._admit(key, metrics)
            self.spills += len(spilled)
            segments_due = (
                self._compaction_thread is not None
                and self.segment_count() >= self._compact_threshold
            )
        if spilled:
            with self._lock:
                self._inflight_segments.discard(segment_name)
        if segments_due:
            self._compaction_wake.set()
        return [key for key, _, _ in keyed]

    def _write_segment(self, name: str, entries: Sequence[Tuple[str, Metrics]]) -> None:
        assert self.segments_dir is not None
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        with self._lock:
            self._inflight_segments.add(name)
        arrays = _encode_segment(entries)
        np.savez(self.segments_dir / name, **arrays)

    # -- compaction ----------------------------------------------------------

    def _compaction_loop(self, interval: float) -> None:
        while not self._closing.is_set():
            self._compaction_wake.wait(timeout=interval)
            if self._closing.is_set():
                return
            self._compaction_wake.clear()
            try:
                if self._compaction_due():
                    self.compact()
            except Exception as error:  # pragma: no cover - defensive
                # Surface the failure on the owning thread's next counters()
                # call rather than dying silently (or spinning on it).
                self.compaction_error = error
                return

    def _compaction_due(self) -> bool:
        with self._lock:
            if self._connection is None:
                return False
            segments = self.segment_count()
        if segments >= self._compact_threshold:
            return True
        return segments > 0 and (
            self._max_age_seconds is not None or self._cold_budget_bytes is not None
        )

    def segment_count(self) -> int:
        """Number of live cold-tier segment files referenced by the index."""
        with self._lock:
            row = (
                self._require_connection()
                .execute("SELECT COUNT(DISTINCT segment) FROM results")
                .fetchone()
            )
        return int(row[0])

    def compact(self, *, force: bool = False) -> bool:
        """Merge spill segments and apply the cold eviction policies.

        Merges every live segment into one, drops entries older than
        ``max_age_seconds`` (segment *and* inline rows) and — once the cold
        tier exceeds ``cold_budget_bytes`` — the least-recently-used segment
        entries.  Readers are not blocked: the index flips in one
        transaction and old segment files are deleted only afterwards
        (a reader that raced the deletion re-resolves through the index).

        Returns ``True`` when anything was rewritten.  ``force`` compacts
        even a single segment (tests use this for determinism).
        """
        with self._compact_lock:
            compacted = self._compact_locked(force)
        if compacted:
            # Imported lazily: the store is import-cost sensitive and the
            # tracer is a no-op unless one was installed.
            from repro.obs.trace import get_tracer

            tracer = get_tracer()
            if getattr(tracer, "enabled", False):
                tracer.event(
                    "store_compaction",
                    {"segments": self.segment_count(), "path": str(self.path)},
                )
        return compacted

    def _compact_locked(self, force: bool) -> bool:
        if self.segments_dir is None:
            return False
        with self._lock:
            connection = self._require_connection()
            segment_rows = connection.execute(
                "SELECT key, segment, entry, created_at FROM results "
                "WHERE segment IS NOT NULL ORDER BY segment, entry"
            ).fetchall()
            inline_rows = (
                connection.execute(
                    "SELECT key, created_at FROM results WHERE segment IS NULL"
                ).fetchall()
                if self._max_age_seconds is not None
                else []
            )
        segments = sorted({row[1] for row in segment_rows})
        eviction_configured = (
            self._max_age_seconds is not None or self._cold_budget_bytes is not None
        )
        if not force and len(segments) < 2 and not eviction_configured:
            return False

        now = datetime.now(timezone.utc)
        cutoff: Optional[datetime] = None
        if self._max_age_seconds is not None:
            cutoff = now - timedelta(seconds=self._max_age_seconds)

        # Decode every live segment entry outside the lock; skip rows whose
        # location was overwritten since the snapshot (verified again below).
        loaded: Dict[str, Dict[str, np.ndarray]] = {}
        for segment in segments:
            arrays = self._load_segment(segment)
            if arrays is not None:
                loaded[segment] = arrays
        survivors: List[Tuple[str, str, int, Metrics]] = []
        expired: List[Tuple[str, str, int]] = []
        for key, segment, entry, created_at in segment_rows:
            arrays = loaded.get(segment)
            if arrays is None:
                continue
            if cutoff is not None and _parse_created(created_at) < cutoff:
                expired.append((key, segment, entry))
                continue
            survivors.append((key, segment, entry, _decode_entry(arrays, int(entry))))

        if self._cold_budget_bytes is not None:
            survivors = self._apply_cold_budget(survivors, expired)

        expired_inline: List[str] = []
        if cutoff is not None:
            expired_inline = [
                key
                for key, created_at in inline_rows
                if _parse_created(created_at) < cutoff
            ]

        if not force and len(segments) < 2 and not expired and not expired_inline:
            return False

        merged_name: Optional[str] = None
        if survivors:
            merged_name = f"seg-{uuid.uuid4().hex[:12]}.npz"
            self._write_segment(
                merged_name, [(key, metrics) for key, _, _, metrics in survivors]
            )

        with self._lock:
            connection = self._require_connection()
            # Flip each key to the merged segment only if its location is
            # still the one we read — a concurrent put wins otherwise.
            connection.executemany(
                "UPDATE results SET segment = ?, entry = ? "
                "WHERE key = ? AND segment = ? AND entry = ?",
                [
                    (merged_name, index, key, old_segment, old_entry)
                    for index, (key, old_segment, old_entry, _) in enumerate(survivors)
                ],
            )
            connection.executemany(
                "DELETE FROM results WHERE key = ? AND segment = ? AND entry = ?",
                [(key, segment, entry) for key, segment, entry in expired],
            )
            connection.executemany(
                "DELETE FROM results WHERE key = ? AND segment IS NULL",
                [(key,) for key in expired_inline],
            )
            connection.commit()
            for key, _, _ in expired:
                self._hot.discard(key)
                self._last_access.pop(key, None)
            for key in expired_inline:
                self._hot.discard(key)
                self._last_access.pop(key, None)
            self.compactions += 1
            if merged_name is not None:
                self._inflight_segments.discard(merged_name)
        with self._segment_cache_lock:
            for segment in segments:
                self._segment_cache.pop(segment, None)
        # The merged-away segments are referenced by no index row now —
        # delete them immediately; racing readers re-resolve via the index.
        for segment in segments:
            if segment == merged_name:  # pragma: no cover - uuid collision
                continue
            try:
                (self.segments_dir / segment).unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._sweep_segment_files()
        return True

    def _apply_cold_budget(
        self,
        survivors: List[Tuple[str, str, int, Metrics]],
        expired: List[Tuple[str, str, int]],
    ) -> List[Tuple[str, str, int, Metrics]]:
        """Drop least-recently-used survivors until under ``cold_budget_bytes``."""
        sized = [
            (entry, _estimate_entry_bytes(entry[3])) for entry in survivors
        ]
        total = sum(size for _, size in sized)
        if total <= self._cold_budget_bytes:
            return survivors
        with self._lock:
            recency = dict(self._last_access)
        # Oldest access first; never-accessed entries sort before any access
        # (recency 0) in their original insertion order.
        order = sorted(
            range(len(sized)), key=lambda i: (recency.get(sized[i][0][0], 0), i)
        )
        dropped: set = set()
        for index in order:
            if total <= self._cold_budget_bytes:
                break
            entry, size = sized[index]
            dropped.add(index)
            total -= size
            expired.append((entry[0], entry[1], entry[2]))
        return [entry for i, (entry, _) in enumerate(sized) if i not in dropped]

    def _sweep_segment_files(self) -> None:
        """Delete segment files no longer referenced by the index.

        Files younger than a grace period, or still being written by a
        concurrent ``put_many`` in this process, are left alone — another
        process may not have committed its index rows yet.
        """
        if self.segments_dir is None or not self.segments_dir.exists():
            return
        with self._lock:
            connection = self._connection
            if connection is None:
                return
            live = {
                row[0]
                for row in connection.execute(
                    "SELECT DISTINCT segment FROM results WHERE segment IS NOT NULL"
                )
            }
            inflight = set(self._inflight_segments)
        for path in self.segments_dir.glob("seg-*.npz"):
            if path.name in live or path.name in inflight:
                continue
            try:
                if time.time() - path.stat().st_mtime < _ORPHAN_GRACE_SECONDS:
                    continue
                path.unlink()
            except OSError:  # pragma: no cover - raced by another process
                continue

    # -- introspection ---------------------------------------------------------

    def counters(self) -> StoreCounters:
        """Atomic snapshot of this instance's tier counters.

        Re-raises an exception that killed the background compaction thread
        (it has nowhere else to surface).
        """
        with self._lock:
            if self.compaction_error is not None:
                error = self.compaction_error
                self.compaction_error = None
                raise RuntimeError("background compaction failed") from error
            return StoreCounters(
                hits=self.hits,
                misses=self.misses,
                hot_hits=self.hot_hits,
                cold_hits=self.cold_hits,
                spills=self.spills,
                evictions=self.evictions,
                compactions=self.compactions,
            )

    @property
    def hot_entries(self) -> int:
        """Entries currently resident in the hot tier."""
        with self._lock:
            return len(self._hot)

    @property
    def hot_bytes(self) -> int:
        """Estimated bytes currently resident in the hot tier."""
        with self._lock:
            return self._hot.bytes

    def __contains__(self, key: str) -> bool:
        with self._lock:
            self._require_connection()
            if key in self._hot:
                return True
            row = (
                self._require_connection()
                .execute("SELECT 1 FROM results WHERE key = ?", (key,))
                .fetchone()
            )
        return row is not None

    def __len__(self) -> int:
        with self._lock:
            row = (
                self._require_connection()
                .execute("SELECT COUNT(*) FROM results")
                .fetchone()
            )
        return int(row[0])

    def close(self) -> None:
        """Stop the compaction thread and close the sqlite index (idempotent)."""
        self._closing.set()
        self._compaction_wake.set()
        if self._compaction_thread is not None:
            self._compaction_thread.join(timeout=10.0)
            self._compaction_thread = None
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._connection is None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _parse_created(created_at: str) -> datetime:
    parsed = datetime.fromisoformat(created_at)
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=timezone.utc)
    return parsed
