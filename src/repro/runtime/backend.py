"""The pluggable execution-backend seam of the parallel runtime.

Everything that runs shards — the in-process :class:`SerialExecutor`, the
multi-process :class:`ParallelExecutor` and the socket-based
:class:`~repro.campaign.broker.BrokerBackend` — implements one structural
:class:`Backend` protocol, extracted here from the concrete classes in
:mod:`repro.runtime.executors` so new backends can plug into
:func:`~repro.runtime.driver.run_plan` (and therefore into every sweep,
service job and campaign node) without touching the driver:

``num_shards``
    The dispatch granularity the backend wants: the driver chunks a plan's
    pending tasks into at most this many shards.  Granularity never changes
    results — tasks are execution-invariant — only flush/recovery chunk size.
``run_shards(shards, replication)``
    A generator yielding one completed shard at a time as ``(task, metrics)``
    pairs, in arbitrary completion order.  The driver flushes each yielded
    shard to the result store immediately, which is what bounds the loss of
    a crash (of a worker process *or* of a remote broker) to in-flight
    shards.

:func:`check_resolvable` is the shared pre-flight check every distributing
backend runs before shipping work: a replication function travels as its
``module:qualname`` reference, so it must be importable at module level and
resolve back to the very function being run.
"""

from __future__ import annotations

from typing import Callable, Iterator, Protocol, Sequence, runtime_checkable

from repro.runtime.executors import ShardResults, resolve_replication
from repro.runtime.shard import Task, function_reference


@runtime_checkable
class Backend(Protocol):
    """Structural protocol of a shard-execution backend."""

    @property
    def num_shards(self) -> int:
        """Preferred number of dispatch chunks for a plan's pending tasks."""
        ...  # pragma: no cover - protocol stub

    def run_shards(
        self, shards: Sequence[Sequence[Task]], replication: Callable
    ) -> Iterator[ShardResults]:
        """Run shards, yielding each one's ``(task, metrics)`` pairs as it completes."""
        ...  # pragma: no cover - protocol stub


def check_resolvable(replication: Callable, backend_name: str) -> str:
    """Verify ``replication`` round-trips through its importable reference.

    Returns the ``module:qualname`` reference on success; raises
    :class:`ValueError` with a pointer at :class:`SerialExecutor` when the
    function is a closure or otherwise not importable — the error a user
    should see *before* any worker process or remote broker chokes on it.
    """
    reference = function_reference(replication)
    try:
        resolved = resolve_replication(reference)
    except (ImportError, AttributeError, ValueError) as error:
        raise ValueError(
            f"{backend_name} cannot ship {reference!r} to workers; "
            "replication functions must be importable at module level "
            "(use SerialExecutor for closures)"
        ) from error
    if resolved is not replication:
        raise ValueError(
            f"{reference!r} does not resolve back to the replication "
            f"function being run; {backend_name} needs module-level "
            "functions (use SerialExecutor for closures)"
        )
    return reference
