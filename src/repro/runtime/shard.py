"""Deterministic work decomposition for sharded sweep execution.

A :class:`ShardPlan` turns a ``ParameterGrid x replications`` workload (or a
single replicated :class:`~repro.experiments.config.ExperimentConfig`) into an
ordered tuple of :class:`Task` objects — the smallest units of work the
runtime schedules, caches and resumes.  The decomposition is **deterministic**
and **execution-invariant**:

* every grid point derives its seed list exactly as the legacy serial paths
  do (``seeds_for_replications(config.seed, config.replications)`` — the
  integer-seed materialisation of :func:`repro.utils.rng.spawn_rngs`'s
  independent streams), so the runtime never changes an experiment's
  provenance; and
* every task is a pure function of its own ``(function, parameters, seeds)``
  triple — no task observes which shard it landed on, how many workers exist,
  or what ran before it — so **any** sharding (1 worker or 32, one shard or a
  hundred) yields bit-identical per-(point, seed) metrics.

Task granularity follows the replication function's execution mode:

``loop``
    Plain per-seed functions split into one task per ``(point, seed)`` pair —
    maximal parallelism and per-seed cache/resume granularity.
``batched``
    ``@batched_replication`` functions derive one generator from the *whole*
    seed list, so a point's batch is indivisible: one task per point.
``grid``
    ``@grid_batched_replication`` functions are called with a single-point
    grid per task, which by construction equals the per-point batched
    convention (the generator is seeded by that point's seed list alone).
    Note this differs from the legacy whole-grid fused launch, whose single
    generator consumes every point's seeds at once; the runtime trades that
    fusion for shard-invariance and per-point caching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import _validated_metrics
from repro.utils.rng import seeds_for_replications

MODE_LOOP = "loop"
MODE_BATCHED = "batched"
MODE_GRID = "grid"


def function_reference(function: Callable) -> str:
    """The ``module:qualname`` string a worker process resolves back to ``function``."""
    return f"{function.__module__}:{function.__qualname__}"


def replication_mode(function: Callable) -> str:
    """Execution mode of a replication function (``loop``/``batched``/``grid``)."""
    if getattr(function, "grid_replications", False):
        return MODE_GRID
    if getattr(function, "batched_replications", False):
        return MODE_BATCHED
    return MODE_LOOP


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work: some seeds of one grid point.

    Tasks are plain picklable data — the replication function travels as its
    importable ``module:qualname`` reference, and workers rebuild engines
    from ``parameters`` on their side.  ``ordinal`` is the task's position in
    the plan (the merge order); ``replicate_offset`` is the index of
    ``seeds[0]`` within the point's full seed list.
    """

    ordinal: int
    point_index: int
    name: str
    function_ref: str
    mode: str
    parameters: Dict[str, Any]
    seeds: Tuple[int, ...]
    replicate_offset: int

    @property
    def num_replicates(self) -> int:
        """Number of (point, seed) results this task produces."""
        return len(self.seeds)


@dataclass(frozen=True)
class ShardPlan:
    """An ordered, deterministic decomposition of a replicated workload.

    ``configs`` are the per-point experiment configs in sweep order;
    ``tasks`` cover every ``(point, seed)`` pair exactly once, ordered by
    ``(point_index, replicate_offset)``.
    """

    configs: Tuple[ExperimentConfig, ...]
    tasks: Tuple[Task, ...]

    @classmethod
    def from_configs(
        cls,
        configs: Sequence[ExperimentConfig],
        replication: Callable,
    ) -> "ShardPlan":
        """Decompose ``configs`` into tasks for ``replication``.

        Seed lists are derived per config exactly as
        :func:`~repro.experiments.runner.run_replications` derives them, so
        results are bit-identical to the serial paths seed by seed.
        """
        if not configs:
            raise ValueError("a shard plan needs at least one config")
        mode = replication_mode(replication)
        reference = function_reference(replication)
        tasks: List[Task] = []
        for point_index, config in enumerate(configs):
            seeds = seeds_for_replications(config.seed, config.replications)
            if mode == MODE_LOOP:
                blocks = [(offset, (seed,)) for offset, seed in enumerate(seeds)]
            else:
                blocks = [(0, tuple(seeds))]
            for offset, block in blocks:
                tasks.append(
                    Task(
                        ordinal=len(tasks),
                        point_index=point_index,
                        name=config.name,
                        function_ref=reference,
                        mode=mode,
                        parameters=dict(config.parameters),
                        seeds=block,
                        replicate_offset=offset,
                    )
                )
        return cls(configs=tuple(configs), tasks=tuple(tasks))

    @classmethod
    def from_config(
        cls, config: ExperimentConfig, replication: Callable
    ) -> "ShardPlan":
        """Plan for a single replicated experiment configuration."""
        return cls.from_configs([config], replication)

    @property
    def num_points(self) -> int:
        """Number of grid points (configs) in the plan."""
        return len(self.configs)

    def __len__(self) -> int:
        return len(self.tasks)

    def shards(self, num_shards: int) -> List[List[Task]]:
        """Split the plan's tasks into at most ``num_shards`` contiguous chunks."""
        return partition_tasks(list(self.tasks), num_shards)


def partition_tasks(tasks: Sequence[Task], num_shards: int) -> List[List[Task]]:
    """Contiguous, balanced partition of ``tasks`` into at most ``num_shards`` chunks.

    Deterministic: chunk boundaries depend only on ``(len(tasks),
    num_shards)``.  Empty input yields no shards; chunk sizes differ by at
    most one and preserve task order, so an ordered merge is a plain
    concatenation.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    total = len(tasks)
    if total == 0:
        return []
    count = min(num_shards, total)
    base, extra = divmod(total, count)
    shards: List[List[Task]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        shards.append(list(tasks[start : start + size]))
        start += size
    return shards


def execute_task(task: Task, function: Callable) -> List[Dict[str, float]]:
    """Run one task, returning one validated metrics dict per seed.

    This is the single compute path shared by every executor (the serial
    executor calls it in-process; process-pool workers call it after
    resolving ``task.function_ref``), which is what makes results
    executor-invariant.
    """
    parameters = dict(task.parameters)
    if task.mode == MODE_LOOP:
        rows = [function(seed, dict(parameters)) for seed in task.seeds]
        return [_validated_metrics(row) for row in rows]
    if task.mode == MODE_BATCHED:
        rows = list(function(list(task.seeds), parameters))
    elif task.mode == MODE_GRID:
        blocks = list(function([list(task.seeds)], [parameters]))
        if len(blocks) != 1:
            raise ValueError(
                f"grid replication returned {len(blocks)} metric blocks for "
                f"the single point of task {task.name}"
            )
        rows = list(blocks[0])
    else:
        raise ValueError(f"unknown task mode {task.mode!r}")
    if len(rows) != len(task.seeds):
        raise ValueError(
            f"replication returned {len(rows)} metric rows for "
            f"{len(task.seeds)} seeds of {task.name}"
        )
    return [_validated_metrics(row) for row in rows]
