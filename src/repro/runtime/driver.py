"""The runtime driver: cache lookup, shard dispatch, flush and ordered merge.

:func:`run_plan` is the one entry point the experiment harness calls.  For a
:class:`~repro.runtime.shard.ShardPlan` it

1. looks every task up in the :class:`~repro.runtime.store.ResultStore`
   (when one is attached) and keeps the cache hits,
2. partitions only the *misses* into shards and hands them to the executor,
3. flushes each completed shard back to the store the moment it arrives —
   so a killed run resumes shard-by-shard — and
4. merges everything back into per-point metric lists in replicate order.

Because tasks are execution-invariant (see :mod:`repro.runtime.shard`), the
merged output is bit-identical whichever executor ran the misses and however
many of the tasks came from the cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.runtime.executors import SerialExecutor
from repro.runtime.shard import ShardPlan, partition_tasks
from repro.runtime.store import ResultStore

PointMetrics = List[List[Dict[str, float]]]
"""Per grid point, one metrics dict per seed (in seed order)."""


def run_plan(
    plan: ShardPlan,
    replication,
    *,
    executor=None,
    store: Optional[ResultStore] = None,
) -> PointMetrics:
    """Execute ``plan`` and return per-point metric rows in replicate order.

    ``executor`` defaults to a fresh :class:`SerialExecutor`; ``store`` is
    optional.  If the executor raises (worker crash, ``KeyboardInterrupt``),
    every shard that completed before the failure has already been flushed
    to the store, so re-running the same plan against the same store picks
    up where the run died.
    """
    executor = executor if executor is not None else SerialExecutor()
    completed: Dict[int, List[Dict[str, float]]] = {}

    pending = list(plan.tasks)
    if store is not None:
        # One bulk index lookup instead of a query per task: at 10^5 cached
        # points the per-call overhead dominates a warm replay otherwise.
        keys = [store.key_for(task) for task in plan.tasks]
        cached = store.get_many(keys)
        pending = []
        for task, key in zip(plan.tasks, keys):
            metrics = cached.get(key)
            if metrics is None:
                pending.append(task)
            else:
                completed[task.ordinal] = metrics

    shards = partition_tasks(pending, executor.num_shards)
    for shard_results in executor.run_shards(shards, replication):
        if store is not None:
            store.put_many(shard_results)
        for task, metrics in shard_results:
            completed[task.ordinal] = metrics

    merged: PointMetrics = [[] for _ in range(plan.num_points)]
    for task in plan.tasks:
        merged[task.point_index].extend(completed[task.ordinal])
    return merged
