"""The runtime driver: cache lookup, shard dispatch, flush and ordered merge.

:func:`run_plan` is the one entry point the experiment harness calls.  For a
:class:`~repro.runtime.shard.ShardPlan` it

1. looks every task up in the :class:`~repro.runtime.store.ResultStore`
   (when one is attached) and keeps the cache hits,
2. partitions only the *misses* into shards and hands them to the executor,
3. flushes each completed shard back to the store the moment it arrives —
   so a killed run resumes shard-by-shard — and
4. merges everything back into per-point metric lists in replicate order.

Because tasks are execution-invariant (see :mod:`repro.runtime.shard`), the
merged output is bit-identical whichever executor ran the misses and however
many of the tasks came from the cache.

With a :class:`~repro.obs.trace.Tracer` attached (explicitly or via
:func:`~repro.obs.trace.set_tracer`), the driver opens one ``run_plan`` span
keyed by the plan's content (the hash of its task keys) and records one
``shard`` span per completed shard — worker-measured wall/CPU time, row
count and rows/s — plus a ``cache_lookup`` event attributing hits vs
misses.  All span ids derive from task content addresses, so the same plan
traces identically on every backend; with the default null tracer the
traced path is never entered at all.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import get_registry
from repro.obs.trace import resolve_tracer
from repro.runtime.executors import SerialExecutor
from repro.runtime.shard import ShardPlan, Task, partition_tasks
from repro.runtime.store import ResultStore, task_key

PointMetrics = List[List[Dict[str, float]]]
"""Per grid point, one metrics dict per seed (in seed order)."""


def run_plan(
    plan: ShardPlan,
    replication,
    *,
    executor=None,
    store: Optional[ResultStore] = None,
    tracer=None,
) -> PointMetrics:
    """Execute ``plan`` and return per-point metric rows in replicate order.

    ``executor`` defaults to a fresh :class:`SerialExecutor`; ``store`` is
    optional.  If the executor raises (worker crash, ``KeyboardInterrupt``),
    every shard that completed before the failure has already been flushed
    to the store, so re-running the same plan against the same store picks
    up where the run died.  ``tracer`` defaults to the process tracer
    (:func:`~repro.obs.trace.get_tracer`), a no-op unless one was installed.
    """
    executor = executor if executor is not None else SerialExecutor()
    tracer = resolve_tracer(tracer)
    if getattr(tracer, "enabled", False):
        return _run_plan_traced(plan, replication, executor, store, tracer)

    completed: Dict[int, List[Dict[str, float]]] = {}
    pending = list(plan.tasks)
    if store is not None:
        # One bulk index lookup instead of a query per task: at 10^5 cached
        # points the per-call overhead dominates a warm replay otherwise.
        keys = [store.key_for(task) for task in plan.tasks]
        cached = store.get_many(keys)
        pending = []
        for task, key in zip(plan.tasks, keys):
            metrics = cached.get(key)
            if metrics is None:
                pending.append(task)
            else:
                completed[task.ordinal] = metrics

    shards = partition_tasks(pending, executor.num_shards)
    for shard_results in executor.run_shards(shards, replication):
        if store is not None:
            store.put_many(shard_results)
        for task, metrics in shard_results:
            completed[task.ordinal] = metrics

    return _merge(plan, completed)


def _merge(plan: ShardPlan, completed: Dict[int, List[Dict[str, float]]]):
    merged: PointMetrics = [[] for _ in range(plan.num_points)]
    for task in plan.tasks:
        merged[task.point_index].extend(completed[task.ordinal])
    return merged


def _content_key(task_keys: Sequence[str]) -> str:
    """Content address of a group of tasks: the hash of their keys, in order."""
    return hashlib.sha256("\n".join(task_keys).encode("utf-8")).hexdigest()


def _run_plan_traced(
    plan: ShardPlan, replication, executor, store, tracer
) -> PointMetrics:
    """The traced twin of :func:`run_plan` — same work, spans recorded.

    Kept separate so the untraced hot path pays nothing: no key hashing, no
    attribute dicts, no getattr per shard.
    """
    registry = get_registry()
    cache_hits = registry.counter(
        "repro_plan_cache_hits_total", "Plan tasks served from the result store."
    )
    cache_misses = registry.counter(
        "repro_plan_cache_misses_total", "Plan tasks that had to execute."
    )
    completed: Dict[int, List[Dict[str, float]]] = {}
    keys = [
        store.key_for(task) if store is not None else task_key(task)
        for task in plan.tasks
    ]
    key_by_ordinal = {
        task.ordinal: key for task, key in zip(plan.tasks, keys)
    }
    with tracer.span(
        "run_plan",
        _content_key(keys),
        attributes={"tasks": len(plan.tasks), "points": plan.num_points},
    ) as span:
        pending: List[Task] = list(plan.tasks)
        if store is not None:
            cached = store.get_many(keys)
            pending = []
            for task, key in zip(plan.tasks, keys):
                metrics = cached.get(key)
                if metrics is None:
                    pending.append(task)
                else:
                    completed[task.ordinal] = metrics
            hits = len(plan.tasks) - len(pending)
            cache_hits.inc(hits)
            cache_misses.inc(len(pending))
            span.set_attribute("cache_hits", hits)
            span.set_attribute("cache_misses", len(pending))
            tracer.event(
                "cache_lookup",
                {"hits": hits, "misses": len(pending), "tasks": len(plan.tasks)},
            )

        shards = partition_tasks(pending, executor.num_shards)
        for shard_results in executor.run_shards(shards, replication):
            if store is not None:
                store.put_many(shard_results)
            rows = 0
            for task, metrics in shard_results:
                completed[task.ordinal] = metrics
                rows += len(metrics)
            timing = getattr(executor, "last_shard_timing", None) or {}
            wall = float(timing.get("wall_s", 0.0))
            attributes = {"tasks": len(shard_results), "rows": rows}
            if wall > 0.0:
                attributes["rows_per_s"] = rows / wall
            # Shard spans are recorded retroactively — executors yield
            # completed shards in arbitrary order — under a key derived
            # from the shard's task keys, so ids are completion-order- and
            # backend-independent.
            tracer.record_span(
                "shard",
                _content_key(
                    [key_by_ordinal[task.ordinal] for task, _ in shard_results]
                ),
                wall_s=wall,
                cpu_s=float(timing.get("cpu_s", 0.0)),
                attributes=attributes,
            )
    return _merge(plan, completed)
