"""Parallel execution runtime: sharded sweeps, content-addressed caching, resume.

This package turns the experiment harness's sweep/replication workloads into
shardable, cacheable, resumable jobs:

* :mod:`repro.runtime.shard` — :class:`ShardPlan`/:class:`Task`: the
  deterministic, execution-invariant decomposition of a
  ``ParameterGrid x replications`` workload;
* :mod:`repro.runtime.executors` — :class:`SerialExecutor` (default,
  in-process) and :class:`ParallelExecutor` (``ProcessPoolExecutor``-backed,
  chunked dispatch, worker-side engine construction) behind one interface;
* :mod:`repro.runtime.store` — :class:`ResultStore`: a tiered
  content-addressed cache keyed on ``(function, parameters, seeds, code
  version)`` — an in-memory LRU hot tier over columnar ``.npz`` cold
  segments, with sqlite as the key → location index and a background
  compaction thread merging spill segments;
* :mod:`repro.runtime.driver` — :func:`run_plan`: cache lookup, shard
  dispatch, per-shard flush and ordered merge.

Entry points: ``run_replications(..., executor=, store=)``,
``run_sweep(..., executor=, store=)`` and the ``repro sweep/network/protocol
--workers K --store PATH`` CLI flags.  See the README's "Scaling out"
section for the executor/caching/resume guide.
"""

from repro.runtime.backend import Backend, check_resolvable
from repro.runtime.driver import run_plan
from repro.runtime.executors import (
    ParallelExecutor,
    SerialExecutor,
    resolve_replication,
)
from repro.runtime.options import ExecutionOptions, resolve_options
from repro.runtime.shard import (
    ShardPlan,
    Task,
    execute_task,
    function_reference,
    partition_tasks,
    replication_mode,
)
from repro.runtime.store import (
    ResultStore,
    StoreCounters,
    canonical_json,
    canonical_value,
    task_key,
)

__all__ = [
    "Backend",
    "ExecutionOptions",
    "ParallelExecutor",
    "ResultStore",
    "SerialExecutor",
    "StoreCounters",
    "ShardPlan",
    "Task",
    "canonical_json",
    "canonical_value",
    "check_resolvable",
    "execute_task",
    "function_reference",
    "partition_tasks",
    "replication_mode",
    "resolve_options",
    "resolve_replication",
    "run_plan",
    "task_key",
]
