"""Random-number-generator plumbing.

All stochastic components in the library accept a ``rng`` argument that can be

* ``None`` — a fresh, OS-entropy-seeded generator is created,
* an ``int`` — used as a seed for a new :class:`numpy.random.Generator`,
* an existing :class:`numpy.random.Generator` — used as-is, or
* a :class:`numpy.random.SeedSequence` — used to construct a generator.

Keeping this conversion in one place makes experiments reproducible from a
single integer while still letting callers share one generator across
components when they want correlated streams (e.g. the coupling of
Lemma 4.5, which requires the finite and infinite dynamics to observe the very
same reward realisations).

Sharding contract: :func:`seeds_for_replications` materialises the exact
integer seeds behind :func:`spawn_rngs`'s independent child streams, and a
child generator depends only on its own seed.  Any partition of the seed
list therefore reproduces the unsharded streams — reconstructing generators
chunk by chunk, in any grouping, yields bit-identical draws to building them
all at once.  The parallel runtime (:mod:`repro.runtime`) leans on this to
guarantee that sharded, multi-process sweeps match serial ones seed for
seed; the contract is pinned by a property test in
``tests/property/test_seed_sharding.py``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]
"""Anything :func:`ensure_rng` can turn into a :class:`numpy.random.Generator`."""


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted ``rng`` value.

    Parameters
    ----------
    rng:
        ``None``, an integer seed, a ``SeedSequence`` or an existing generator.

    Returns
    -------
    numpy.random.Generator
        A generator; the same object if one was passed in.

    Raises
    ------
    TypeError
        If ``rng`` is not one of the accepted types.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        if rng < 0:
            raise ValueError(f"seed must be non-negative, got {rng}")
        return np.random.default_rng(int(rng))
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    raise TypeError(
        "rng must be None, an int seed, a numpy Generator or a SeedSequence; "
        f"got {type(rng).__name__}"
    )


def spawn_rngs(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Uses :meth:`numpy.random.SeedSequence.spawn` semantics via the parent
    generator's bit generator so that replications of an experiment get
    independent, reproducible streams.

    Parameters
    ----------
    rng:
        Parent generator or seed.
    count:
        Number of child generators to create (must be positive).
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def seeds_for_replications(rng: RngLike, replications: int) -> List[int]:
    """Draw ``replications`` integer seeds from ``rng`` for later reuse.

    Storing the integer seeds (rather than generator objects) in experiment
    results makes every replication individually re-runnable.
    """
    if replications <= 0:
        raise ValueError(f"replications must be positive, got {replications}")
    parent = ensure_rng(rng)
    return [int(seed) for seed in parent.integers(0, 2**63 - 1, size=replications)]


def interleave_choice(
    rng: RngLike, options: Iterable[int], size: Optional[int] = None
) -> np.ndarray:
    """Uniformly choose from ``options`` — tiny convenience wrapper used in tests."""
    generator = ensure_rng(rng)
    options = np.asarray(list(options))
    if options.size == 0:
        raise ValueError("options must be non-empty")
    return generator.choice(options, size=size)
