"""Shared utilities: RNG management, validation, logging and ASCII plotting.

These helpers are deliberately dependency-light.  Everything in :mod:`repro`
that needs randomness accepts either a :class:`numpy.random.Generator`, an
integer seed or ``None`` and funnels it through :func:`ensure_rng`, so a whole
experiment can be made reproducible from a single seed.
"""

from repro.utils.rng import RngLike, ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_in_range,
    check_positive_int,
    check_probability,
    check_probability_vector,
)
from repro.utils.logging import get_logger
from repro.utils.ascii_plot import ascii_histogram, ascii_line_plot, format_table

__all__ = [
    "RngLike",
    "ensure_rng",
    "spawn_rngs",
    "check_in_range",
    "check_positive_int",
    "check_probability",
    "check_probability_vector",
    "get_logger",
    "ascii_histogram",
    "ascii_line_plot",
    "format_table",
]
