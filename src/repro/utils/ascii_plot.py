"""Plain-text plotting and table formatting.

The execution environment for this reproduction has no plotting stack
(matplotlib is not installable offline), so experiment results are rendered as
aligned text tables and simple ASCII charts.  The CSV writers in
:mod:`repro.experiments.io` produce machine-readable output for external
plotting.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

import numpy as np


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    *,
    float_format: str = "{:.4f}",
) -> str:
    """Render a list of dict rows as an aligned, pipe-separated text table.

    Parameters
    ----------
    rows:
        Sequence of mappings; each mapping is one table row.
    columns:
        Column order.  Defaults to the keys of the first row.
    float_format:
        Format applied to float cells.
    """
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float) or isinstance(value, np.floating):
            return float_format.format(float(value))
        return str(value)

    rendered = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(cells[i]) for cells in rendered))
        for i, col in enumerate(columns)
    ]
    header = " | ".join(str(col).ljust(width) for col, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))
        for cells in rendered
    )
    return f"{header}\n{separator}\n{body}"


def ascii_line_plot(
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 70,
    height: int = 16,
    title: str = "",
) -> str:
    """Render one or more numeric series as a crude ASCII line chart.

    Each series is resampled to ``width`` columns; series are distinguished by
    the marker characters ``* + o x # @``.
    """
    if not series:
        return "(no series)"
    markers = "*+ox#@"
    arrays = {name: np.asarray(values, dtype=float) for name, values in series.items()}
    arrays = {name: arr for name, arr in arrays.items() if arr.size > 0}
    if not arrays:
        return "(no data)"
    global_min = min(float(np.nanmin(arr)) for arr in arrays.values())
    global_max = max(float(np.nanmax(arr)) for arr in arrays.values())
    if not np.isfinite(global_min) or not np.isfinite(global_max):
        return "(non-finite data)"
    if np.isclose(global_min, global_max):
        global_max = global_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, values) in enumerate(arrays.items()):
        marker = markers[index % len(markers)]
        legend.append(f"{marker} = {name}")
        positions = np.linspace(0, len(values) - 1, width)
        resampled = np.interp(positions, np.arange(len(values)), values)
        for col, value in enumerate(resampled):
            if not np.isfinite(value):
                continue
            fraction = (value - global_min) / (global_max - global_min)
            row = height - 1 - int(round(fraction * (height - 1)))
            row = min(max(row, 0), height - 1)
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"max = {global_max:.4g}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"min = {global_min:.4g}")
    lines.append("   ".join(legend))
    return "\n".join(lines)


def ascii_histogram(
    values: Iterable[float],
    *,
    bins: int = 10,
    width: int = 50,
    title: str = "",
) -> str:
    """Render a histogram of ``values`` as horizontal ASCII bars."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return "(no data)"
    counts, edges = np.histogram(array, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [title] if title else []
    for count, low, high in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"[{low:9.4f}, {high:9.4f}) {count:6d} {bar}")
    return "\n".join(lines)
