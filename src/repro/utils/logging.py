"""Lightweight structured logging for experiments.

The library does not configure the root logger; it only creates namespaced
loggers under ``repro.*`` so applications embedding the library keep control
of handlers and levels.  :func:`get_logger` adds a ``NullHandler`` the first
time a name is requested to avoid "no handler" warnings when used as a
library.
"""

from __future__ import annotations

import logging
from typing import Optional


def get_logger(name: str, *, level: Optional[int] = None) -> logging.Logger:
    """Return a namespaced logger under the ``repro`` hierarchy.

    Parameters
    ----------
    name:
        Dotted suffix, e.g. ``"core.dynamics"``; prefixed with ``repro.`` if
        not already.
    level:
        Optional explicit level to set on the logger (does not touch handlers).
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    logger = logging.getLogger(name)
    # Keyed off the logger's own handlers, not a module-global name set: the
    # logging manager owns logger lifetimes, so a side table desyncs the
    # moment the manager is reset (test harnesses do) and then either leaks
    # or double-adds handlers.
    if not any(isinstance(h, logging.NullHandler) for h in logger.handlers):
        logger.addHandler(logging.NullHandler())
    if level is not None:
        logger.setLevel(level)
    return logger


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a simple console handler to the ``repro`` logger (for scripts)."""
    root = logging.getLogger("repro")
    for handler in root.handlers:
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            root.setLevel(level)
            return
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
    )
    root.addHandler(handler)
    root.setLevel(level)
