"""Argument validation helpers shared across the library.

Every public constructor validates its parameters eagerly so that
mis-configured experiments fail at construction time with a clear message
rather than deep inside a simulation loop.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if value < 0.0 or value > 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    *,
    inclusive_low: bool = True,
    inclusive_high: bool = True,
) -> float:
    """Validate that ``value`` lies inside the interval defined by ``low``/``high``."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    low_ok = value >= low if inclusive_low else value > low
    high_ok = value <= high if inclusive_high else value < high
    if not (low_ok and high_ok):
        left = "[" if inclusive_low else "("
        right = "]" if inclusive_high else ")"
        raise ValueError(f"{name} must be in {left}{low}, {high}{right}, got {value}")
    return value


def check_probability_vector(values: Sequence[float], name: str) -> np.ndarray:
    """Validate that ``values`` is a non-empty vector of probabilities summing to 1."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D sequence")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must contain only finite values")
    if np.any(array < 0):
        raise ValueError(f"{name} must be non-negative")
    total = float(array.sum())
    if not np.isclose(total, 1.0, atol=1e-8):
        raise ValueError(f"{name} must sum to 1, got sum={total}")
    return array


def check_quality_vector(values: Sequence[float], name: str) -> np.ndarray:
    """Validate a vector of option qualities: each in [0, 1], non-empty."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D sequence")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must contain only finite values")
    if np.any(array < 0) or np.any(array > 1):
        raise ValueError(f"{name} entries must lie in [0, 1]")
    return array
