"""Recorded / replayable reward streams.

Two core pieces of the reproduction need several learners to see the *same*
realisation of the reward process:

* the coupling of Lemma 4.5, which runs the finite-population dynamics and the
  infinite-population stochastic MWU on identical ``R^t_j`` sequences, and
* the baseline comparisons (E7), which are only fair if every algorithm faces
  the same rewards.

:func:`record_rewards` samples a full ``(horizon, m)`` reward matrix from any
environment, and :class:`RecordedRewardSequence` replays such a matrix through
the standard :class:`~repro.environments.base.RewardEnvironment` interface.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.environments.base import RewardEnvironment
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive_int, check_quality_vector


def record_rewards(environment: RewardEnvironment, horizon: int) -> np.ndarray:
    """Sample ``horizon`` steps from ``environment`` and return the reward matrix.

    The environment's clock advances; callers who need the environment again
    from its initial state should construct a fresh one or call ``reset``.
    """
    horizon = check_positive_int(horizon, "horizon")
    return environment.sample_many(horizon)


class RecordedRewardSequence(RewardEnvironment):
    """Replay a fixed ``(horizon, m)`` binary reward matrix step by step.

    Parameters
    ----------
    rewards:
        Binary matrix of shape ``(horizon, m)``; row ``t`` is ``R^{t+1}``.
    qualities:
        Optional true quality vector used for regret accounting.  If omitted,
        the empirical column means of ``rewards`` are used — this makes regret
        computed against a replayed sequence an *in-sample* quantity, which is
        what the paper's regret definition (expectation over the same rewards
        the group saw) calls for.
    """

    def __init__(
        self,
        rewards: np.ndarray,
        qualities: Optional[Sequence[float]] = None,
        rng: RngLike = None,
    ) -> None:
        rewards = np.asarray(rewards)
        if rewards.ndim != 2 or rewards.shape[0] == 0 or rewards.shape[1] == 0:
            raise ValueError(
                f"rewards must be a non-empty 2-D matrix, got shape {rewards.shape}"
            )
        if np.any((rewards != 0) & (rewards != 1)):
            raise ValueError("rewards must be binary (0/1)")
        super().__init__(num_options=rewards.shape[1], rng=rng)
        self._rewards = rewards.astype(np.int8)
        if qualities is None:
            self._qualities = self._rewards.mean(axis=0)
        else:
            self._qualities = check_quality_vector(qualities, "qualities")
            if self._qualities.size != self._num_options:
                raise ValueError(
                    "qualities length must match the number of reward columns"
                )

    @classmethod
    def from_environment(
        cls, environment: RewardEnvironment, horizon: int
    ) -> "RecordedRewardSequence":
        """Record ``horizon`` steps of ``environment`` into a replayable sequence."""
        rewards = record_rewards(environment, horizon)
        return cls(rewards, qualities=environment.qualities)

    @property
    def horizon(self) -> int:
        """Number of recorded steps available for replay."""
        return int(self._rewards.shape[0])

    @property
    def rewards(self) -> np.ndarray:
        """The full recorded reward matrix (copy)."""
        return self._rewards.copy()

    @property
    def qualities(self) -> np.ndarray:
        return np.asarray(self._qualities, dtype=float).copy()

    def _draw(self) -> np.ndarray:
        if self._time >= self.horizon:
            raise RuntimeError(
                f"recorded sequence exhausted after {self.horizon} steps; "
                "record a longer horizon or reset the sequence"
            )
        return self._rewards[self._time]

    def _draw_batch(self, num_replicates: int) -> np.ndarray:
        # A recording holds exactly one realisation, so every replicate
        # observes the same recorded row — the coupling use-case.
        return np.broadcast_to(
            self._draw(), (num_replicates, self._num_options)
        ).copy()

    def remaining(self) -> int:
        """Number of steps left before the recording is exhausted."""
        return self.horizon - self._time
