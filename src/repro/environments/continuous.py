"""Continuous-reward environments and their reduction to the binary model.

Section 2.1's second worked example (after Ellison & Fudenberg, 1995) shows a
two-option learning model with continuous rewards ``r^t_j ~ F_j`` and
player-specific shocks ``eps^t_{ij} ~ G``.  The reduction to the paper's
binary framework is:

* ``R^t_1`` is the indicator that ``r^t_1 > r^t_2``, which happens with some
  probability ``p`` — so ``eta_1 = p`` and ``eta_2 = 1 - p``;
* the shock differences collapse to a zero-mean symmetric random variable
  ``xi``, and the adoption probabilities become
  ``beta = P[xi > r^t_2 - r^t_1 | r^t_1 > r^t_2]`` and
  ``alpha = P[xi > r^t_2 - r^t_1 | r^t_2 > r^t_1]`` with ``alpha < beta``.

:class:`ContinuousRewardEnvironment` is the general m-option continuous model
(binary signal = "reward above a threshold", the standard conversion the paper
cites for threshold-adoption models); :class:`EllisonFudenbergEnvironment` is
the faithful two-option comparison model, exposing the implied ``eta`` and
``(alpha, beta)`` so experiments can run the binary dynamics with exactly the
parameters the reduction prescribes.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy import stats

from repro.environments.base import RewardEnvironment
from repro.utils.rng import RngLike
from repro.utils.validation import check_positive_int


class ContinuousRewardEnvironment(RewardEnvironment):
    """Options with continuous reward distributions, binarised by a threshold.

    Each step draws ``r^t_j`` from the given per-option distribution; the
    binary quality signal is ``R^t_j = 1{r^t_j > threshold}``.  This is the
    "standard way" (Section 3) of converting threshold-adoption models with
    continuous rewards into the paper's binary reward structure.

    Parameters
    ----------
    reward_distributions:
        One frozen ``scipy.stats`` distribution (anything with an ``rvs`` and
        ``sf`` method) per option.
    threshold:
        The adoption threshold applied to raw rewards.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        reward_distributions: Sequence,
        threshold: float = 0.0,
        rng: RngLike = None,
    ) -> None:
        if len(reward_distributions) == 0:
            raise ValueError("reward_distributions must be non-empty")
        for index, dist in enumerate(reward_distributions):
            if not hasattr(dist, "rvs") or not hasattr(dist, "sf"):
                raise TypeError(
                    f"reward_distributions[{index}] must be a frozen scipy.stats "
                    "distribution (needs .rvs and .sf)"
                )
        super().__init__(num_options=len(reward_distributions), rng=rng)
        self._distributions = list(reward_distributions)
        self._threshold = float(threshold)
        self._last_raw_rewards: Optional[np.ndarray] = None

    @property
    def threshold(self) -> float:
        """Threshold above which a raw reward counts as a good signal."""
        return self._threshold

    @property
    def qualities(self) -> np.ndarray:
        """Implied Bernoulli qualities ``eta_j = P[r_j > threshold]``."""
        return np.array(
            [float(dist.sf(self._threshold)) for dist in self._distributions]
        )

    @property
    def last_raw_rewards(self) -> Optional[np.ndarray]:
        """Raw continuous rewards from the most recent sampling call.

        Shape ``(m,)`` after :meth:`sample`, ``(R, m)`` after
        :meth:`sample_batch` (one row of raw rewards per replicate).
        """
        if self._last_raw_rewards is None:
            return None
        return self._last_raw_rewards.copy()

    def _draw(self) -> np.ndarray:
        raw = np.array(
            [float(dist.rvs(random_state=self._rng)) for dist in self._distributions]
        )
        self._last_raw_rewards = raw
        return (raw > self._threshold).astype(np.int8)

    def _draw_batch(self, num_replicates: int) -> np.ndarray:
        raw = np.column_stack(
            [
                np.asarray(
                    dist.rvs(size=num_replicates, random_state=self._rng), dtype=float
                )
                for dist in self._distributions
            ]
        )
        self._last_raw_rewards = raw
        return (raw > self._threshold).astype(np.int8)

    @classmethod
    def gaussian(
        cls,
        means: Sequence[float],
        scale: float = 1.0,
        threshold: float = 0.0,
        rng: RngLike = None,
    ) -> "ContinuousRewardEnvironment":
        """Convenience constructor with Normal(mean_j, scale) rewards per option."""
        means = np.asarray(means, dtype=float)
        if means.ndim != 1 or means.size == 0:
            raise ValueError("means must be a non-empty 1-D sequence")
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        distributions = [stats.norm(loc=mean, scale=scale) for mean in means]
        return cls(distributions, threshold=threshold, rng=rng)


class EllisonFudenbergEnvironment(RewardEnvironment):
    """The two-option word-of-mouth model of Ellison & Fudenberg (1995).

    Raw rewards ``r^t_1 ~ F_1`` and ``r^t_2 ~ F_2`` are drawn each step; the
    binary signals are the (perfectly anti-correlated) indicators
    ``R^t_1 = 1{r^t_1 > r^t_2}`` and ``R^t_2 = 1 - R^t_1``.  Player shocks are
    i.i.d. draws from ``shock_distribution``; the paper's reduction collapses
    the four shocks into ``xi = eps_{i1} + eps_{i'1} - eps_{i2} - eps_{i'2}``.

    The class exposes the reduction targets:

    * :attr:`qualities` — ``(p, 1 - p)`` with ``p = P[r_1 > r_2]``;
    * :meth:`implied_adoption_parameters` — Monte-Carlo estimates of
      ``beta = P[xi > r_2 - r_1 | r_1 > r_2]`` and
      ``alpha = P[xi > r_2 - r_1 | r_2 > r_1]``.

    Parameters
    ----------
    reward_distribution_1, reward_distribution_2:
        Frozen scipy distributions ``F_1`` and ``F_2``.
    shock_distribution:
        Frozen scipy distribution ``G`` for individual shocks (zero mean is
        not required here; the reduction's symmetric ``xi`` arises from the
        difference of i.i.d. shocks).
    comparison_samples:
        Monte-Carlo sample count used to estimate ``p``, ``alpha`` and ``beta``.
    """

    def __init__(
        self,
        reward_distribution_1,
        reward_distribution_2,
        shock_distribution,
        *,
        comparison_samples: int = 200_000,
        rng: RngLike = None,
    ) -> None:
        for name, dist in (
            ("reward_distribution_1", reward_distribution_1),
            ("reward_distribution_2", reward_distribution_2),
            ("shock_distribution", shock_distribution),
        ):
            if not hasattr(dist, "rvs"):
                raise TypeError(f"{name} must be a frozen scipy.stats distribution")
        super().__init__(num_options=2, rng=rng)
        self._f1 = reward_distribution_1
        self._f2 = reward_distribution_2
        self._shock = shock_distribution
        self._comparison_samples = check_positive_int(
            comparison_samples, "comparison_samples"
        )
        self._estimation_cache: Optional[dict] = None

    def _estimate(self) -> dict:
        """Monte-Carlo estimate of ``p``, ``alpha`` and ``beta`` (cached)."""
        if self._estimation_cache is not None:
            return self._estimation_cache
        estimator_rng = np.random.default_rng(0xE11150)
        n = self._comparison_samples
        r1 = np.asarray(self._f1.rvs(size=n, random_state=estimator_rng), dtype=float)
        r2 = np.asarray(self._f2.rvs(size=n, random_state=estimator_rng), dtype=float)
        shocks = np.asarray(
            self._shock.rvs(size=(n, 4), random_state=estimator_rng), dtype=float
        )
        xi = shocks[:, 0] + shocks[:, 1] - shocks[:, 2] - shocks[:, 3]
        option1_better = r1 > r2
        adopt1 = xi > (r2 - r1)
        p = float(option1_better.mean())
        if 0 < option1_better.sum() < n:
            beta = float(adopt1[option1_better].mean())
            alpha = float(adopt1[~option1_better].mean())
        else:  # degenerate comparison (one option always wins)
            beta = float(adopt1.mean())
            alpha = 1.0 - beta
        self._estimation_cache = {"p": p, "alpha": alpha, "beta": beta}
        return self._estimation_cache

    @property
    def qualities(self) -> np.ndarray:
        p = self._estimate()["p"]
        return np.array([p, 1.0 - p])

    def implied_adoption_parameters(self) -> tuple[float, float]:
        """Return ``(alpha, beta)`` implied by the shock reduction."""
        estimate = self._estimate()
        return estimate["alpha"], estimate["beta"]

    def _draw(self) -> np.ndarray:
        r1 = float(self._f1.rvs(random_state=self._rng))
        r2 = float(self._f2.rvs(random_state=self._rng))
        first_wins = int(r1 > r2)
        return np.array([first_wins, 1 - first_wins], dtype=np.int8)

    @classmethod
    def gaussian(
        cls,
        mean_gap: float = 0.5,
        reward_scale: float = 1.0,
        shock_scale: float = 1.0,
        rng: RngLike = None,
    ) -> "EllisonFudenbergEnvironment":
        """Gaussian instance: ``F_1 = N(mean_gap, s)``, ``F_2 = N(0, s)``, shocks ``N(0, shock_scale)``."""
        if reward_scale <= 0 or shock_scale <= 0:
            raise ValueError("reward_scale and shock_scale must be positive")
        return cls(
            stats.norm(loc=mean_gap, scale=reward_scale),
            stats.norm(loc=0.0, scale=reward_scale),
            stats.norm(loc=0.0, scale=shock_scale),
            rng=rng,
        )
