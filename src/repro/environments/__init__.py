"""Reward environments: the stochastic option-quality processes of the paper.

The paper's model (Section 2.1) assumes each option ``j`` has an unknown
quality ``eta_j`` and emits a fresh Bernoulli signal ``R^t_j ~ Bern(eta_j)``
each step.  :class:`BernoulliEnvironment` implements exactly that model;
:class:`RowwiseBernoulliEnvironment` generalises it with one quality vector
per batch row, which the sweep-axis batched engine uses to advance a whole
parameter grid in one pass.

The paper also shows (second worked example in Section 2.1, after Ellison &
Fudenberg 1995) how richer reward models — continuous-valued rewards with
player-specific shocks — reduce to the binary model.  Those richer models are
implemented here as well (:class:`ContinuousRewardEnvironment`,
:class:`EllisonFudenbergEnvironment`), together with the future-work
extensions named in Section 6: drifting qualities
(:class:`PiecewiseConstantDriftEnvironment`, :class:`RandomWalkDriftEnvironment`)
and correlated options (:class:`CorrelatedOptionsEnvironment`,
:class:`ExactlyOneGoodEnvironment`).

All environments share the :class:`RewardEnvironment` interface: call
:meth:`~RewardEnvironment.sample` once per time step to obtain the vector
``(R^t_1, ..., R^t_m)``.  :class:`RecordedRewardSequence` replays a fixed
reward stream, which is how the coupling of Lemma 4.5 and the like-for-like
baseline comparisons are implemented.
"""

from repro.environments.base import RewardEnvironment
from repro.environments.bernoulli import BernoulliEnvironment, RowwiseBernoulliEnvironment
from repro.environments.continuous import (
    ContinuousRewardEnvironment,
    EllisonFudenbergEnvironment,
)
from repro.environments.drift import (
    PiecewiseConstantDriftEnvironment,
    RandomWalkDriftEnvironment,
)
from repro.environments.correlated import (
    CorrelatedOptionsEnvironment,
    ExactlyOneGoodEnvironment,
)
from repro.environments.replay import RecordedRewardSequence, record_rewards

__all__ = [
    "RewardEnvironment",
    "BernoulliEnvironment",
    "RowwiseBernoulliEnvironment",
    "ContinuousRewardEnvironment",
    "EllisonFudenbergEnvironment",
    "PiecewiseConstantDriftEnvironment",
    "RandomWalkDriftEnvironment",
    "CorrelatedOptionsEnvironment",
    "ExactlyOneGoodEnvironment",
    "RecordedRewardSequence",
    "record_rewards",
]
