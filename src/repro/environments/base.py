"""Abstract interface shared by all reward environments."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


class RewardEnvironment(abc.ABC):
    """A stochastic process emitting one binary quality signal per option per step.

    Subclasses implement :meth:`_draw` which returns the vector
    ``(R^t_1, ..., R^t_m)`` of indicator signals for the current time step.
    The public :meth:`sample` method advances the internal clock, so a single
    environment instance produces one well-defined reward stream — share the
    instance (or a :class:`~repro.environments.replay.RecordedRewardSequence`)
    across learners to compare them on identical reward realisations.

    Parameters
    ----------
    num_options:
        Number of options ``m`` (positive).
    rng:
        Seed or generator driving the reward process.
    """

    def __init__(self, num_options: int, rng: RngLike = None) -> None:
        self._num_options = check_positive_int(num_options, "num_options")
        self._rng = ensure_rng(rng)
        self._time = 0

    @property
    def num_options(self) -> int:
        """Number of options ``m``."""
        return self._num_options

    @property
    def time(self) -> int:
        """Number of reward vectors sampled so far."""
        return self._time

    @property
    @abc.abstractmethod
    def qualities(self) -> np.ndarray:
        """Current vector of success probabilities ``(eta_1, ..., eta_m)``.

        For stationary environments this is constant; drifting environments
        return the value that applies to the *next* sampled step.
        """

    @property
    def best_option(self) -> int:
        """Index of the currently-best option (ties broken toward lower index)."""
        return int(np.argmax(self.qualities))

    @property
    def best_quality(self) -> float:
        """Quality ``eta_1`` of the currently-best option."""
        return float(np.max(self.qualities))

    def quality_gap(self) -> float:
        """Gap ``eta_(1) - eta_(2)`` between the two best options (0 if ``m == 1``)."""
        qualities = np.sort(self.qualities)[::-1]
        if qualities.size < 2:
            return 0.0
        return float(qualities[0] - qualities[1])

    @abc.abstractmethod
    def _draw(self) -> np.ndarray:
        """Draw the reward vector for the current time step (shape ``(m,)``)."""

    def sample(self) -> np.ndarray:
        """Sample and return the next reward vector ``R^{t+1}`` as a 0/1 int array."""
        rewards = np.asarray(self._draw())
        if rewards.shape != (self._num_options,):
            raise RuntimeError(
                f"environment produced rewards of shape {rewards.shape}, "
                f"expected ({self._num_options},)"
            )
        # Validate before the int8 cast so non-binary values (0.7, 256, ...)
        # raise instead of being silently truncated to something that passes.
        if np.any((rewards != 0) & (rewards != 1)):
            raise RuntimeError("environment produced non-binary rewards")
        self._time += 1
        return rewards.astype(np.int8)

    def sample_many(self, horizon: int) -> np.ndarray:
        """Sample ``horizon`` consecutive reward vectors; shape ``(horizon, m)``."""
        horizon = check_positive_int(horizon, "horizon")
        return np.stack([self.sample() for _ in range(horizon)])

    def _draw_batch(self, num_replicates: int) -> np.ndarray:
        """Draw ``num_replicates`` independent reward vectors for the current step.

        The default stacks repeated :meth:`_draw` calls, which is correct for
        environments whose ``_draw`` does not mutate internal state (the signal
        at a fixed time step is then i.i.d. across replicates).  Environments
        with per-step state evolution (e.g. random-walk drift) or vectorisable
        draws override this.
        """
        return np.stack([self._draw() for _ in range(num_replicates)])

    def sample_batch(self, num_replicates: int) -> np.ndarray:
        """Sample the next step's rewards for ``num_replicates`` independent replicates.

        Returns an ``(R, m)`` 0/1 matrix: row ``r`` is the reward realisation
        replicate ``r`` observes at time ``t+1``.  Replicate draws are
        conditionally independent given the environment's current quality
        state; for drifting environments the quality *path* is shared across
        replicates (each replicate sees its own rewards along one common
        quality trajectory).  The internal clock advances by one step, exactly
        as a single :meth:`sample` call would.

        With ``num_replicates == 1`` this consumes the generator identically
        to :meth:`sample`, which the exact-seed equivalence tests between the
        batched and sequential engines rely on.
        """
        num_replicates = check_positive_int(num_replicates, "num_replicates")
        rewards = np.asarray(self._draw_batch(num_replicates))
        if rewards.shape != (num_replicates, self._num_options):
            raise RuntimeError(
                f"environment produced batch rewards of shape {rewards.shape}, "
                f"expected ({num_replicates}, {self._num_options})"
            )
        if np.any((rewards != 0) & (rewards != 1)):
            raise RuntimeError("environment produced non-binary rewards")
        self._time += 1
        return rewards.astype(np.int8)

    def reset(self, rng: Optional[RngLike] = None) -> None:
        """Reset the time counter (and optionally reseed the generator)."""
        self._time = 0
        if rng is not None:
            self._rng = ensure_rng(rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        qualities = np.array2string(np.asarray(self.qualities), precision=3)
        return f"{type(self).__name__}(m={self._num_options}, qualities={qualities})"
