"""Non-stationary quality environments (Section 6 future work).

The paper's conclusion asks what happens "when the parameters controlling the
quality of the options are allowed to change".  Two standard non-stationary
models are provided:

* :class:`PiecewiseConstantDriftEnvironment` — qualities are constant within
  phases and switch (e.g. the best option changes identity) at given change
  points;
* :class:`RandomWalkDriftEnvironment` — each quality performs an independent
  reflected Gaussian random walk inside ``[low, high]``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.environments.base import RewardEnvironment
from repro.utils.rng import RngLike
from repro.utils.validation import (
    check_in_range,
    check_positive_int,
    check_quality_vector,
)


class PiecewiseConstantDriftEnvironment(RewardEnvironment):
    """Qualities that switch between fixed vectors at specified change points.

    Parameters
    ----------
    phases:
        Sequence of quality vectors, one per phase; all must have the same
        length ``m``.
    phase_length:
        Number of steps each phase lasts.  After the final phase the last
        quality vector persists forever.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        phases: Sequence[Sequence[float]],
        phase_length: int,
        rng: RngLike = None,
    ) -> None:
        if len(phases) == 0:
            raise ValueError("phases must be non-empty")
        parsed = [check_quality_vector(phase, f"phases[{i}]") for i, phase in enumerate(phases)]
        sizes = {vec.size for vec in parsed}
        if len(sizes) != 1:
            raise ValueError("all phases must have the same number of options")
        super().__init__(num_options=parsed[0].size, rng=rng)
        self._phases = np.stack(parsed)
        self._phase_length = check_positive_int(phase_length, "phase_length")

    @property
    def phase_length(self) -> int:
        """Number of steps per phase."""
        return self._phase_length

    @property
    def num_phases(self) -> int:
        """Number of distinct phases."""
        return int(self._phases.shape[0])

    def _phase_index(self, time: int) -> int:
        return min(time // self._phase_length, self.num_phases - 1)

    @property
    def qualities(self) -> np.ndarray:
        return self._phases[self._phase_index(self._time)].copy()

    def _draw(self) -> np.ndarray:
        qualities = self._phases[self._phase_index(self._time)]
        return (self._rng.random(self._num_options) < qualities).astype(np.int8)

    def _draw_batch(self, num_replicates: int) -> np.ndarray:
        qualities = self._phases[self._phase_index(self._time)]
        uniforms = self._rng.random((num_replicates, self._num_options))
        return (uniforms < qualities).astype(np.int8)


class RandomWalkDriftEnvironment(RewardEnvironment):
    """Qualities performing independent reflected Gaussian random walks.

    Each step, every quality moves by ``N(0, step_scale^2)`` and is reflected
    back into ``[low, high]``.

    Parameters
    ----------
    initial_qualities:
        Starting quality vector.
    step_scale:
        Standard deviation of the per-step increment.
    low, high:
        Reflection bounds (``0 <= low < high <= 1``).
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        initial_qualities: Sequence[float],
        step_scale: float = 0.01,
        low: float = 0.05,
        high: float = 0.95,
        rng: RngLike = None,
    ) -> None:
        initial = check_quality_vector(initial_qualities, "initial_qualities")
        super().__init__(num_options=initial.size, rng=rng)
        if step_scale <= 0:
            raise ValueError(f"step_scale must be positive, got {step_scale}")
        low = check_in_range(low, "low", 0.0, 1.0)
        high = check_in_range(high, "high", 0.0, 1.0)
        if low >= high:
            raise ValueError(f"low ({low}) must be less than high ({high})")
        if np.any(initial < low) or np.any(initial > high):
            raise ValueError("initial_qualities must lie within [low, high]")
        self._initial = initial.copy()
        self._current = initial.copy()
        self._step_scale = float(step_scale)
        self._low = low
        self._high = high

    @property
    def qualities(self) -> np.ndarray:
        return self._current.copy()

    @staticmethod
    def _reflect(values: np.ndarray, low: float, high: float) -> np.ndarray:
        """Reflect values back into ``[low, high]`` (handles single overshoot)."""
        span = high - low
        # map into [0, 2*span) then fold
        folded = np.mod(values - low, 2 * span)
        folded = np.where(folded > span, 2 * span - folded, folded)
        return folded + low

    def _draw(self) -> np.ndarray:
        rewards = (self._rng.random(self._num_options) < self._current).astype(np.int8)
        step = self._rng.normal(0.0, self._step_scale, size=self._num_options)
        self._current = self._reflect(self._current + step, self._low, self._high)
        return rewards

    def _draw_batch(self, num_replicates: int) -> np.ndarray:
        # All replicates observe rewards from the same point of one shared
        # quality walk; the walk advances once per batched step (not once per
        # replicate, which the stacking default would do).
        uniforms = self._rng.random((num_replicates, self._num_options))
        rewards = (uniforms < self._current).astype(np.int8)
        step = self._rng.normal(0.0, self._step_scale, size=self._num_options)
        self._current = self._reflect(self._current + step, self._low, self._high)
        return rewards

    def reset(self, rng: RngLike = None) -> None:
        super().reset(rng)
        self._current = self._initial.copy()
