"""The paper's canonical environment: independent Bernoulli option qualities."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backends import PrecisionLike, resolve_precision
from repro.environments.base import RewardEnvironment
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_in_range, check_positive_int, check_quality_vector


class BernoulliEnvironment(RewardEnvironment):
    """Options with fixed qualities ``eta_j``; ``R^t_j ~ Bernoulli(eta_j)`` i.i.d. over ``t``.

    This is exactly the learning environment of Section 2.1: the quality of
    each option is an independent random variable whose parameter is unknown
    to the individuals and fixed over time.

    Parameters
    ----------
    qualities:
        The vector ``(eta_1, ..., eta_m)``; each entry in ``[0, 1]``.  The
        paper's convention ``eta_1 >= eta_2 >= ... >= eta_m`` is *not*
        required — the environment works with any ordering and reports
        :attr:`~RewardEnvironment.best_option` accordingly.
    rng:
        Seed or generator.
    """

    def __init__(self, qualities: Sequence[float], rng: RngLike = None) -> None:
        qualities = check_quality_vector(qualities, "qualities")
        super().__init__(num_options=qualities.size, rng=rng)
        self._qualities = qualities.copy()

    @property
    def qualities(self) -> np.ndarray:
        return self._qualities.copy()

    def _draw(self) -> np.ndarray:
        return (self._rng.random(self._num_options) < self._qualities).astype(np.int8)

    def _draw_batch(self, num_replicates: int) -> np.ndarray:
        uniforms = self._rng.random((num_replicates, self._num_options))
        return (uniforms < self._qualities).astype(np.int8)

    @classmethod
    def with_gap(
        cls,
        num_options: int,
        *,
        best_quality: float = 0.7,
        gap: float = 0.2,
        rng: RngLike = None,
    ) -> "BernoulliEnvironment":
        """Convenience constructor: one option at ``best_quality``, rest at ``best_quality - gap``.

        This is the structure used throughout the paper's discussion (a unique
        best option separated from the field by a gap ``eta_1 - eta_2``) and in
        the simplest worked example (Krafft et al.), where
        ``eta_1 > 1/2 = eta_2 = ... = eta_m``.
        """
        num_options = check_positive_int(num_options, "num_options")
        best_quality = check_in_range(best_quality, "best_quality", 0.0, 1.0)
        gap = check_in_range(gap, "gap", 0.0, best_quality)
        qualities = np.full(num_options, best_quality - gap)
        qualities[0] = best_quality
        return cls(qualities, rng=rng)

    @classmethod
    def random_instance(
        cls,
        num_options: int,
        *,
        min_gap: float = 0.05,
        rng: RngLike = None,
    ) -> "BernoulliEnvironment":
        """Draw a random quality vector whose top-two gap is at least ``min_gap``."""
        num_options = check_positive_int(num_options, "num_options")
        min_gap = check_in_range(min_gap, "min_gap", 0.0, 1.0)
        generator = ensure_rng(rng)
        while True:
            qualities = np.sort(generator.random(num_options))[::-1]
            if num_options == 1 or qualities[0] - qualities[1] >= min_gap:
                return cls(qualities, rng=generator)


class RowwiseBernoulliEnvironment(RewardEnvironment):
    """Bernoulli rewards with a *different* quality vector per batch row.

    Row ``r`` of every :meth:`~RewardEnvironment.sample_batch` draw is
    ``R^t_{r,j} ~ Bernoulli(eta_{r,j})``, i.i.d. across time and rows.  This
    is the environment half of sweep-axis batching: when ``run_sweep``
    flattens ``G`` grid points times ``R`` replicates into one ``(G·R, m)``
    batch, each flattened row carries the quality vector of its grid point.

    The single-replicate interface (:meth:`sample` / :meth:`sample_many`) is
    deliberately unavailable — there is no single quality vector to draw from
    — and ``sample_batch`` must be called with exactly ``num_rows``
    replicates.

    Parameters
    ----------
    qualities:
        Matrix of shape ``(R, m)``; row ``r`` holds the success
        probabilities ``eta_{r,j}`` of batch row ``r``.
    rng:
        Seed or generator.
    precision:
        Storage precision (default float64).  With ``float32`` the quality
        matrix — the environment's only per-row state — is stored at half
        width; the reward draws then threshold float64 uniforms against the
        float32-rounded qualities, so float32 reward streams agree with
        float64 ones *statistically* (to within one ulp of each quality),
        not bit-for-bit.  The default path is unchanged.
    """

    def __init__(
        self,
        qualities: np.ndarray,
        rng: RngLike = None,
        precision: PrecisionLike = None,
    ) -> None:
        qualities = np.asarray(qualities, dtype=float)
        if qualities.ndim != 2 or qualities.shape[0] == 0 or qualities.shape[1] == 0:
            raise ValueError(
                f"qualities must be a non-empty 2-D (R, m) matrix, got shape "
                f"{qualities.shape}"
            )
        if not np.all(np.isfinite(qualities)):
            raise ValueError("every quality must be finite")
        if np.any(qualities < 0) or np.any(qualities > 1):
            raise ValueError("every quality must lie in [0, 1]")
        super().__init__(num_options=qualities.shape[1], rng=rng)
        self._precision = resolve_precision(precision)
        self._qualities = qualities.astype(self._precision.float_dtype)
        self._qualities.setflags(write=False)

    @classmethod
    def from_points(
        cls,
        quality_vectors: Sequence[Sequence[float]],
        replications: int,
        rng: RngLike = None,
        precision: PrecisionLike = None,
    ) -> "RowwiseBernoulliEnvironment":
        """Repeat each grid point's quality vector ``replications`` times.

        The row layout matches the flattening convention of the batched sweep:
        rows ``g * replications .. (g+1) * replications - 1`` belong to grid
        point ``g``.
        """
        check_positive_int(replications, "replications")
        matrix = np.asarray([np.asarray(vector, dtype=float) for vector in quality_vectors])
        if matrix.ndim != 2:
            raise ValueError("all quality vectors must have the same length")
        return cls(np.repeat(matrix, replications, axis=0), rng=rng, precision=precision)

    @property
    def num_rows(self) -> int:
        """Number of batch rows ``R`` this environment serves."""
        return int(self._qualities.shape[0])

    @property
    def qualities(self) -> np.ndarray:
        """The full per-row quality matrix, shape ``(R, m)``."""
        return self._qualities.copy()

    @property
    def best_option(self) -> np.ndarray:
        """Per-row best option indices, shape ``(R,)``."""
        return self._qualities.argmax(axis=1)

    @property
    def best_quality(self) -> np.ndarray:
        """Per-row best qualities, shape ``(R,)``."""
        return self._qualities.max(axis=1)

    def quality_gap(self) -> np.ndarray:
        """Per-row gap between the two best options, shape ``(R,)`` (0 if ``m == 1``)."""
        if self._num_options < 2:
            return np.zeros(self.num_rows)
        ordered = np.sort(self._qualities, axis=1)
        return ordered[:, -1] - ordered[:, -2]

    def _draw(self) -> np.ndarray:
        raise RuntimeError(
            "a per-row environment has no single-replicate reward stream; "
            "use sample_batch(num_rows)"
        )

    def _draw_batch(self, num_replicates: int) -> np.ndarray:
        if num_replicates != self.num_rows:
            raise ValueError(
                f"per-row environment serves exactly {self.num_rows} rows, "
                f"got num_replicates={num_replicates}"
            )
        uniforms = self._rng.random((num_replicates, self._num_options))
        return (uniforms < self._qualities).astype(np.int8)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(rows={self.num_rows}, m={self._num_options})"
        )
