"""The paper's canonical environment: independent Bernoulli option qualities."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.environments.base import RewardEnvironment
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_in_range, check_positive_int, check_quality_vector


class BernoulliEnvironment(RewardEnvironment):
    """Options with fixed qualities ``eta_j``; ``R^t_j ~ Bernoulli(eta_j)`` i.i.d. over ``t``.

    This is exactly the learning environment of Section 2.1: the quality of
    each option is an independent random variable whose parameter is unknown
    to the individuals and fixed over time.

    Parameters
    ----------
    qualities:
        The vector ``(eta_1, ..., eta_m)``; each entry in ``[0, 1]``.  The
        paper's convention ``eta_1 >= eta_2 >= ... >= eta_m`` is *not*
        required — the environment works with any ordering and reports
        :attr:`~RewardEnvironment.best_option` accordingly.
    rng:
        Seed or generator.
    """

    def __init__(self, qualities: Sequence[float], rng: RngLike = None) -> None:
        qualities = check_quality_vector(qualities, "qualities")
        super().__init__(num_options=qualities.size, rng=rng)
        self._qualities = qualities.copy()

    @property
    def qualities(self) -> np.ndarray:
        return self._qualities.copy()

    def _draw(self) -> np.ndarray:
        return (self._rng.random(self._num_options) < self._qualities).astype(np.int8)

    def _draw_batch(self, num_replicates: int) -> np.ndarray:
        uniforms = self._rng.random((num_replicates, self._num_options))
        return (uniforms < self._qualities).astype(np.int8)

    @classmethod
    def with_gap(
        cls,
        num_options: int,
        *,
        best_quality: float = 0.7,
        gap: float = 0.2,
        rng: RngLike = None,
    ) -> "BernoulliEnvironment":
        """Convenience constructor: one option at ``best_quality``, rest at ``best_quality - gap``.

        This is the structure used throughout the paper's discussion (a unique
        best option separated from the field by a gap ``eta_1 - eta_2``) and in
        the simplest worked example (Krafft et al.), where
        ``eta_1 > 1/2 = eta_2 = ... = eta_m``.
        """
        num_options = check_positive_int(num_options, "num_options")
        best_quality = check_in_range(best_quality, "best_quality", 0.0, 1.0)
        gap = check_in_range(gap, "gap", 0.0, best_quality)
        qualities = np.full(num_options, best_quality - gap)
        qualities[0] = best_quality
        return cls(qualities, rng=rng)

    @classmethod
    def random_instance(
        cls,
        num_options: int,
        *,
        min_gap: float = 0.05,
        rng: RngLike = None,
    ) -> "BernoulliEnvironment":
        """Draw a random quality vector whose top-two gap is at least ``min_gap``."""
        num_options = check_positive_int(num_options, "num_options")
        min_gap = check_in_range(min_gap, "min_gap", 0.0, 1.0)
        generator = ensure_rng(rng)
        while True:
            qualities = np.sort(generator.random(num_options))[::-1]
            if num_options == 1 or qualities[0] - qualities[1] >= min_gap:
                return cls(qualities, rng=generator)
