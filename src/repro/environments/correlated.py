"""Environments with dependence across options (Section 6 future work).

The paper notes that its independence assumption is across *time*; within a
time step the signals may be correlated (footnote 3: in the Ellison–Fudenberg
example exactly one of ``R^t_1, R^t_2`` is 1 each step).  These environments
let experiments probe that regime for general ``m``:

* :class:`ExactlyOneGoodEnvironment` — exactly one option is good each step,
  option ``j`` with probability ``win_probabilities[j]`` (a softmax-style
  "winner take all" signal structure, e.g. stocks where one asset outperforms);
* :class:`CorrelatedOptionsEnvironment` — a Gaussian-copula model with a
  common-factor correlation ``rho`` between option signals, with marginal
  qualities exactly ``eta_j``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import stats

from repro.environments.base import RewardEnvironment
from repro.utils.rng import RngLike
from repro.utils.validation import (
    check_in_range,
    check_probability_vector,
    check_quality_vector,
)


class ExactlyOneGoodEnvironment(RewardEnvironment):
    """Each step exactly one option emits a good signal.

    ``R^t`` is a one-hot vector; option ``j`` is the winner with probability
    ``win_probabilities[j]``, independently across time.  The marginal quality
    of option ``j`` is therefore ``eta_j = win_probabilities[j]``.

    Parameters
    ----------
    win_probabilities:
        Probability vector over options (must sum to 1).
    rng:
        Seed or generator.
    """

    def __init__(self, win_probabilities: Sequence[float], rng: RngLike = None) -> None:
        probabilities = check_probability_vector(win_probabilities, "win_probabilities")
        super().__init__(num_options=probabilities.size, rng=rng)
        self._win_probabilities = probabilities.copy()

    @property
    def qualities(self) -> np.ndarray:
        return self._win_probabilities.copy()

    def _draw(self) -> np.ndarray:
        winner = self._rng.choice(self._num_options, p=self._win_probabilities)
        rewards = np.zeros(self._num_options, dtype=np.int8)
        rewards[winner] = 1
        return rewards

    def _draw_batch(self, num_replicates: int) -> np.ndarray:
        winners = self._rng.choice(
            self._num_options, size=num_replicates, p=self._win_probabilities
        )
        rewards = np.zeros((num_replicates, self._num_options), dtype=np.int8)
        rewards[np.arange(num_replicates), winners] = 1
        return rewards


class CorrelatedOptionsEnvironment(RewardEnvironment):
    """Gaussian-copula correlated binary signals with exact marginals ``eta_j``.

    A latent vector ``Z^t = sqrt(rho) * F^t + sqrt(1-rho) * U^t_j`` (common
    factor ``F^t`` plus idiosyncratic noise) is thresholded so that
    ``P[R^t_j = 1] = eta_j`` exactly, while ``corr(Z_j, Z_k) = rho`` induces
    positive dependence between signals within a step.  Signals remain
    independent across time, which is the assumption the paper's analysis
    actually needs (footnote 3).

    Parameters
    ----------
    qualities:
        Marginal success probabilities ``eta_j``.
    correlation:
        Common-factor correlation ``rho`` in ``[0, 1)``.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        qualities: Sequence[float],
        correlation: float = 0.5,
        rng: RngLike = None,
    ) -> None:
        qualities = check_quality_vector(qualities, "qualities")
        super().__init__(num_options=qualities.size, rng=rng)
        self._qualities = qualities.copy()
        self._correlation = check_in_range(
            correlation, "correlation", 0.0, 1.0, inclusive_high=False
        )
        # Threshold such that P[Z > z_j] = eta_j for standard normal Z.
        self._thresholds = stats.norm.isf(np.clip(self._qualities, 1e-12, 1 - 1e-12))

    @property
    def correlation(self) -> float:
        """Common-factor correlation between latent signal variables."""
        return self._correlation

    @property
    def qualities(self) -> np.ndarray:
        return self._qualities.copy()

    def _draw(self) -> np.ndarray:
        common = self._rng.normal()
        idiosyncratic = self._rng.normal(size=self._num_options)
        latent = (
            np.sqrt(self._correlation) * common
            + np.sqrt(1.0 - self._correlation) * idiosyncratic
        )
        rewards = (latent > self._thresholds).astype(np.int8)
        # Degenerate qualities (0 or 1) must be honoured exactly.
        rewards = np.where(self._qualities >= 1.0, 1, rewards)
        rewards = np.where(self._qualities <= 0.0, 0, rewards)
        return rewards.astype(np.int8)

    def _draw_batch(self, num_replicates: int) -> np.ndarray:
        # One common factor per replicate: correlation acts within a step,
        # while distinct replicates stay independent of each other.
        common = self._rng.normal(size=(num_replicates, 1))
        idiosyncratic = self._rng.normal(size=(num_replicates, self._num_options))
        latent = (
            np.sqrt(self._correlation) * common
            + np.sqrt(1.0 - self._correlation) * idiosyncratic
        )
        rewards = (latent > self._thresholds).astype(np.int8)
        rewards = np.where(self._qualities >= 1.0, 1, rewards)
        rewards = np.where(self._qualities <= 0.0, 0, rewards)
        return rewards.astype(np.int8)
